//! The two-phase experiment driver.

use crate::bank::{LocMode, PredictorBank};
use crate::error::CcsError;
use crate::policy::PolicyKind;
use ccs_critpath::{analyze, CritPathAnalysis};
use ccs_isa::MachineConfig;
use ccs_predictors::TokenDetector;
use ccs_sim::{simulate_budgeted, Cycle, RunObserver, SimBudget, SimError, SimMetrics, SimResult};
use ccs_trace::Trace;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

/// Where criticality training samples come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrainingSource {
    /// The exact critical path from the dependence-graph analysis — the
    /// idealized (converged) form of the detector's signal.
    ExactGraph,
    /// The Fields token-passing detector sampling the retiring stream —
    /// the hardware-realistic mechanism the paper's pipeline carries.
    TokenDetector(TokenDetector),
}

/// Options controlling a [`run_cell`] evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunOptions {
    /// Total simulation epochs. The predictors are trained on the
    /// critical path after each epoch; the *last* epoch is the measured
    /// one. Two epochs (one cold training run + one measured run) match
    /// the paper's converged-predictor methodology; more epochs let the
    /// learned load-balance candidates settle further.
    pub epochs: u32,
    /// The LoC implementation policies read.
    pub loc_mode: LocMode,
    /// Seed for the probabilistic counter updates.
    pub seed: u64,
    /// The criticality training signal.
    pub training: TrainingSource,
    /// Run every epoch in *checked* mode: the structural invariant
    /// checker ([`ccs_sim::check_invariants`]) audits each schedule and
    /// the critical-path breakdown must conserve the cycle count, with
    /// any violation surfaced as [`SimError::InvariantViolated`]. Adds
    /// one audit pass per epoch (~2× cost); off by default.
    pub checked: bool,
    /// Deterministic watchdog: give up any single epoch once its cycle
    /// counter passes this value, surfacing
    /// [`SimError::BudgetExhausted`] (a timeout, not a defect). `None`
    /// (the default) leaves only the engine's internal deadlock limit.
    pub cycle_budget: Option<Cycle>,
    /// Collect observability metrics ([`SimMetrics`]) on the measured
    /// (final) epoch. Metrics are write-only observers — the schedule and
    /// result are bit-identical with metrics on or off — but gathering
    /// them costs a little time, so this is off by default.
    pub metrics: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            epochs: 2,
            loc_mode: LocMode::Quantized16,
            seed: 0xC1A5,
            training: TrainingSource::ExactGraph,
            checked: false,
            cycle_budget: None,
            metrics: false,
        }
    }
}

impl RunOptions {
    /// Convenience: the same options with the exact LoC reference
    /// implementation.
    #[must_use]
    pub fn exact_loc(mut self) -> Self {
        self.loc_mode = LocMode::Exact;
        self
    }

    /// Convenience: the same options with a different epoch count.
    #[must_use]
    pub fn with_epochs(mut self, epochs: u32) -> Self {
        self.epochs = epochs;
        self
    }

    /// Convenience: the same options trained by the token-passing
    /// detector instead of the exact critical path.
    #[must_use]
    pub fn with_token_detector(mut self, detector: TokenDetector) -> Self {
        self.training = TrainingSource::TokenDetector(detector);
        self
    }

    /// Convenience: the same options with checked mode on or off.
    #[must_use]
    pub fn with_checked(mut self, checked: bool) -> Self {
        self.checked = checked;
        self
    }

    /// Convenience: the same options with a per-epoch cycle budget.
    #[must_use]
    pub fn with_cycle_budget(mut self, cycle_budget: Cycle) -> Self {
        self.cycle_budget = Some(cycle_budget);
        self
    }

    /// Convenience: the same options with metrics collection on or off.
    #[must_use]
    pub fn with_metrics(mut self, metrics: bool) -> Self {
        self.metrics = metrics;
        self
    }
}

/// The outcome of evaluating one (machine, workload, policy) cell.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// The policy evaluated.
    pub kind: PolicyKind,
    /// Timing results of the measured (final) epoch.
    pub result: SimResult,
    /// Critical-path analysis of the measured epoch.
    pub analysis: CritPathAnalysis,
    /// The trained predictor state after the measured epoch.
    pub bank: PredictorBank,
    /// Observability metrics of the measured epoch, when
    /// [`RunOptions::metrics`] was set.
    pub metrics: Option<SimMetrics>,
}

impl CellOutcome {
    /// Cycles per instruction of the measured epoch.
    pub fn cpi(&self) -> f64 {
        self.result.cpi()
    }

    /// This cell's CPI normalized to a baseline cell (the paper's
    /// normalized-CPI axis).
    pub fn normalized_cpi(&self, baseline: &CellOutcome) -> f64 {
        self.cpi() / baseline.cpi()
    }
}

/// Evaluates `kind` on `config` running `trace`, using the paper's
/// two-phase methodology: each epoch simulates, extracts the critical
/// path, and trains the predictor bank; the final epoch is the measured
/// one.
///
/// Fully deterministic for fixed inputs and options.
///
/// # Errors
///
/// Returns [`CcsError::Sim`] for simulator failures (deadlock, exhausted
/// [`RunOptions::cycle_budget`], checked-mode invariant violations).
pub fn run_cell(
    config: &MachineConfig,
    trace: &Trace,
    kind: PolicyKind,
    options: &RunOptions,
) -> Result<CellOutcome, CcsError> {
    run_custom(config, trace, kind.config(), kind, options)
}

/// Like [`run_cell`], but with an explicit [`PolicyConfig`](crate::PolicyConfig) — the entry
/// point for ablation studies (stall-threshold sweeps, proactive-override
/// sweeps). `kind` labels the outcome; the configuration governs the
/// policy's behaviour.
///
/// # Errors
///
/// As for [`run_cell`].
pub fn run_custom(
    config: &MachineConfig,
    trace: &Trace,
    policy_config: crate::PolicyConfig,
    kind: PolicyKind,
    options: &RunOptions,
) -> Result<CellOutcome, CcsError> {
    run_custom_cancellable(config, trace, policy_config, kind, options, None)
}

/// Like [`run_custom`], with an optional cooperative cancel flag that a
/// watchdog can raise mid-epoch — the entry point the resilient grid
/// executor uses to enforce wall-clock deadlines.
///
/// # Errors
///
/// As for [`run_cell`], plus [`SimError::Cancelled`] (as
/// [`CcsError::Sim`]) when `cancel` is observed raised.
pub fn run_custom_cancellable(
    config: &MachineConfig,
    trace: &Trace,
    policy_config: crate::PolicyConfig,
    kind: PolicyKind,
    options: &RunOptions,
    cancel: Option<Arc<AtomicBool>>,
) -> Result<CellOutcome, CcsError> {
    let budget = SimBudget {
        max_cycles: options.cycle_budget,
        cancel,
    };
    let mut bank = PredictorBank::new(options.loc_mode, options.seed);
    let epochs = options.epochs.max(1);
    let mut last: Option<(SimResult, CritPathAnalysis)> = None;
    let mut metrics: Option<SimMetrics> = None;
    for epoch in 0..epochs {
        let measured = epoch + 1 == epochs;
        let mut policy = crate::CellPolicy::build(kind, policy_config, bank, kind.name());
        // Metrics are gathered only on the measured epoch (training epochs
        // exist to converge the predictors, not to be reported on), through
        // the same engine body as the unobserved path.
        let result = match (options.metrics && measured, options.checked) {
            (false, false) => simulate_budgeted(config, trace, &mut policy, &budget)?,
            (false, true) => {
                ccs_sim::simulate_checked_budgeted(config, trace, &mut policy, &budget)?
            }
            (true, checked) => {
                let mut observer = RunObserver::for_machine(config.cluster_count());
                let result = if checked {
                    ccs_sim::simulate_checked_observed(
                        config,
                        trace,
                        &mut policy,
                        &budget,
                        &mut observer,
                    )?
                } else {
                    ccs_sim::simulate_observed(config, trace, &mut policy, &budget, &mut observer)?
                };
                metrics = Some(observer.into_metrics());
                result
            }
        };
        let analysis = analyze(trace, &result);
        if options.checked && analysis.breakdown.total() != result.cycles {
            return Err(CcsError::Sim(SimError::InvariantViolated {
                first: ccs_sim::Violation {
                    cycle: result.cycles,
                    inst: None,
                    message: format!(
                        "critical-path breakdown sums to {} cycles, run took {}",
                        analysis.breakdown.total(),
                        result.cycles
                    ),
                },
                count: 1,
            }));
        }
        bank = policy.into_bank();
        match options.training {
            TrainingSource::ExactGraph => {
                bank.train_criticality(trace, &analysis.e_critical);
            }
            TrainingSource::TokenDetector(det) => {
                det.run(trace, &result, |pc, critical| bank.train_sample(pc, critical));
                bank.finish_epoch();
            }
        }
        last = Some((result, analysis));
    }
    // Invariant: the loop above runs `options.epochs.max(1)` >= 1
    // iterations, and every iteration either sets `last` or returns Err.
    let (result, analysis) = last.expect("at least one epoch ran");
    Ok(CellOutcome {
        kind,
        result,
        analysis,
        bank,
        metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_critpath::CostCategory;
    use ccs_isa::ClusterLayout;
    use ccs_trace::Benchmark;

    fn cfg(layout: ClusterLayout) -> MachineConfig {
        MachineConfig::micro05_baseline().with_layout(layout)
    }

    #[test]
    fn cells_are_deterministic() {
        let trace = Benchmark::Vpr.generate(1, 3_000);
        let opts = RunOptions::default();
        let a = run_cell(&cfg(ClusterLayout::C4x2w), &trace, PolicyKind::Focused, &opts).unwrap();
        let b = run_cell(&cfg(ClusterLayout::C4x2w), &trace, PolicyKind::Focused, &opts).unwrap();
        assert_eq!(a.result.cycles, b.result.cycles);
    }

    #[test]
    fn training_epochs_change_behavior() {
        let trace = Benchmark::Vpr.generate(1, 4_000);
        let cold = run_cell(
            &cfg(ClusterLayout::C4x2w),
            &trace,
            PolicyKind::Focused,
            &RunOptions::default().with_epochs(1),
        )
        .unwrap();
        let warm = run_cell(
            &cfg(ClusterLayout::C4x2w),
            &trace,
            PolicyKind::Focused,
            &RunOptions::default().with_epochs(2),
        )
        .unwrap();
        // The warm run has trained predictors (footprint > 0) and a
        // generally different schedule.
        assert!(warm.bank.trained_epochs() >= 2);
        assert!(cold.bank.trained_epochs() >= 1);
        // Criticality annotations only appear once trained.
        let warm_pred = warm
            .result
            .records
            .iter()
            .filter(|r| r.predicted_critical)
            .count();
        let cold_pred = cold
            .result
            .records
            .iter()
            .filter(|r| r.predicted_critical)
            .count();
        assert_eq!(cold_pred, 0, "first epoch is untrained");
        assert!(warm_pred > 0, "measured epoch sees trained predictions");
    }

    #[test]
    fn dependence_steering_beats_nothing_much_but_runs_everywhere() {
        // Smoke: the full ladder runs on every layout without deadlock.
        let trace = Benchmark::Gcc.generate(2, 2_500);
        for layout in ClusterLayout::ALL {
            for kind in [PolicyKind::Dependence, PolicyKind::Proactive] {
                let out = run_cell(&cfg(layout), &trace, kind, &RunOptions::default()).unwrap();
                assert!(out.cpi() > 0.1, "{layout} {kind:?}");
                assert_eq!(out.analysis.breakdown.total(), out.result.cycles);
            }
        }
    }

    #[test]
    fn loc_scheduling_reduces_critical_contention_on_spine_ribs() {
        // §4's headline: LoC scheduling halves contention-related stalls
        // on code with criticality ties (vpr's spine and ribs).
        let trace = Benchmark::Vpr.generate(3, 8_000);
        let machine = cfg(ClusterLayout::C8x1w);
        let opts = RunOptions::default().with_epochs(3);
        let focused = run_cell(&machine, &trace, PolicyKind::Focused, &opts).unwrap();
        let with_loc = run_cell(&machine, &trace, PolicyKind::FocusedLoc, &opts).unwrap();
        let f_cont = focused.analysis.breakdown.get(CostCategory::Contention);
        let l_cont = with_loc.analysis.breakdown.get(CostCategory::Contention);
        assert!(
            l_cont as f64 <= f_cont as f64 * 1.05,
            "LoC scheduling should not increase critical contention: {l_cont} vs {f_cont}"
        );
        // And performance should not regress meaningfully.
        assert!(
            with_loc.cpi() <= focused.cpi() * 1.03,
            "loc {} vs focused {}",
            with_loc.cpi(),
            focused.cpi()
        );
    }

    #[test]
    fn stall_over_steer_rescues_serial_chains() {
        // §5: gzip-like execute-critical code pays heavy forwarding under
        // load-balance steering; stalling keeps the chain collocated.
        let trace = Benchmark::Gzip.generate(1, 8_000);
        let machine = cfg(ClusterLayout::C8x1w);
        let opts = RunOptions::default().with_epochs(3);
        let without = run_cell(&machine, &trace, PolicyKind::FocusedLoc, &opts).unwrap();
        let with = run_cell(&machine, &trace, PolicyKind::StallOverSteer, &opts).unwrap();
        assert!(
            with.cpi() < without.cpi(),
            "stall-over-steer should speed up gzip: {} vs {}",
            with.cpi(),
            without.cpi()
        );
        let fwd_without = without.analysis.breakdown.get(CostCategory::FwdDelay);
        let fwd_with = with.analysis.breakdown.get(CostCategory::FwdDelay);
        assert!(
            fwd_with < fwd_without,
            "critical forwarding should drop: {fwd_with} vs {fwd_without}"
        );
    }

    #[test]
    fn normalized_cpi_is_relative() {
        let trace = Benchmark::Gap.generate(1, 2_000);
        let opts = RunOptions::default();
        let mono = run_cell(&cfg(ClusterLayout::C1x8w), &trace, PolicyKind::FocusedLoc, &opts)
            .unwrap();
        let clus = run_cell(&cfg(ClusterLayout::C4x2w), &trace, PolicyKind::FocusedLoc, &opts)
            .unwrap();
        let norm = clus.normalized_cpi(&mono);
        assert!(norm >= 0.9, "clustered should not beat monolithic: {norm}");
        assert!((mono.normalized_cpi(&mono) - 1.0).abs() < 1e-12);
    }
}

#[cfg(test)]
mod detector_training_tests {
    use super::*;
    use ccs_isa::ClusterLayout;
    use ccs_trace::Benchmark;

    #[test]
    fn token_detector_training_still_rescues_gzip() {
        // The hardware-realistic detector should deliver most of the
        // benefit of exact-graph training for stall-over-steer.
        let trace = Benchmark::Gzip.generate(1, 8_000);
        let machine =
            MachineConfig::micro05_baseline().with_layout(ClusterLayout::C8x1w);
        let exact_opts = RunOptions::default().with_epochs(3);
        let det_opts = RunOptions::default()
            .with_epochs(3)
            .with_token_detector(TokenDetector::default());
        let loc_only =
            run_cell(&machine, &trace, PolicyKind::FocusedLoc, &det_opts).unwrap();
        let exact = run_cell(&machine, &trace, PolicyKind::StallOverSteer, &exact_opts).unwrap();
        let detector =
            run_cell(&machine, &trace, PolicyKind::StallOverSteer, &det_opts).unwrap();
        assert!(
            detector.cpi() < loc_only.cpi(),
            "detector-trained stall-over-steer must beat not stalling: {} vs {}",
            detector.cpi(),
            loc_only.cpi()
        );
        assert!(
            detector.cpi() <= exact.cpi() * 1.15,
            "detector {} should be close to exact {}",
            detector.cpi(),
            exact.cpi()
        );
    }

    #[test]
    fn detector_training_is_deterministic() {
        let trace = Benchmark::Vpr.generate(2, 3_000);
        let machine = MachineConfig::micro05_baseline().with_layout(ClusterLayout::C4x2w);
        let opts = RunOptions::default().with_token_detector(TokenDetector::default());
        let a = run_cell(&machine, &trace, PolicyKind::FocusedLoc, &opts).unwrap();
        let b = run_cell(&machine, &trace, PolicyKind::FocusedLoc, &opts).unwrap();
        assert_eq!(a.result.cycles, b.result.cycles);
    }
}

#[cfg(test)]
mod utilization_tests {
    use super::*;
    use ccs_isa::ClusterLayout;
    use ccs_trace::Benchmark;

    #[test]
    fn gzip_speedup_comes_with_low_cluster_utilization() {
        // §7: "Much of the 20% speedup this policy achieves in gzip on the
        // 8-cluster machine occurs in long stretches of the execution
        // where only 3 clusters are used. This confirms our earlier
        // observation that cluster utilization is not a metric to be
        // optimized."
        let trace = Benchmark::Gzip.generate(1, 8_000);
        let machine =
            MachineConfig::micro05_baseline().with_layout(ClusterLayout::C8x1w);
        let opts = RunOptions::default().with_epochs(3);
        let focused = run_cell(&machine, &trace, PolicyKind::Focused, &opts).unwrap();
        let stalled =
            run_cell(&machine, &trace, PolicyKind::StallOverSteer, &opts).unwrap();
        // The faster policy uses FEWER clusters.
        let focused_active = focused.result.active_clusters(0.05);
        let stalled_active = stalled.result.active_clusters(0.05);
        assert!(
            stalled.cpi() < focused.cpi(),
            "stall {} vs focused {}",
            stalled.cpi(),
            focused.cpi()
        );
        assert!(
            stalled_active < focused_active,
            "stall uses {stalled_active} clusters vs focused {focused_active}"
        );
        // gzip leaves a meaningful share of the machine idle while faster
        // (the paper saw stretches with only 3 of 8 clusters used).
        assert!(stalled_active <= 6, "stalled active {stalled_active}");
    }
}
