//! The paper's steering and scheduling policies, and the experiment
//! driver that evaluates them.
//!
//! This crate is the reproduction's *core contribution* layer. On top of
//! the `ccs-sim` substrate it implements the full policy ladder of the
//! paper's Figure 14:
//!
//! 1. **Dependence-based steering** (Kemp & Franklin) — collocate a
//!    consumer with a pending producer; load-balance when the desired
//!    cluster is full.
//! 2. **Focused steering and scheduling** (Fields et al.) — prefer the
//!    *predicted-critical* producer's cluster and issue predicted-critical
//!    instructions first. The paper's "state of the art" baseline.
//! 3. **`l` — LoC-based scheduling** (§4): replace the binary criticality
//!    priority with the 16-level *likelihood of criticality*, letting the
//!    scheduler prioritize *among* critical instructions.
//! 4. **`s` — stall-over-steer** (§5): when an execute-critical
//!    instruction's desired cluster is full (LoC ≥ 30%), stall dispatch
//!    instead of load-balancing it away from its producer.
//! 5. **`p` — proactive load-balancing** (§6): push non-critical
//!    consumers away from their producers (steer only one consumer to a
//!    producer; learned load-balance candidates; a most-critical-consumer
//!    override keeps the truly critical consumer collocated).
//!
//! All five are configurations of one [`PaperPolicy`] driven by a shared
//! [`PredictorBank`] (Fields binary predictor + LoC predictor + learned
//! load-balance candidates). [`run_cell`] runs the paper's two-phase
//! methodology: simulate, extract the critical path, train the
//! predictors, re-simulate — mirroring the online-converged predictor of
//! the hardware proposal with a deterministic equivalent.
//!
//! # Example
//!
//! ```
//! use ccs_core::{run_cell, PolicyKind, RunOptions};
//! use ccs_isa::{ClusterLayout, MachineConfig};
//! use ccs_trace::Benchmark;
//!
//! let trace = Benchmark::Vpr.generate(1, 4_000);
//! let cfg = MachineConfig::micro05_baseline().with_layout(ClusterLayout::C4x2w);
//! let focused = run_cell(&cfg, &trace, PolicyKind::Focused, &RunOptions::default()).unwrap();
//! let with_loc = run_cell(&cfg, &trace, PolicyKind::FocusedLoc, &RunOptions::default()).unwrap();
//! assert!(focused.result.cpi() > 0.0 && with_loc.result.cpi() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adaptive;
mod bank;
mod baselines;
pub mod checkpoint;
pub mod error;
mod experiment;
pub mod grid;
mod policy;
pub mod queue;
pub mod shard;

pub use adaptive::{AdaptivePolicy, CellPolicy, IneffPolicy, WindowSignals};
pub use bank::{LocMode, PredictorBank};
pub use baselines::{FirstConsumer, ModN};
pub use checkpoint::cell_key;
pub use error::CcsError;
pub use queue::{Admission, BoundedQueue};
pub use shard::ShardMap;
pub use experiment::{
    run_cell, run_custom, run_custom_cancellable, CellOutcome, RunOptions, TrainingSource,
};
pub use grid::{
    aggregate_breakdown, aggregate_metrics, auto_threads, cells_run, fetch_cell_trace,
    parallel_map, run_grid, run_grid_resilient, CellResult, CellSpec, CellStatus, GridRequest,
    Resilience,
};
pub use policy::{PaperPolicy, PolicyConfig, PolicyKind, ProactiveConfig};
