//! The paper's policy ladder as one configurable steering policy.

use crate::bank::PredictorBank;
use ccs_isa::RegFile;
use ccs_sim::{
    InstRecord, ProducerInfo, SteerCause, SteerOutcome, SteerView, SteeringPolicy,
};
use ccs_trace::{DynIdx, DynInst};
use std::collections::HashSet;

/// Parameters of the §6 proactive load-balancing policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProactiveConfig {
    /// Minimum LoC for the most-critical-consumer override to apply (the
    /// paper uses 5%).
    pub min_loc_override: f64,
    /// The consumer must be at least this fraction as critical as its
    /// producer to be kept collocated (the paper uses one half).
    pub producer_fraction: f64,
}

impl Default for ProactiveConfig {
    fn default() -> Self {
        ProactiveConfig {
            min_loc_override: 0.05,
            producer_fraction: 0.5,
        }
    }
}

/// The knobs distinguishing the paper's policies. Usually built through
/// [`PolicyKind`]; exposed for ablation studies (threshold sweeps).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicyConfig {
    /// Prefer the cluster of the *predicted-critical* producer (focused
    /// steering). Without this, the first pending producer wins
    /// (plain dependence-based steering).
    pub criticality_steer: bool,
    /// Pick the preferred producer by LoC instead of the binary
    /// prediction.
    pub loc_steer: bool,
    /// Scheduling priority = predicted-critical-first (focused
    /// scheduling).
    pub binary_priority: bool,
    /// Scheduling priority = 16-level LoC (overrides `binary_priority`).
    pub loc_priority: bool,
    /// Stall-over-steer: hold dispatch instead of load-balancing when the
    /// instruction's LoC is at least this threshold (§5; the paper uses
    /// 30%).
    pub stall_threshold: Option<f64>,
    /// Proactive load balancing (§6).
    pub proactive: Option<ProactiveConfig>,
}

/// The named policies of the paper's evaluation (Figure 14's ladder).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// Plain dependence-based steering (Kemp & Franklin), oldest-first
    /// scheduling — criticality-blind.
    Dependence,
    /// Fields et al. focused steering and scheduling: dependence steering
    /// preferring the critical producer, critical-first scheduling. The
    /// "state of the art" the paper starts from (Figure 4).
    Focused,
    /// Focused + LoC-based scheduling (`l` bars of Figure 14).
    FocusedLoc,
    /// Focused + LoC + stall-over-steer at 30% LoC (`s` bars).
    StallOverSteer,
    /// Focused + LoC + stall + proactive load balancing (`p` bars).
    Proactive,
    /// Online policy switching: re-picks a static rung among the five
    /// paper policies at fixed cycle windows from windowed steering
    /// signals (occupancy imbalance, forwarding-stall share, steer-cause
    /// mix), with hysteresis. See [`AdaptivePolicy`](crate::AdaptivePolicy).
    Adaptive,
    /// Ineffectuality-aware steering: focused steering plus an online
    /// dead-value table that routes predicted-ineffectual instructions
    /// to the least-loaded spare cluster. See
    /// [`IneffPolicy`](crate::IneffPolicy).
    IneffSteer,
}

impl PolicyKind {
    /// The §7 ladder in presentation order.
    pub const LADDER: [PolicyKind; 4] = [
        PolicyKind::Focused,
        PolicyKind::FocusedLoc,
        PolicyKind::StallOverSteer,
        PolicyKind::Proactive,
    ];

    /// The paper's final policy composition for a machine with `clusters`
    /// clusters: proactive load balancing is applied only to the
    /// 8-cluster machine ("our implementation does not benefit the wider
    /// clusters", Figure 14); the wider configurations stop at
    /// stall-over-steer.
    pub fn best_for(clusters: usize) -> PolicyKind {
        if clusters >= 8 {
            PolicyKind::Proactive
        } else {
            PolicyKind::StallOverSteer
        }
    }

    /// The short label used in Figure 14 ("", "l", "s", "p").
    pub const fn bar_label(self) -> &'static str {
        match self {
            PolicyKind::Dependence => "dep",
            PolicyKind::Focused => "f",
            PolicyKind::FocusedLoc => "l",
            PolicyKind::StallOverSteer => "s",
            PolicyKind::Proactive => "p",
            PolicyKind::Adaptive => "a",
            PolicyKind::IneffSteer => "i",
        }
    }

    /// A descriptive name.
    pub const fn name(self) -> &'static str {
        match self {
            PolicyKind::Dependence => "dependence",
            PolicyKind::Focused => "focused",
            PolicyKind::FocusedLoc => "focused+loc",
            PolicyKind::StallOverSteer => "focused+loc+stall",
            PolicyKind::Proactive => "focused+loc+stall+proactive",
            PolicyKind::Adaptive => "adaptive",
            PolicyKind::IneffSteer => "ineff-steer",
        }
    }

    /// Whether this kind changes its steering behaviour *during* a run
    /// (window-driven policy switching or online dead-value learning).
    /// Dynamic kinds make the analytic envelope's lower edge harder to
    /// approach, so the predict tier demotes its confidence for them.
    pub const fn is_dynamic(self) -> bool {
        matches!(self, PolicyKind::Adaptive | PolicyKind::IneffSteer)
    }

    /// The policy's configuration.
    pub fn config(self) -> PolicyConfig {
        let base = PolicyConfig {
            criticality_steer: false,
            loc_steer: false,
            binary_priority: false,
            loc_priority: false,
            stall_threshold: None,
            proactive: None,
        };
        match self {
            PolicyKind::Dependence => base,
            PolicyKind::Focused => PolicyConfig {
                criticality_steer: true,
                binary_priority: true,
                ..base
            },
            PolicyKind::FocusedLoc => PolicyConfig {
                criticality_steer: true,
                loc_steer: true,
                loc_priority: true,
                ..base
            },
            PolicyKind::StallOverSteer => PolicyConfig {
                criticality_steer: true,
                loc_steer: true,
                loc_priority: true,
                stall_threshold: Some(PaperPolicy::STALL_THRESHOLD),
                ..base
            },
            PolicyKind::Proactive => PolicyConfig {
                criticality_steer: true,
                loc_steer: true,
                loc_priority: true,
                stall_threshold: Some(PaperPolicy::STALL_THRESHOLD),
                proactive: Some(ProactiveConfig::default()),
                ..base
            },
            // The dynamic kinds report their *starting* rung here: the
            // adaptive switcher begins on focused+loc before its first
            // window closes, and ineffectuality steering wraps plain
            // focused steering. The actual policy object is built by
            // `CellPolicy::build`, which keys on the kind, not on this
            // configuration.
            PolicyKind::Adaptive => PolicyKind::FocusedLoc.config(),
            PolicyKind::IneffSteer => PolicyKind::Focused.config(),
        }
    }
}

/// One policy object covering the whole ladder, configured by
/// [`PolicyConfig`] and driven by a [`PredictorBank`].
#[derive(Debug, Clone)]
pub struct PaperPolicy {
    cfg: PolicyConfig,
    bank: PredictorBank,
    /// Producers that already have a collocated consumer (proactive's
    /// "steer only one consumer to a given producer"). Pruned at commit.
    followed: HashSet<u32>,
    /// Highest consumer LoC seen per operand register since its last
    /// definition — the "most critical consumer of each register"
    /// tracker (§7).
    mcc_loc: RegFile<f64>,
    name: &'static str,
}

impl PaperPolicy {
    /// The stall-over-steer LoC threshold the paper found effective.
    pub const STALL_THRESHOLD: f64 = 0.30;

    /// Builds the named policy over the given predictor state.
    pub fn new(kind: PolicyKind, bank: PredictorBank) -> Self {
        Self::from_config(kind.config(), bank, kind.name())
    }

    /// Builds a custom configuration (for ablations).
    pub fn from_config(cfg: PolicyConfig, bank: PredictorBank, name: &'static str) -> Self {
        PaperPolicy {
            cfg,
            bank,
            followed: HashSet::new(),
            mcc_loc: RegFile::new(),
            name,
        }
    }

    /// Releases the predictor state (to train between epochs).
    pub fn into_bank(self) -> PredictorBank {
        self.bank
    }

    /// The predictor state.
    pub fn bank(&self) -> &PredictorBank {
        &self.bank
    }

    /// The active configuration.
    pub fn config(&self) -> PolicyConfig {
        self.cfg
    }

    /// Swaps the active configuration in place, keeping all learned
    /// state (predictor bank, followed producers, most-critical-consumer
    /// tracker). This is the adaptive switcher's rung change: the policy
    /// object survives, only its knobs move.
    pub fn set_config(&mut self, cfg: PolicyConfig) {
        self.cfg = cfg;
    }

    /// The least-loaded cluster with space, avoiding `avoid` when another
    /// option exists.
    fn least_loaded_avoiding(view: &SteerView<'_>, avoid: usize) -> Option<usize> {
        let mut best: Option<(usize, usize)> = None;
        for (c, &occ) in view.occupancy.iter().enumerate() {
            if c == avoid || !view.has_space(c) {
                continue;
            }
            if best.is_none_or(|(_, o)| occ < o) {
                best = Some((c, occ));
            }
        }
        best.map(|(c, _)| c).or_else(|| view.least_loaded_with_space())
    }
}

impl SteeringPolicy for PaperPolicy {
    fn steer(&mut self, view: &SteerView<'_>) -> SteerOutcome {
        let pc = view.inst.pc();
        let loc = self.bank.loc(pc);
        let crit = self.bank.predicted_critical(pc);
        let annotate =
            |o: SteerOutcome| -> SteerOutcome { o.with_criticality(crit, loc as f32) };

        // Track the most critical consumer of each operand register
        // (idempotent across repeated steer attempts for a stalled head).
        if self.cfg.proactive.is_some() {
            for src in view.inst.inst.sources() {
                let cur = self.mcc_loc.get(src).copied().unwrap_or(0.0);
                if loc > cur {
                    self.mcc_loc.set(src, loc);
                }
            }
        }

        let place = |this: &mut Self, cluster: usize, cause: SteerCause| -> SteerOutcome {
            // A placement invalidates the consumer-criticality history of
            // the destination register (a new value begins).
            if this.cfg.proactive.is_some() {
                if let Some(dst) = view.inst.inst.dst {
                    this.mcc_loc.set(dst, 0.0);
                }
            }
            annotate(SteerOutcome::to(cluster, cause))
        };

        if view.clusters() == 1 {
            return if view.has_space(0) {
                place(self, 0, SteerCause::Only)
            } else {
                annotate(SteerOutcome::stall())
            };
        }

        // At most one producer per source-operand slot; a fixed buffer
        // keeps the per-dispatch hot path allocation-free.
        let mut pending_buf = [ProducerInfo {
            idx: view.idx,
            pc,
            cluster: 0,
            completed: true,
        }; 2];
        let mut pending_len = 0;
        for p in view.pending_producers() {
            pending_buf[pending_len] = p;
            pending_len += 1;
        }
        let pending = &pending_buf[..pending_len];

        // Preferred producer: by LoC, by binary criticality, or first.
        let preferred = if pending.is_empty() {
            None
        } else if self.cfg.loc_steer {
            pending
                .iter()
                .copied()
                .max_by(|a, b| {
                    self.bank
                        .loc(a.pc)
                        .partial_cmp(&self.bank.loc(b.pc))
                        .expect("LoC values are finite")
                        // Stable: prefer the first operand on ties.
                        .then(b.idx.raw().cmp(&a.idx.raw()))
                })
        } else if self.cfg.criticality_steer {
            pending
                .iter()
                .copied()
                .find(|p| self.bank.predicted_critical(p.pc))
                .or(Some(pending[0]))
        } else {
            Some(pending[0])
        };

        // Proactive load balancing: push consumers that are not the most
        // critical one away from their producer (§6).
        if let (Some(pcfg), Some(p)) = (self.cfg.proactive, preferred) {
            let already_followed = self.followed.contains(&p.idx.raw());
            let learned_candidate = self.bank.is_lb_candidate(pc);
            let keep_collocated = loc > pcfg.min_loc_override
                && loc >= pcfg.producer_fraction * self.bank.loc(p.pc);
            if (already_followed || learned_candidate) && !keep_collocated {
                if let Some(c) = Self::least_loaded_avoiding(view, p.cluster) {
                    return place(self, c, SteerCause::Proactive);
                }
                return annotate(SteerOutcome::stall());
            }
        }

        match preferred {
            Some(p) if view.has_space(p.cluster) => {
                if self.cfg.proactive.is_some() {
                    self.followed.insert(p.idx.raw());
                }
                place(self, p.cluster, SteerCause::Dependence)
            }
            Some(_) => {
                // Desired cluster full: stall-over-steer for
                // execute-critical instructions, else load-balance.
                if let Some(threshold) = self.cfg.stall_threshold {
                    if loc >= threshold {
                        return annotate(SteerOutcome::stall());
                    }
                }
                match view.least_loaded_with_space() {
                    Some(c) => place(self, c, SteerCause::LoadBalance),
                    None => annotate(SteerOutcome::stall()),
                }
            }
            None => match view.least_loaded_with_space() {
                Some(c) => place(self, c, SteerCause::NoDeps),
                None => annotate(SteerOutcome::stall()),
            },
        }
    }

    fn priority(&mut self, _idx: DynIdx, inst: &DynInst) -> i64 {
        let pc = inst.pc();
        if self.cfg.loc_priority {
            self.bank.loc_level(pc) as i64
        } else if self.cfg.binary_priority {
            self.bank.predicted_critical(pc) as i64
        } else {
            0
        }
    }

    fn on_commit(&mut self, idx: DynIdx, inst: &DynInst, record: &InstRecord) {
        if self.cfg.proactive.is_none() {
            // Only the proactive balancer populates `followed`; skip the
            // per-commit hash probe for the rest of the ladder.
            return;
        }
        self.followed.remove(&idx.raw());
        // Compare the retiring consumer's LoC against the most critical
        // consumer recorded for its operand registers; train its
        // load-balance candidacy (§7's implementation).
        let loc = record.loc as f64;
        let mut any_src = false;
        let mut below_mcc = false;
        for src in inst.inst.sources() {
            any_src = true;
            let mcc = self.mcc_loc.get(src).copied().unwrap_or(0.0);
            if loc + 1e-9 < mcc {
                below_mcc = true;
            }
        }
        if any_src {
            self.bank.train_lb_candidate(inst.pc(), below_mcc);
        }
    }

    fn name(&self) -> &str {
        self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bank::LocMode;
    use ccs_isa::{ArchReg, OpClass, Pc, StaticInst};
    use ccs_sim::{ProducerInfo, SteerDecision};

    fn trained_bank() -> PredictorBank {
        use ccs_trace::TraceBuilder;
        let mut b = TraceBuilder::new();
        // PC 0x0: high LoC; PC 0x4: low LoC; PC 0x8: never critical.
        for _ in 0..64 {
            b.push_simple(StaticInst::new(Pc::new(0x0), OpClass::IntAlu).with_dst(ArchReg::int(1)));
            b.push_simple(StaticInst::new(Pc::new(0x4), OpClass::IntAlu).with_dst(ArchReg::int(2)));
            b.push_simple(StaticInst::new(Pc::new(0x8), OpClass::IntAlu).with_dst(ArchReg::int(3)));
        }
        let trace = b.finish();
        let crit: Vec<bool> = (0..trace.len())
            .map(|i| match i % 3 {
                0 => true,          // 0x0 always critical
                1 => i % 15 == 1,   // 0x4 rarely critical
                _ => false,         // 0x8 never
            })
            .collect();
        let mut bank = PredictorBank::new(LocMode::Exact, 0);
        bank.train_criticality(&trace, &crit);
        bank
    }

    fn dyn_inst(pc: u64, srcs: [Option<ArchReg>; 2]) -> DynInst {
        DynInst {
            inst: StaticInst::new(Pc::new(pc), OpClass::IntAlu)
                .with_srcs(srcs)
                .with_dst(ArchReg::int(9)),
            deps: [None, None],
            mem_addr: None,
            branch: None,
        }
    }

    fn producer(idx: u32, pc: u64, cluster: usize) -> ProducerInfo {
        ProducerInfo {
            idx: DynIdx::new(idx),
            pc: Pc::new(pc),
            cluster,
            completed: false,
        }
    }

    #[test]
    fn loc_priority_orders_by_level() {
        let mut p = PaperPolicy::new(PolicyKind::FocusedLoc, trained_bank());
        let hi = p.priority(DynIdx::new(0), &dyn_inst(0x0, [None, None]));
        let lo = p.priority(DynIdx::new(1), &dyn_inst(0x4, [None, None]));
        let zero = p.priority(DynIdx::new(2), &dyn_inst(0x8, [None, None]));
        assert!(hi > lo, "hi {hi} lo {lo}");
        assert!(lo >= zero);
        assert_eq!(zero, 0);
    }

    #[test]
    fn binary_priority_cannot_distinguish_critical_instructions() {
        // Both 0x0 (always critical) and 0x4 (1-in-15 critical) may train
        // above the Fields threshold; LoC separates them, binary may not.
        let mut p = PaperPolicy::new(PolicyKind::Focused, trained_bank());
        let hi = p.priority(DynIdx::new(0), &dyn_inst(0x0, [None, None]));
        assert_eq!(hi, 1);
    }

    #[test]
    fn steer_prefers_high_loc_producer() {
        let mut p = PaperPolicy::new(PolicyKind::FocusedLoc, trained_bank());
        let inst = dyn_inst(0x10, [Some(ArchReg::int(1)), Some(ArchReg::int(2))]);
        let occupancy = vec![0usize, 0, 0, 0];
        let view = SteerView {
            inst: &inst,
            idx: DynIdx::new(5),
            now: 0,
            occupancy: &occupancy,
            capacity: 8,
            // Producer at PC 0x0 (high LoC) in cluster 2; PC 0x8 in 3.
            producers: [Some(producer(1, 0x0, 2)), Some(producer(2, 0x8, 3))],
        };
        let o = p.steer(&view);
        assert_eq!(
            o.decision,
            SteerDecision::To {
                cluster: 2,
                cause: SteerCause::Dependence
            }
        );
    }

    #[test]
    fn stall_over_steer_stalls_critical_when_full() {
        let mut p = PaperPolicy::new(PolicyKind::StallOverSteer, trained_bank());
        // Instruction at PC 0x0 (LoC 100%) whose producer cluster is full.
        let inst = dyn_inst(0x0, [Some(ArchReg::int(1)), None]);
        let occupancy = vec![8usize, 0, 0, 0];
        let view = SteerView {
            inst: &inst,
            idx: DynIdx::new(5),
            now: 0,
            occupancy: &occupancy,
            capacity: 8,
            producers: [Some(producer(1, 0x0, 0)), None],
        };
        let o = p.steer(&view);
        assert_eq!(o.decision, SteerDecision::Stall);
        assert!(o.loc > 0.9);

        // The same situation for a low-LoC instruction load-balances.
        let inst2 = dyn_inst(0x8, [Some(ArchReg::int(1)), None]);
        let view2 = SteerView {
            inst: &inst2,
            idx: DynIdx::new(6),
            now: 0,
            occupancy: &occupancy,
            capacity: 8,
            producers: [Some(producer(1, 0x0, 0)), None],
        };
        let o2 = p.steer(&view2);
        assert!(matches!(
            o2.decision,
            SteerDecision::To {
                cause: SteerCause::LoadBalance,
                ..
            }
        ));
    }

    #[test]
    fn without_stall_policy_full_cluster_load_balances_even_critical() {
        let mut p = PaperPolicy::new(PolicyKind::FocusedLoc, trained_bank());
        let inst = dyn_inst(0x0, [Some(ArchReg::int(1)), None]);
        let occupancy = vec![8usize, 3, 0, 0];
        let view = SteerView {
            inst: &inst,
            idx: DynIdx::new(5),
            now: 0,
            occupancy: &occupancy,
            capacity: 8,
            producers: [Some(producer(1, 0x0, 0)), None],
        };
        let o = p.steer(&view);
        assert_eq!(
            o.decision,
            SteerDecision::To {
                cluster: 2,
                cause: SteerCause::LoadBalance
            }
        );
    }

    #[test]
    fn proactive_pushes_second_consumer_away() {
        let mut p = PaperPolicy::new(PolicyKind::Proactive, trained_bank());
        let producer_info = producer(1, 0x0, 0);
        let occupancy = vec![0usize, 0, 0, 0];
        // First consumer (low LoC) collocates and tags the producer.
        let c1 = dyn_inst(0x8, [Some(ArchReg::int(1)), None]);
        let v1 = SteerView {
            inst: &c1,
            idx: DynIdx::new(5),
            now: 0,
            occupancy: &occupancy,
            capacity: 8,
            producers: [Some(producer_info), None],
        };
        let o1 = p.steer(&v1);
        assert!(matches!(
            o1.decision,
            SteerDecision::To {
                cluster: 0,
                cause: SteerCause::Dependence
            }
        ));
        // Second low-LoC consumer of the same producer is pushed away.
        let c2 = dyn_inst(0x4, [Some(ArchReg::int(1)), None]);
        let v2 = SteerView {
            inst: &c2,
            idx: DynIdx::new(6),
            now: 0,
            occupancy: &occupancy,
            capacity: 8,
            producers: [Some(producer_info), None],
        };
        let o2 = p.steer(&v2);
        assert!(
            matches!(
                o2.decision,
                SteerDecision::To {
                    cause: SteerCause::Proactive,
                    ..
                }
            ),
            "{:?}",
            o2.decision
        );
        if let SteerDecision::To { cluster, .. } = o2.decision {
            assert_ne!(cluster, 0, "pushed away from the producer cluster");
        }
    }

    #[test]
    fn proactive_override_keeps_critical_consumer() {
        let mut p = PaperPolicy::new(PolicyKind::Proactive, trained_bank());
        let producer_info = producer(1, 0x4, 0); // low-LoC producer
        let occupancy = vec![0usize, 0, 0, 0];
        // Tag the producer with a first consumer.
        let c1 = dyn_inst(0x8, [Some(ArchReg::int(1)), None]);
        let v1 = SteerView {
            inst: &c1,
            idx: DynIdx::new(5),
            now: 0,
            occupancy: &occupancy,
            capacity: 8,
            producers: [Some(producer_info), None],
        };
        let _ = p.steer(&v1);
        // A highly critical consumer (PC 0x0, LoC 100%) overrides the
        // single-consumer rule and stays with the producer.
        let c2 = dyn_inst(0x0, [Some(ArchReg::int(1)), None]);
        let v2 = SteerView {
            inst: &c2,
            idx: DynIdx::new(6),
            now: 0,
            occupancy: &occupancy,
            capacity: 8,
            producers: [Some(producer_info), None],
        };
        let o2 = p.steer(&v2);
        assert!(matches!(
            o2.decision,
            SteerDecision::To {
                cluster: 0,
                cause: SteerCause::Dependence
            }
        ));
    }

    #[test]
    fn no_producers_load_balances() {
        let mut p = PaperPolicy::new(PolicyKind::Focused, trained_bank());
        let inst = dyn_inst(0x20, [None, None]);
        let occupancy = vec![4usize, 1, 3, 2];
        let view = SteerView {
            inst: &inst,
            idx: DynIdx::new(5),
            now: 0,
            occupancy: &occupancy,
            capacity: 8,
            producers: [None, None],
        };
        let o = p.steer(&view);
        assert_eq!(
            o.decision,
            SteerDecision::To {
                cluster: 1,
                cause: SteerCause::NoDeps
            }
        );
    }

    #[test]
    fn monolithic_machine_places_or_stalls() {
        let mut p = PaperPolicy::new(PolicyKind::Focused, trained_bank());
        let inst = dyn_inst(0x20, [None, None]);
        let view = SteerView {
            inst: &inst,
            idx: DynIdx::new(5),
            now: 0,
            occupancy: &[127],
            capacity: 128,
            producers: [None, None],
        };
        assert!(matches!(
            p.steer(&view).decision,
            SteerDecision::To {
                cluster: 0,
                cause: SteerCause::Only
            }
        ));
        let full = SteerView {
            inst: &inst,
            idx: DynIdx::new(5),
            now: 0,
            occupancy: &[128],
            capacity: 128,
            producers: [None, None],
        };
        assert_eq!(p.steer(&full).decision, SteerDecision::Stall);
    }

    #[test]
    fn ladder_metadata() {
        assert_eq!(PolicyKind::LADDER.len(), 4);
        let mut labels = std::collections::HashSet::new();
        for k in [
            PolicyKind::Dependence,
            PolicyKind::Focused,
            PolicyKind::FocusedLoc,
            PolicyKind::StallOverSteer,
            PolicyKind::Proactive,
            PolicyKind::Adaptive,
            PolicyKind::IneffSteer,
        ] {
            assert!(labels.insert(k.bar_label()));
            assert!(!k.name().is_empty());
        }
        // Config composition is monotone along the ladder.
        assert!(PolicyKind::StallOverSteer.config().stall_threshold.is_some());
        assert!(PolicyKind::FocusedLoc.config().stall_threshold.is_none());
        assert!(PolicyKind::Proactive.config().proactive.is_some());
        // Only the two online kinds are dynamic.
        assert!(PolicyKind::Adaptive.is_dynamic());
        assert!(PolicyKind::IneffSteer.is_dynamic());
        for k in PolicyKind::LADDER {
            assert!(!k.is_dynamic());
        }
        assert!(!PolicyKind::Dependence.is_dynamic());
    }

    #[test]
    fn set_config_swaps_knobs_and_keeps_the_bank() {
        let mut p = PaperPolicy::new(PolicyKind::FocusedLoc, trained_bank());
        assert!(p.config().loc_priority);
        let hi_before = p.priority(DynIdx::new(0), &dyn_inst(0x0, [None, None]));
        p.set_config(PolicyKind::Dependence.config());
        assert!(!p.config().loc_priority);
        // Oldest-first scheduling under the dependence rung.
        assert_eq!(p.priority(DynIdx::new(1), &dyn_inst(0x0, [None, None])), 0);
        // The learned LoC state survives the swap.
        p.set_config(PolicyKind::FocusedLoc.config());
        let hi_after = p.priority(DynIdx::new(2), &dyn_inst(0x0, [None, None]));
        assert_eq!(hi_before, hi_after);
    }
}
