//! Bounded admission queues with explicit backpressure.
//!
//! The service layer (`ccs-serve`) admits work through a
//! [`BoundedQueue`] rather than buffering without bound: when a
//! submission does not fit, admission *fails fast* with a typed
//! [`Admission::Busy`] carrying a retry hint, and the client decides
//! whether to back off or give up. The queue lives here — not in the
//! serve crate — because admission is a property of the experiment
//! grid's execution model (how many cells may be pending at once), not
//! of any particular transport.
//!
//! Semantics:
//!
//! * Admission is **all-or-nothing** per submission
//!   ([`BoundedQueue::admit`]): a grid either fits entirely or is
//!   rejected entirely, so a client never has to track a half-admitted
//!   request.
//! * Consumers block on [`BoundedQueue::pop`] (or poll with
//!   [`BoundedQueue::pop_timeout`]) and observe [`None`] only once the
//!   queue is [`close`](BoundedQueue::close)d *and* drained — the
//!   graceful-shutdown handshake.
//! * The busy hint scales linearly with the current depth
//!   ([`BoundedQueue::with_hint_per_item`]), so a client retrying
//!   against a deep queue waits proportionally longer.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::Duration;

/// The outcome of offering a submission to a [`BoundedQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Every item of the submission was enqueued.
    Admitted {
        /// Queue depth immediately after the submission was enqueued
        /// (includes the submission itself).
        depth: usize,
    },
    /// Nothing was enqueued: the submission did not fit under the
    /// capacity bound.
    Busy {
        /// Advisory backoff before retrying, derived from the queue
        /// depth at rejection time. Clients may ignore it, but honoring
        /// it keeps a saturated server from burning cycles on rejects.
        retry_after_hint: Duration,
    },
}

impl Admission {
    /// Whether the submission was admitted.
    pub fn is_admitted(&self) -> bool {
        matches!(self, Admission::Admitted { .. })
    }
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A capacity-bounded MPMC queue with all-or-nothing admission.
///
/// Built on `Mutex<VecDeque>` + `Condvar` — no dependencies, no unsafe
/// — because the serve workloads enqueue *cells* (milliseconds to
/// seconds of simulation each); queue overhead is noise.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    cv: Condvar,
    capacity: usize,
    hint_per_item: Duration,
}

impl<T> std::fmt::Debug for BoundedQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoundedQueue")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .field("closed", &self.is_closed())
            .finish()
    }
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `capacity` items (≥ 1) at a time, with
    /// a 5 ms-per-pending-item busy hint.
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            cv: Condvar::new(),
            capacity: capacity.max(1),
            hint_per_item: Duration::from_millis(5),
        }
    }

    /// The same queue with a different per-pending-item busy hint.
    #[must_use]
    pub fn with_hint_per_item(mut self, hint: Duration) -> Self {
        self.hint_per_item = hint;
        self
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Offers one item; on rejection the item is handed back.
    ///
    /// # Errors
    ///
    /// The item, when the queue is full or closed.
    pub fn try_push(&self, item: T) -> Result<(), T> {
        match self.admit_iter(std::iter::once(item)) {
            Ok(_) => Ok(()),
            Err(mut items) => Err(items.pop().expect("rejected item handed back")),
        }
    }

    /// Offers a whole submission atomically; on rejection every item is
    /// handed back and the queue is untouched.
    ///
    /// # Errors
    ///
    /// The submission, when it does not fit or the queue is closed.
    pub fn try_push_all(&self, items: Vec<T>) -> Result<usize, Vec<T>> {
        self.admit_iter(items)
    }

    fn admit_iter(&self, items: impl IntoIterator<Item = T>) -> Result<usize, Vec<T>> {
        let items: Vec<T> = items.into_iter().collect();
        let mut inner = self.lock();
        if inner.closed || inner.items.len() + items.len() > self.capacity {
            return Err(items);
        }
        inner.items.extend(items);
        let depth = inner.items.len();
        drop(inner);
        self.cv.notify_all();
        Ok(depth)
    }

    /// All-or-nothing admission with a typed backpressure reply: the
    /// submission is either fully enqueued or fully rejected with a
    /// depth-proportional retry hint. An empty submission is trivially
    /// admitted.
    pub fn admit(&self, items: Vec<T>) -> Admission {
        match self.try_push_all(items) {
            Ok(depth) => Admission::Admitted { depth },
            Err(_) => Admission::Busy {
                retry_after_hint: self.busy_hint(),
            },
        }
    }

    /// The advisory backoff a busy reply would carry right now.
    pub fn busy_hint(&self) -> Duration {
        let depth = self.len() as u32 + 1;
        self.hint_per_item.saturating_mul(depth)
    }

    /// Pops the oldest item, blocking while the queue is empty and open.
    /// Returns [`None`] once the queue is closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.lock();
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .cv
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// [`pop`](Self::pop) bounded by `timeout`: `Ok(None)` means closed
    /// and drained, `Err(())` means the wait timed out with the queue
    /// still open (poll again — used by workers that also watch a drain
    /// flag).
    #[allow(clippy::result_unit_err)]
    pub fn pop_timeout(&self, timeout: Duration) -> Result<Option<T>, ()> {
        let deadline = std::time::Instant::now() + timeout;
        let mut inner = self.lock();
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Ok(Some(item));
            }
            if inner.closed {
                return Ok(None);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return Err(());
            }
            let (guard, _) = self
                .cv
                .wait_timeout(inner, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            inner = guard;
        }
    }

    /// Closes the queue: further admissions are rejected, and consumers
    /// see [`None`] once the remaining items drain.
    pub fn close(&self) {
        self.lock().closed = true;
        self.cv.notify_all();
    }

    /// Closes the queue *and discards everything still pending*,
    /// returning how many items were dropped. Consumers unblock with
    /// [`None`] immediately. This is the crash path — graceful shutdown
    /// uses [`close`](Self::close) and lets the backlog drain.
    pub fn close_now(&self) -> usize {
        let mut inner = self.lock();
        inner.closed = true;
        let dropped = inner.items.len();
        inner.items.clear();
        drop(inner);
        self.cv.notify_all();
        dropped
    }

    /// Whether [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    /// Items currently pending.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether no items are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The admission bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn admission_is_all_or_nothing() {
        let q = BoundedQueue::new(3);
        assert!(q.admit(vec![1, 2]).is_admitted());
        // Two more do not fit next to the two pending; nothing of the
        // submission may land.
        let rejected = q.admit(vec![3, 4]);
        assert!(!rejected.is_admitted());
        assert_eq!(q.len(), 2);
        // One more fits exactly.
        assert!(q.admit(vec![5]).is_admitted());
        assert_eq!(q.len(), 3);
        assert!(q.try_push(6).is_err());
    }

    #[test]
    fn busy_hint_scales_with_depth() {
        let q = BoundedQueue::new(4).with_hint_per_item(Duration::from_millis(10));
        let shallow = q.busy_hint();
        q.admit(vec![1, 2, 3]);
        let deep = q.busy_hint();
        assert!(deep > shallow, "{deep:?} vs {shallow:?}");
        match q.admit(vec![9, 9]) {
            Admission::Busy { retry_after_hint } => {
                assert_eq!(retry_after_hint, Duration::from_millis(40))
            }
            other => panic!("expected Busy, got {other:?}"),
        }
    }

    #[test]
    fn pop_drains_fifo_and_observes_close() {
        let q = BoundedQueue::new(8);
        q.admit(vec![1, 2, 3]);
        q.close();
        assert!(q.try_push(4).is_err(), "closed queues admit nothing");
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None, "closed and drained");
    }

    #[test]
    fn close_now_drops_the_backlog() {
        let q = BoundedQueue::new(8);
        q.admit(vec![1, 2, 3]);
        assert_eq!(q.close_now(), 3);
        assert_eq!(q.pop(), None, "pending items were discarded");
        assert!(q.try_push(4).is_err());
        assert_eq!(q.close_now(), 0, "idempotent once empty");
    }

    #[test]
    fn pop_timeout_distinguishes_empty_from_closed() {
        let q: BoundedQueue<u32> = BoundedQueue::new(2);
        assert_eq!(q.pop_timeout(Duration::from_millis(10)), Err(()));
        q.close();
        assert_eq!(q.pop_timeout(Duration::from_millis(10)), Ok(None));
    }

    #[test]
    fn concurrent_producers_and_consumers_conserve_items() {
        let q = BoundedQueue::new(16);
        let consumed = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    while q.pop().is_some() {
                        consumed.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
            scope.spawn(|| {
                let mut sent = 0;
                while sent < 100 {
                    if q.try_push(sent).is_ok() {
                        sent += 1;
                    } else {
                        std::thread::yield_now();
                    }
                }
                q.close();
            });
        });
        assert_eq!(consumed.load(Ordering::Relaxed), 100);
    }
}
