//! The adaptive-steering tier: online policy switching and
//! ineffectuality-aware steering.
//!
//! Both policies here are *dynamic*: they change steering behaviour
//! during a run, from nothing but the call sequence every simulator
//! drives a [`SteeringPolicy`] through (steer at dispatch, priority
//! once per dispatch, on-commit in retirement order). That closure
//! property is what keeps the differential oracle honest — the engine
//! and the reference simulator hand the policy bit-identical views in
//! the same order, so a policy that is a deterministic function of its
//! observed call sequence agrees on both sides by construction, with no
//! seed and no wall clock involved.
//!
//! * [`AdaptivePolicy`] re-evaluates, every [`AdaptivePolicy::WINDOW_CYCLES`]
//!   cycles, which of the paper's five static rungs fits the current
//!   phase, from three windowed signals: the share of committed
//!   instructions whose readiness was bound by a *forwarded* remote
//!   operand, the share of placements the policy had to load-balance
//!   away from their producer, and the average occupancy spread across
//!   clusters at steering time. Switches apply only after
//!   [`AdaptivePolicy::SWITCH_AFTER`] consecutive windows agree
//!   (hysteresis), so a single noisy window cannot thrash the rung.
//! * [`IneffPolicy`] learns, at commit time, which static instructions
//!   produce *dead values* — results overwritten before any consumer
//!   reads them — in a per-PC saturating-counter table, and steers
//!   predicted-ineffectual instructions to the least-loaded cluster:
//!   they have no consumer worth staying close to, so they make ideal
//!   load-balancing filler.
//! * [`CellPolicy`] is the factory every evaluation path builds policies
//!   through: static kinds get the classic [`PaperPolicy`], the two
//!   dynamic kinds get their wrappers, and the predictor bank threads
//!   through all of them identically across training epochs.

use crate::bank::PredictorBank;
use crate::policy::{PaperPolicy, PolicyConfig, PolicyKind};
use ccs_isa::{Pc, RegFile};
use ccs_sim::{
    Cycle, InstRecord, SteerCause, SteerDecision, SteerOutcome, SteerView, SteeringPolicy,
};
use ccs_trace::{DynIdx, DynInst};
use ccs_uarch::SaturatingCounter;

/// Counters accumulated over one adaptive window, reset at each window
/// boundary. All signals are exact integer counts; the derived shares
/// are pure functions of them, so the decision rule is deterministic
/// and seed-free.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowSignals {
    /// Steer consultations observed (including repeated attempts for a
    /// stalled head).
    pub steer_calls: u64,
    /// Sum over steer calls of `max(occupancy) - min(occupancy)`.
    pub spread_sum: u64,
    /// Window capacity per cluster at the last steer call (normalizes
    /// the spread).
    pub capacity: u64,
    /// Placements actually made (steer calls that returned a cluster).
    pub placements: u64,
    /// Placements forced to the least-loaded cluster because the
    /// desired producer cluster was full ([`SteerCause::LoadBalance`]).
    pub lb_placements: u64,
    /// Placements of instructions with no in-flight producers
    /// ([`SteerCause::NoDeps`]).
    pub nodeps_placements: u64,
    /// Instructions committed in the window.
    pub commits: u64,
    /// Committed instructions whose ready time was bound by a remote
    /// operand that paid forwarding latency
    /// ([`InstRecord::forwarding_on_ready`] > 0).
    pub fwd_commits: u64,
}

impl WindowSignals {
    /// Share of committed instructions bound by inter-cluster
    /// forwarding, in `[0, 1]`; 0.0 with no commits.
    pub fn fwd_share(&self) -> f64 {
        share(self.fwd_commits, self.commits)
    }

    /// Share of placements that were load-balance steers, in `[0, 1]`;
    /// 0.0 with no placements.
    pub fn lb_share(&self) -> f64 {
        share(self.lb_placements, self.placements)
    }

    /// Share of placements with no in-flight producers, in `[0, 1]`;
    /// 0.0 with no placements.
    pub fn nodeps_share(&self) -> f64 {
        share(self.nodeps_placements, self.placements)
    }

    /// Average occupancy spread at steer time, normalized by the window
    /// capacity, in `[0, 1]`; 0.0 with no steer calls.
    pub fn imbalance(&self) -> f64 {
        if self.steer_calls == 0 || self.capacity == 0 {
            0.0
        } else {
            share(self.spread_sum, self.steer_calls * self.capacity)
        }
    }
}

/// `num / den` with an explicit 0.0 (never NaN) for an empty window.
fn share(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// The online policy switcher: one [`PaperPolicy`] whose configuration
/// is re-chosen among the paper's five static rungs at fixed cycle
/// windows, from the windowed steering signals in [`WindowSignals`].
#[derive(Debug, Clone)]
pub struct AdaptivePolicy {
    inner: PaperPolicy,
    current: PolicyKind,
    /// The rung the most recent window(s) asked for, when it differs
    /// from `current`.
    pending: PolicyKind,
    /// Consecutive windows that agreed on `pending`.
    agree: u32,
    /// Exclusive end cycle of the window being accumulated.
    window_end: Cycle,
    signals: WindowSignals,
    switches: u64,
}

impl AdaptivePolicy {
    /// Cycles per decision window. Long enough that the signal shares
    /// are not dominated by a handful of instructions, short enough to
    /// catch phase changes inside the paper's small traces.
    pub const WINDOW_CYCLES: Cycle = 512;

    /// Consecutive windows that must agree on the same different rung
    /// before the switcher moves (hysteresis against thrashing).
    pub const SWITCH_AFTER: u32 = 2;

    /// Forwarding-bound commit share at or above which the phase counts
    /// as communication-bound.
    pub const FWD_HEAVY: f64 = 0.08;

    /// Load-balance placement share at or above which the phase counts
    /// as steering-pressure-bound.
    pub const LB_HEAVY: f64 = 0.15;

    /// Normalized occupancy spread at or above which the phase counts
    /// as imbalance-bound.
    pub const IMBALANCE_HEAVY: f64 = 0.40;

    /// No-producer placement share at or above which LoC stratification
    /// stops mattering (mostly independent instructions).
    pub const NODEPS_HEAVY: f64 = 0.60;

    /// A fresh switcher over `bank`, starting on the focused+LoC rung
    /// (the same starting configuration [`PolicyKind::Adaptive`]'s
    /// `config()` reports).
    pub fn new(bank: PredictorBank) -> Self {
        let start = PolicyKind::FocusedLoc;
        AdaptivePolicy {
            inner: PaperPolicy::from_config(start.config(), bank, PolicyKind::Adaptive.name()),
            current: start,
            pending: start,
            agree: 0,
            window_end: Self::WINDOW_CYCLES,
            signals: WindowSignals::default(),
            switches: 0,
        }
    }

    /// The deterministic window-to-rung decision rule, exposed as a
    /// pure function so the mutation tests can prove every arm
    /// reachable. `trained` is whether the predictor bank has completed
    /// at least one training epoch — criticality-guided rungs are
    /// pointless on an untrained bank.
    pub fn desired_rung(signals: &WindowSignals, trained: bool) -> PolicyKind {
        if !trained {
            // No criticality signal yet: the criticality-blind baseline.
            return PolicyKind::Dependence;
        }
        if signals.fwd_share() >= Self::FWD_HEAVY || signals.lb_share() >= Self::LB_HEAVY {
            // Communication-bound phase: critical chains are paying
            // forwarding latency (or being steered away from their
            // producers); hold dispatch instead.
            PolicyKind::StallOverSteer
        } else if signals.imbalance() >= Self::IMBALANCE_HEAVY {
            // One cluster saturated while others idle: push
            // non-critical consumers away proactively.
            PolicyKind::Proactive
        } else if signals.nodeps_share() >= Self::NODEPS_HEAVY {
            // Mostly independent instructions: binary criticality
            // scheduling suffices, LoC stratification adds nothing.
            PolicyKind::Focused
        } else {
            // Calm phase: focused steering with LoC scheduling.
            PolicyKind::FocusedLoc
        }
    }

    /// The rung currently steering.
    pub fn current_kind(&self) -> PolicyKind {
        self.current
    }

    /// Rung switches taken so far.
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// Releases the predictor state (to train between epochs).
    pub fn into_bank(self) -> PredictorBank {
        self.inner.into_bank()
    }

    /// The predictor state.
    pub fn bank(&self) -> &PredictorBank {
        self.inner.bank()
    }

    /// Closes the window that ended before `now`: evaluates the
    /// decision rule over its signals, advances the hysteresis state,
    /// and re-arms the accumulator for the window containing `now`.
    fn roll_window(&mut self, now: Cycle) {
        let trained = self.inner.bank().trained_epochs() > 0;
        let desired = Self::desired_rung(&self.signals, trained);
        if desired == self.current {
            self.pending = self.current;
            self.agree = 0;
        } else if desired == self.pending {
            self.agree += 1;
        } else {
            self.pending = desired;
            self.agree = 1;
        }
        if self.pending != self.current && self.agree >= Self::SWITCH_AFTER {
            self.current = self.pending;
            self.inner.set_config(self.current.config());
            self.agree = 0;
            self.switches += 1;
        }
        self.signals = WindowSignals::default();
        self.window_end = (now / Self::WINDOW_CYCLES + 1) * Self::WINDOW_CYCLES;
    }
}

impl SteeringPolicy for AdaptivePolicy {
    fn steer(&mut self, view: &SteerView<'_>) -> SteerOutcome {
        if view.now >= self.window_end {
            self.roll_window(view.now);
        }
        let (min, max) = view
            .occupancy
            .iter()
            .fold((usize::MAX, 0), |(lo, hi), &o| (lo.min(o), hi.max(o)));
        self.signals.steer_calls += 1;
        self.signals.spread_sum += (max - min) as u64;
        self.signals.capacity = view.capacity as u64;
        let outcome = self.inner.steer(view);
        if let SteerDecision::To { cause, .. } = outcome.decision {
            self.signals.placements += 1;
            match cause {
                SteerCause::LoadBalance => self.signals.lb_placements += 1,
                SteerCause::NoDeps => self.signals.nodeps_placements += 1,
                _ => {}
            }
        }
        outcome
    }

    fn priority(&mut self, idx: DynIdx, inst: &DynInst) -> i64 {
        self.inner.priority(idx, inst)
    }

    fn on_commit(&mut self, idx: DynIdx, inst: &DynInst, record: &InstRecord) {
        self.signals.commits += 1;
        if record.forwarding_on_ready() > 0 {
            self.signals.fwd_commits += 1;
        }
        self.inner.on_commit(idx, inst, record);
    }

    fn name(&self) -> &str {
        PolicyKind::Adaptive.name()
    }
}

/// The last architectural writer of a register, as seen by the
/// in-order retiring stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct LastWrite {
    /// The writer's PC (the table index trained on redefinition).
    pc: Pc,
    /// Whether any later instruction read the value before it was
    /// overwritten.
    referenced: bool,
}

/// Ineffectuality-aware steering: focused steering plus an online
/// dead-value detector.
///
/// Commit order is program order, so a last-writer table over the
/// architectural register file detects dead values *exactly*: when a
/// register is redefined, the previous writer was ineffectual iff no
/// retired instruction read the register in between. Each redefinition
/// trains a per-PC 2-bit saturating counter (the cheap table-based
/// hardware analogue); once a PC's counter saturates, its future
/// instances are predicted ineffectual and steered to the least-loaded
/// cluster — they have no consumer worth staying close to — with their
/// scheduling priority demoted below every effectual instruction.
#[derive(Debug, Clone)]
pub struct IneffPolicy {
    inner: PaperPolicy,
    last_writer: RegFile<LastWrite>,
    ineff: PcTableCounters,
    predicted: u64,
}

/// Alias kept local: the per-PC ineffectuality counters.
type PcTableCounters = ccs_predictors::PcTable<SaturatingCounter>;

impl IneffPolicy {
    /// A fresh detector wrapping the given inner rung configuration
    /// (normally [`PolicyKind::IneffSteer`]'s config, i.e. focused
    /// steering) over `bank`.
    pub fn new(cfg: PolicyConfig, bank: PredictorBank) -> Self {
        IneffPolicy {
            inner: PaperPolicy::from_config(cfg, bank, PolicyKind::IneffSteer.name()),
            last_writer: RegFile::new(),
            ineff: PcTableCounters::new(),
            predicted: 0,
        }
    }

    /// Whether the detector currently predicts the instruction at `pc`
    /// to produce a dead value.
    pub fn predicts_ineffectual(&self, pc: Pc) -> bool {
        self.ineff.get(pc).is_some_and(SaturatingCounter::msb_set)
    }

    /// Instructions steered as predicted-ineffectual so far.
    pub fn predicted_count(&self) -> u64 {
        self.predicted
    }

    /// Releases the predictor state (to train between epochs).
    pub fn into_bank(self) -> PredictorBank {
        self.inner.into_bank()
    }

    /// The predictor state.
    pub fn bank(&self) -> &PredictorBank {
        self.inner.bank()
    }
}

impl SteeringPolicy for IneffPolicy {
    fn steer(&mut self, view: &SteerView<'_>) -> SteerOutcome {
        let pc = view.inst.pc();
        if view.clusters() > 1
            && view.inst.inst.dst.is_some()
            && self.predicts_ineffectual(pc)
        {
            if let Some(c) = view.least_loaded_with_space() {
                self.predicted += 1;
                let bank = self.inner.bank();
                return SteerOutcome::to(c, SteerCause::Proactive)
                    .with_criticality(bank.predicted_critical(pc), bank.loc(pc) as f32);
            }
            // Every window full: fall through to the inner rung, which
            // stalls identically.
        }
        self.inner.steer(view)
    }

    fn priority(&mut self, idx: DynIdx, inst: &DynInst) -> i64 {
        if inst.inst.dst.is_some() && self.predicts_ineffectual(inst.pc()) {
            // Below every inner priority (those are all >= 0): dead
            // values issue last.
            return -1;
        }
        self.inner.priority(idx, inst)
    }

    fn on_commit(&mut self, idx: DynIdx, inst: &DynInst, record: &InstRecord) {
        // Reads first: an instruction that reads and redefines the same
        // register references the *previous* writer's value.
        for src in inst.inst.sources() {
            if let Some(w) = self.last_writer.get(src).copied() {
                if !w.referenced {
                    self.last_writer.set(
                        src,
                        LastWrite {
                            referenced: true,
                            ..w
                        },
                    );
                }
            }
        }
        if let Some(dst) = inst.inst.dst {
            if let Some(prev) = self.last_writer.get(dst).copied() {
                let dead = !prev.referenced;
                let c = self.ineff.entry_with(prev.pc, SaturatingCounter::bimodal2);
                if dead {
                    c.add(1);
                } else {
                    c.sub(1);
                }
            }
            self.last_writer.set(
                dst,
                LastWrite {
                    pc: inst.pc(),
                    referenced: false,
                },
            );
        }
        self.inner.on_commit(idx, inst, record);
    }

    fn name(&self) -> &str {
        PolicyKind::IneffSteer.name()
    }
}

/// The policy factory every evaluation path (experiment driver,
/// differential campaign, oracle) builds steering policies through.
///
/// Static kinds become a plain [`PaperPolicy`] with the given
/// configuration; [`PolicyKind::Adaptive`] and
/// [`PolicyKind::IneffSteer`] become their dynamic wrappers. Because
/// the engine and the reference oracle construct the *same* variant
/// from the same bank and drive it through the same call sequence, the
/// dynamic policies differentially verify exactly like the static
/// ones.
#[derive(Debug, Clone)]
pub enum CellPolicy {
    /// A static rung of the paper's ladder (possibly with an ablation
    /// configuration).
    Paper(PaperPolicy),
    /// The online policy switcher.
    Adaptive(AdaptivePolicy),
    /// Ineffectuality-aware steering.
    Ineff(IneffPolicy),
}

impl CellPolicy {
    /// Builds the policy object for `kind` over `bank`.
    ///
    /// `cfg` configures the static kinds and the inner rung of
    /// [`PolicyKind::IneffSteer`]; the adaptive switcher ignores it
    /// (its rung configurations come from the canonical
    /// [`PolicyKind::config`] of whichever rung the decision rule
    /// picks). `name` labels the static policy object (normally
    /// `kind.name()`; ablations pass their own label).
    pub fn build(
        kind: PolicyKind,
        cfg: PolicyConfig,
        bank: PredictorBank,
        name: &'static str,
    ) -> CellPolicy {
        match kind {
            PolicyKind::Adaptive => CellPolicy::Adaptive(AdaptivePolicy::new(bank)),
            PolicyKind::IneffSteer => CellPolicy::Ineff(IneffPolicy::new(cfg, bank)),
            _ => CellPolicy::Paper(PaperPolicy::from_config(cfg, bank, name)),
        }
    }

    /// Releases the predictor state (to train between epochs).
    pub fn into_bank(self) -> PredictorBank {
        match self {
            CellPolicy::Paper(p) => p.into_bank(),
            CellPolicy::Adaptive(p) => p.into_bank(),
            CellPolicy::Ineff(p) => p.into_bank(),
        }
    }

    /// The predictor state.
    pub fn bank(&self) -> &PredictorBank {
        match self {
            CellPolicy::Paper(p) => p.bank(),
            CellPolicy::Adaptive(p) => p.bank(),
            CellPolicy::Ineff(p) => p.bank(),
        }
    }
}

impl SteeringPolicy for CellPolicy {
    fn steer(&mut self, view: &SteerView<'_>) -> SteerOutcome {
        match self {
            CellPolicy::Paper(p) => p.steer(view),
            CellPolicy::Adaptive(p) => p.steer(view),
            CellPolicy::Ineff(p) => p.steer(view),
        }
    }

    fn priority(&mut self, idx: DynIdx, inst: &DynInst) -> i64 {
        match self {
            CellPolicy::Paper(p) => p.priority(idx, inst),
            CellPolicy::Adaptive(p) => p.priority(idx, inst),
            CellPolicy::Ineff(p) => p.priority(idx, inst),
        }
    }

    fn on_commit(&mut self, idx: DynIdx, inst: &DynInst, record: &InstRecord) {
        match self {
            CellPolicy::Paper(p) => p.on_commit(idx, inst, record),
            CellPolicy::Adaptive(p) => p.on_commit(idx, inst, record),
            CellPolicy::Ineff(p) => p.on_commit(idx, inst, record),
        }
    }

    fn name(&self) -> &str {
        match self {
            CellPolicy::Paper(p) => p.name(),
            CellPolicy::Adaptive(p) => p.name(),
            CellPolicy::Ineff(p) => p.name(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bank::LocMode;
    use ccs_isa::{ArchReg, OpClass, StaticInst};
    use ccs_sim::ReadyBound;
    use ccs_trace::TraceBuilder;

    fn trained_bank() -> PredictorBank {
        let mut b = TraceBuilder::new();
        for _ in 0..32 {
            b.push_simple(StaticInst::new(Pc::new(0x0), OpClass::IntAlu).with_dst(ArchReg::int(1)));
            b.push_simple(StaticInst::new(Pc::new(0x4), OpClass::IntAlu).with_dst(ArchReg::int(2)));
        }
        let trace = b.finish();
        let crit: Vec<bool> = (0..trace.len()).map(|i| i % 2 == 0).collect();
        let mut bank = PredictorBank::new(LocMode::Exact, 0);
        bank.train_criticality(&trace, &crit);
        bank
    }

    fn dyn_inst(pc: u64, srcs: [Option<ArchReg>; 2], dst: Option<ArchReg>) -> DynInst {
        let mut inst = StaticInst::new(Pc::new(pc), OpClass::IntAlu).with_srcs(srcs);
        if let Some(d) = dst {
            inst = inst.with_dst(d);
        }
        DynInst {
            inst,
            deps: [None, None],
            mem_addr: None,
            branch: None,
        }
    }

    fn commit_record(fwd: u32) -> InstRecord {
        InstRecord {
            fetch: 0,
            dispatch: 0,
            ready: 0,
            issue: 0,
            complete: 0,
            commit: 0,
            cluster: 0,
            mispredicted: false,
            l1_miss: false,
            mem_extra: 0,
            dispatch_bound: ccs_sim::DispatchBound::FrontEnd,
            ready_bound: if fwd > 0 {
                ReadyBound::Operand {
                    slot: 0,
                    producer: DynIdx::new(0),
                    fwd,
                }
            } else {
                ReadyBound::Dispatch
            },
            commit_bound: ccs_sim::CommitBound::Complete,
            steer_cause: SteerCause::Only,
            predicted_critical: false,
            loc: 0.0,
        }
    }

    // ---- decision-rule mutation tests: every arm is reachable and ----
    // ---- every threshold is load-bearing.                         ----

    #[test]
    fn untrained_bank_selects_dependence() {
        let s = WindowSignals {
            commits: 100,
            fwd_commits: 100,
            ..WindowSignals::default()
        };
        assert_eq!(
            AdaptivePolicy::desired_rung(&s, false),
            PolicyKind::Dependence
        );
    }

    #[test]
    fn forwarding_share_selects_stall_over_steer() {
        let calm = WindowSignals {
            commits: 100,
            fwd_commits: 7,
            ..WindowSignals::default()
        };
        assert_eq!(
            AdaptivePolicy::desired_rung(&calm, true),
            PolicyKind::FocusedLoc
        );
        let heavy = WindowSignals {
            commits: 100,
            fwd_commits: 8,
            ..calm
        };
        assert_eq!(
            AdaptivePolicy::desired_rung(&heavy, true),
            PolicyKind::StallOverSteer
        );
    }

    #[test]
    fn load_balance_share_selects_stall_over_steer() {
        let heavy = WindowSignals {
            placements: 100,
            lb_placements: 15,
            ..WindowSignals::default()
        };
        assert_eq!(
            AdaptivePolicy::desired_rung(&heavy, true),
            PolicyKind::StallOverSteer
        );
        let calm = WindowSignals {
            lb_placements: 14,
            ..heavy
        };
        assert_eq!(
            AdaptivePolicy::desired_rung(&calm, true),
            PolicyKind::FocusedLoc
        );
    }

    #[test]
    fn occupancy_imbalance_selects_proactive() {
        let s = WindowSignals {
            steer_calls: 10,
            spread_sum: 40,
            capacity: 10,
            ..WindowSignals::default()
        };
        assert_eq!(
            AdaptivePolicy::desired_rung(&s, true),
            PolicyKind::Proactive
        );
        let below = WindowSignals {
            spread_sum: 39,
            ..s
        };
        assert_eq!(
            AdaptivePolicy::desired_rung(&below, true),
            PolicyKind::FocusedLoc
        );
    }

    #[test]
    fn nodeps_share_selects_focused() {
        let s = WindowSignals {
            placements: 10,
            nodeps_placements: 6,
            ..WindowSignals::default()
        };
        assert_eq!(AdaptivePolicy::desired_rung(&s, true), PolicyKind::Focused);
    }

    #[test]
    fn communication_outranks_imbalance() {
        // Both signals heavy: the rule prefers collocation over
        // balancing — forwarding pain is the paper's headline loss.
        let s = WindowSignals {
            commits: 100,
            fwd_commits: 50,
            steer_calls: 10,
            spread_sum: 80,
            capacity: 10,
            ..WindowSignals::default()
        };
        assert_eq!(
            AdaptivePolicy::desired_rung(&s, true),
            PolicyKind::StallOverSteer
        );
    }

    #[test]
    fn empty_window_is_calm_not_nan() {
        let s = WindowSignals::default();
        assert_eq!(s.fwd_share(), 0.0);
        assert_eq!(s.lb_share(), 0.0);
        assert_eq!(s.imbalance(), 0.0);
        assert_eq!(
            AdaptivePolicy::desired_rung(&s, true),
            PolicyKind::FocusedLoc
        );
    }

    // ---- hysteresis: one heavy window must not switch; SWITCH_AFTER ----
    // ---- agreeing windows must.                                     ----

    #[test]
    fn switcher_waits_for_consecutive_windows_then_moves() {
        let mut p = AdaptivePolicy::new(trained_bank());
        assert_eq!(p.current_kind(), PolicyKind::FocusedLoc);
        let occupancy = vec![0usize, 0, 0, 0];
        let inst = dyn_inst(0x0, [None, None], Some(ArchReg::int(3)));
        let steer_at = |p: &mut AdaptivePolicy, now: Cycle| {
            let view = SteerView {
                inst: &inst,
                idx: DynIdx::new(0),
                now,
                occupancy: &occupancy,
                capacity: 8,
                producers: [None, None],
            };
            p.steer(&view);
        };
        let heavy_window = |p: &mut AdaptivePolicy| {
            for _ in 0..50 {
                p.on_commit(
                    DynIdx::new(0),
                    &dyn_inst(0x0, [None, None], Some(ArchReg::int(3))),
                    &commit_record(2),
                );
            }
        };
        // Window 0 is communication-heavy; its close at the first steer
        // past the boundary asks for StallOverSteer but must not switch
        // yet (hysteresis).
        steer_at(&mut p, 0);
        heavy_window(&mut p);
        steer_at(&mut p, AdaptivePolicy::WINDOW_CYCLES);
        assert_eq!(p.current_kind(), PolicyKind::FocusedLoc, "one window is not enough");
        assert_eq!(p.switches(), 0);
        // Window 1 agrees: the close of the second heavy window switches.
        heavy_window(&mut p);
        steer_at(&mut p, 2 * AdaptivePolicy::WINDOW_CYCLES);
        assert_eq!(p.current_kind(), PolicyKind::StallOverSteer);
        assert_eq!(p.switches(), 1);
        // The inner configuration actually moved.
        assert!(p.inner.config().stall_threshold.is_some());
        // Calm windows walk it back after two more agreements. (The
        // walk-back target is Focused: the only placement in these
        // quiet windows is the probe instruction itself, which has no
        // producers, so the no-deps share is 1.0.)
        steer_at(&mut p, 3 * AdaptivePolicy::WINDOW_CYCLES);
        assert_eq!(p.current_kind(), PolicyKind::StallOverSteer);
        steer_at(&mut p, 4 * AdaptivePolicy::WINDOW_CYCLES);
        assert_eq!(p.current_kind(), PolicyKind::Focused);
        assert_eq!(p.switches(), 2);
    }

    #[test]
    fn disagreeing_windows_reset_the_agreement_run() {
        let mut p = AdaptivePolicy::new(trained_bank());
        let occupancy = vec![0usize, 0, 0, 0];
        let inst = dyn_inst(0x0, [None, None], Some(ArchReg::int(3)));
        let steer_at = |p: &mut AdaptivePolicy, now: Cycle| {
            let view = SteerView {
                inst: &inst,
                idx: DynIdx::new(0),
                now,
                occupancy: &occupancy,
                capacity: 8,
                producers: [None, None],
            };
            p.steer(&view);
        };
        // heavy, calm, heavy, heavy: the lone heavy window's vote is
        // cancelled by the calm one; only the last two consecutive
        // heavy windows switch.
        for (w, heavy) in [(0u64, true), (1, false), (2, true), (3, true)] {
            steer_at(&mut p, w * AdaptivePolicy::WINDOW_CYCLES);
            if heavy {
                for _ in 0..50 {
                    p.on_commit(
                        DynIdx::new(0),
                        &dyn_inst(0x0, [None, None], Some(ArchReg::int(3))),
                        &commit_record(2),
                    );
                }
            }
            if w < 3 {
                assert_eq!(
                    p.current_kind(),
                    PolicyKind::FocusedLoc,
                    "window {w}: must not have switched yet"
                );
            }
        }
        steer_at(&mut p, 4 * AdaptivePolicy::WINDOW_CYCLES);
        assert_eq!(p.current_kind(), PolicyKind::StallOverSteer);
    }

    // ---- ineffectuality detection ----

    #[test]
    fn dead_values_train_and_steer_to_the_spare_cluster() {
        let mut p = IneffPolicy::new(PolicyKind::IneffSteer.config(), trained_bank());
        let r1 = ArchReg::int(1);
        // PC 0x100 writes r1; PC 0x104 redefines r1 without anyone
        // reading it: 0x100 is a dead-value producer.
        for _ in 0..4 {
            p.on_commit(
                DynIdx::new(0),
                &dyn_inst(0x100, [None, None], Some(r1)),
                &commit_record(0),
            );
            p.on_commit(
                DynIdx::new(1),
                &dyn_inst(0x104, [None, None], Some(r1)),
                &commit_record(0),
            );
        }
        assert!(p.predicts_ineffectual(Pc::new(0x100)));
        // Steering a predicted-dead instance ignores its producer and
        // takes the least-loaded cluster.
        let inst = dyn_inst(0x100, [Some(ArchReg::int(7)), None], Some(r1));
        let occupancy = vec![5usize, 1, 4, 4];
        let view = SteerView {
            inst: &inst,
            idx: DynIdx::new(9),
            now: 0,
            occupancy: &occupancy,
            capacity: 8,
            producers: [
                Some(ccs_sim::ProducerInfo {
                    idx: DynIdx::new(2),
                    pc: Pc::new(0x0),
                    cluster: 0,
                    completed: false,
                }),
                None,
            ],
        };
        let o = p.steer(&view);
        assert_eq!(
            o.decision,
            SteerDecision::To {
                cluster: 1,
                cause: SteerCause::Proactive
            }
        );
        assert_eq!(p.predicted_count(), 1);
        // And its scheduling priority is demoted below everything.
        assert_eq!(p.priority(DynIdx::new(9), &inst), -1);
    }

    #[test]
    fn referenced_values_unlearn_ineffectuality() {
        let mut p = IneffPolicy::new(PolicyKind::IneffSteer.config(), trained_bank());
        let r1 = ArchReg::int(1);
        // Writer, reader, redefinition: the value was used.
        for _ in 0..4 {
            p.on_commit(
                DynIdx::new(0),
                &dyn_inst(0x100, [None, None], Some(r1)),
                &commit_record(0),
            );
            p.on_commit(
                DynIdx::new(1),
                &dyn_inst(0x108, [Some(r1), None], Some(ArchReg::int(2))),
                &commit_record(0),
            );
            p.on_commit(
                DynIdx::new(2),
                &dyn_inst(0x104, [None, None], Some(r1)),
                &commit_record(0),
            );
        }
        assert!(!p.predicts_ineffectual(Pc::new(0x100)));
        // An unpredicted instruction delegates to the inner rung.
        let inst = dyn_inst(0x100, [None, None], Some(r1));
        let occupancy = vec![2usize, 0, 0, 0];
        let view = SteerView {
            inst: &inst,
            idx: DynIdx::new(9),
            now: 0,
            occupancy: &occupancy,
            capacity: 8,
            producers: [None, None],
        };
        let o = p.steer(&view);
        assert!(matches!(
            o.decision,
            SteerDecision::To {
                cause: SteerCause::NoDeps,
                ..
            }
        ));
        assert!(p.priority(DynIdx::new(9), &inst) >= 0);
    }

    #[test]
    fn read_then_redefine_references_the_previous_writer() {
        let mut p = IneffPolicy::new(PolicyKind::IneffSteer.config(), trained_bank());
        let r1 = ArchReg::int(1);
        // `r1 = f(r1)` chains: each instance reads the previous value,
        // so none are dead.
        for _ in 0..6 {
            p.on_commit(
                DynIdx::new(0),
                &dyn_inst(0x100, [Some(r1), None], Some(r1)),
                &commit_record(0),
            );
        }
        assert!(!p.predicts_ineffectual(Pc::new(0x100)));
    }

    // ---- factory ----

    #[test]
    fn factory_builds_the_matching_variant() {
        let bank = PredictorBank::new(LocMode::Exact, 0);
        for kind in [
            PolicyKind::Dependence,
            PolicyKind::Focused,
            PolicyKind::FocusedLoc,
            PolicyKind::StallOverSteer,
            PolicyKind::Proactive,
        ] {
            let p = CellPolicy::build(kind, kind.config(), bank.clone(), kind.name());
            assert!(matches!(p, CellPolicy::Paper(_)), "{kind:?}");
            assert_eq!(p.name(), kind.name());
        }
        let a = CellPolicy::build(
            PolicyKind::Adaptive,
            PolicyKind::Adaptive.config(),
            bank.clone(),
            PolicyKind::Adaptive.name(),
        );
        assert!(matches!(a, CellPolicy::Adaptive(_)));
        assert_eq!(a.name(), "adaptive");
        let i = CellPolicy::build(
            PolicyKind::IneffSteer,
            PolicyKind::IneffSteer.config(),
            bank,
            PolicyKind::IneffSteer.name(),
        );
        assert!(matches!(i, CellPolicy::Ineff(_)));
        assert_eq!(i.name(), "ineff-steer");
    }
}
