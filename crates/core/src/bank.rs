//! The shared predictor state the paper's policies are driven by.

use ccs_isa::Pc;
use ccs_predictors::{
    BinaryCriticality, CriticalityPredictor, ExactLoc, LocEstimator, PcTable, QuantizedLoc,
};
use ccs_trace::Trace;
use ccs_uarch::SaturatingCounter;

/// Which likelihood-of-criticality implementation to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocMode {
    /// Exact instance counting (unlimited precision) — the §4 reference.
    Exact,
    /// 16 levels in a 4-bit probabilistic counter — the §7 hardware
    /// proposal (Riley-Zilles updates).
    Quantized16,
    /// A probabilistic counter with the given number of bits — the
    /// quantization-depth ablation around the §7 design point.
    QuantizedBits(u32),
}

#[derive(Debug, Clone)]
enum LocImpl {
    Exact(ExactLoc),
    Quantized(QuantizedLoc),
}

/// The predictor state shared by the paper's policies and carried across
/// training epochs: the Fields binary criticality predictor, a likelihood
/// of criticality estimator, and the proactive load-balancer's learned
/// per-PC load-balance candidacy.
#[derive(Debug, Clone)]
pub struct PredictorBank {
    binary: BinaryCriticality,
    loc: LocImpl,
    /// 2-bit hysteresis per consumer PC: counts toward "this consumer is
    /// never the most critical one; proactively load-balance it" (§6).
    lb_candidates: PcTable<SaturatingCounter>,
    trained_epochs: u32,
}

impl PredictorBank {
    /// Number of LoC stratification levels the paper uses.
    pub const LOC_LEVELS: u32 = 16;

    /// Creates an untrained bank. `seed` drives the probabilistic counter
    /// updates when `mode` is [`LocMode::Quantized16`].
    pub fn new(mode: LocMode, seed: u64) -> Self {
        PredictorBank {
            binary: BinaryCriticality::new(),
            loc: match mode {
                LocMode::Exact => LocImpl::Exact(ExactLoc::new()),
                LocMode::Quantized16 => LocImpl::Quantized(QuantizedLoc::new(seed)),
                LocMode::QuantizedBits(bits) => {
                    LocImpl::Quantized(QuantizedLoc::with_bits(seed, bits))
                }
            },
            lb_candidates: PcTable::new(),
            trained_epochs: 0,
        }
    }

    /// The binary criticality prediction for `pc`.
    pub fn predicted_critical(&self, pc: Pc) -> bool {
        self.binary.predict(pc)
    }

    /// The LoC estimate for `pc` in `[0, 1]`.
    pub fn loc(&self, pc: Pc) -> f64 {
        match &self.loc {
            LocImpl::Exact(l) => l.loc(pc),
            LocImpl::Quantized(l) => l.loc(pc),
        }
    }

    /// The LoC level for `pc` in `0..16`.
    pub fn loc_level(&self, pc: Pc) -> u32 {
        match &self.loc {
            LocImpl::Exact(l) => l.level(pc, Self::LOC_LEVELS),
            LocImpl::Quantized(l) => l.level(pc, Self::LOC_LEVELS),
        }
    }

    /// Trains the criticality predictors from one execution's critical
    /// path (`e_critical` parallel to `trace`).
    ///
    /// # Panics
    ///
    /// Panics if `e_critical` does not match `trace` in length.
    pub fn train_criticality(&mut self, trace: &Trace, e_critical: &[bool]) {
        assert_eq!(trace.len(), e_critical.len());
        for (i, inst) in trace.iter() {
            let critical = e_critical[i.index()];
            let pc = inst.pc();
            self.binary.train(pc, critical);
            match &mut self.loc {
                LocImpl::Exact(l) => l.train(pc, critical),
                LocImpl::Quantized(l) => l.train(pc, critical),
            }
        }
        self.trained_epochs += 1;
    }

    /// Trains the criticality predictors with a single detector sample —
    /// the interface the token-passing detector drives (it resolves one
    /// sampled instruction at a time rather than the whole stream).
    pub fn train_sample(&mut self, pc: Pc, critical: bool) {
        self.binary.train(pc, critical);
        match &mut self.loc {
            LocImpl::Exact(l) => l.train(pc, critical),
            LocImpl::Quantized(l) => l.train(pc, critical),
        }
    }

    /// Marks a training epoch complete (used by sample-driven training,
    /// where [`train_sample`](Self::train_sample) does the work).
    pub fn finish_epoch(&mut self) {
        self.trained_epochs += 1;
    }

    /// Number of completed training epochs.
    pub fn trained_epochs(&self) -> u32 {
        self.trained_epochs
    }

    /// Whether the proactive load balancer has learned that the consumer
    /// at `pc` is (almost) never the most critical consumer of its
    /// operands.
    pub fn is_lb_candidate(&self, pc: Pc) -> bool {
        self.lb_candidates.get(pc).is_some_and(|c| c.msb_set())
    }

    /// Trains the load-balance candidacy of the consumer at `pc`: `true`
    /// when it retired less critical than the most critical consumer
    /// recorded for its operand register.
    pub fn train_lb_candidate(&mut self, pc: Pc, candidate: bool) {
        let c = self
            .lb_candidates
            .entry_with(pc, SaturatingCounter::bimodal2);
        if candidate {
            c.add(1);
        } else {
            c.sub(1);
        }
    }

    /// Clears all learned state (predictors and candidates).
    pub fn reset(&mut self) {
        self.binary.reset();
        match &mut self.loc {
            LocImpl::Exact(l) => l.reset(),
            LocImpl::Quantized(l) => l.reset(),
        }
        self.lb_candidates.clear();
        self.trained_epochs = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_isa::{ArchReg, OpClass, StaticInst};
    use ccs_trace::TraceBuilder;

    fn tiny_trace() -> Trace {
        let mut b = TraceBuilder::new();
        for i in 0..10u64 {
            b.push_simple(
                StaticInst::new(Pc::new(4 * (i % 2)), OpClass::IntAlu).with_dst(ArchReg::int(1)),
            );
        }
        b.finish()
    }

    #[test]
    fn training_updates_both_predictors() {
        for mode in [LocMode::Exact, LocMode::Quantized16] {
            let mut bank = PredictorBank::new(mode, 1);
            let trace = tiny_trace();
            // PC 0 critical, PC 4 not (instances alternate).
            let e_critical: Vec<bool> = (0..10).map(|i| i % 2 == 0).collect();
            for _ in 0..8 {
                bank.train_criticality(&trace, &e_critical);
            }
            assert!(bank.predicted_critical(Pc::new(0)));
            assert!(!bank.predicted_critical(Pc::new(4)));
            assert!(bank.loc(Pc::new(0)) > 0.5, "mode {mode:?}");
            assert!(bank.loc(Pc::new(4)) < 0.5);
            assert!(bank.loc_level(Pc::new(0)) > bank.loc_level(Pc::new(4)));
            assert_eq!(bank.trained_epochs(), 8);
        }
    }

    #[test]
    fn lb_candidate_hysteresis() {
        let mut bank = PredictorBank::new(LocMode::Exact, 0);
        let pc = Pc::new(0x10);
        assert!(!bank.is_lb_candidate(pc));
        bank.train_lb_candidate(pc, true);
        assert!(bank.is_lb_candidate(pc)); // 2-bit counter starts at 1
        bank.train_lb_candidate(pc, false);
        bank.train_lb_candidate(pc, false);
        assert!(!bank.is_lb_candidate(pc));
    }

    #[test]
    fn reset_forgets_everything() {
        let mut bank = PredictorBank::new(LocMode::Exact, 0);
        let trace = tiny_trace();
        bank.train_criticality(&trace, &[true; 10]);
        bank.train_lb_candidate(Pc::new(0), true);
        bank.reset();
        assert!(!bank.predicted_critical(Pc::new(0)));
        assert_eq!(bank.loc(Pc::new(0)), 0.0);
        assert!(!bank.is_lb_candidate(Pc::new(0)));
        assert_eq!(bank.trained_epochs(), 0);
    }

    #[test]
    #[should_panic]
    fn mismatched_training_panics() {
        let mut bank = PredictorBank::new(LocMode::Exact, 0);
        bank.train_criticality(&tiny_trace(), &[true]);
    }
}
