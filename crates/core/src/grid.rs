//! The parallel experiment-grid executor.
//!
//! Every paper exhibit evaluates a grid of independent
//! `(benchmark, machine, policy, sample)` cells; [`run_cell`] is
//! deterministic per cell, so the grid is embarrassingly parallel.
//! [`run_grid`] fans a slice of [`CellSpec`]s out over a scoped thread
//! pool with an atomic work-stealing index — no thread pool dependency,
//! no unsafe — and returns results **in input order**, bit-identical to
//! a serial evaluation of the same specs.
//!
//! Traces are fetched through the process-wide
//! [`TraceStore`](ccs_trace::TraceStore), so the 12 workloads × sample
//! seeds are generated once per process no matter how many grids run.
//!
//! [`parallel_map`] exposes the same ordered work-stealing scheduler for
//! grid-shaped work that is not a [`run_cell`] evaluation (e.g. the
//! idealized list-scheduling study of Figure 2).

use crate::experiment::{run_custom, CellOutcome, RunOptions};
use crate::policy::{PolicyConfig, PolicyKind};
use ccs_isa::{ClusterLayout, MachineConfig};
use ccs_sim::SimError;
use ccs_trace::{Benchmark, TraceStore};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// One cell of an experiment grid: everything needed to evaluate one
/// `(machine, workload, policy)` point with [`run_cell`].
///
/// [`run_cell`]: crate::run_cell
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellSpec {
    /// The machine to simulate.
    pub config: MachineConfig,
    /// The workload model.
    pub benchmark: Benchmark,
    /// The workload generation seed of this sample.
    pub sample_seed: u64,
    /// Dynamic instructions in the trace.
    pub len: usize,
    /// The policy label (and, when `policy_config` is `None`, the policy
    /// configuration via [`PolicyKind::config`]).
    pub policy: PolicyKind,
    /// Explicit policy configuration for ablation cells; `None` uses the
    /// canonical configuration of `policy`.
    pub policy_config: Option<PolicyConfig>,
    /// The two-phase evaluation options.
    pub options: RunOptions,
}

impl CellSpec {
    /// A cell with the canonical configuration of `policy`.
    pub fn new(
        config: MachineConfig,
        benchmark: Benchmark,
        sample_seed: u64,
        len: usize,
        policy: PolicyKind,
        options: RunOptions,
    ) -> Self {
        CellSpec {
            config,
            benchmark,
            sample_seed,
            len,
            policy,
            policy_config: None,
            options,
        }
    }

    /// The same cell with an explicit policy configuration (ablations).
    #[must_use]
    pub fn with_policy_config(mut self, config: PolicyConfig) -> Self {
        self.policy_config = Some(config);
        self
    }

    /// Evaluates this cell serially (the unit of work [`run_grid`]
    /// distributes). The trace comes from the global
    /// [`TraceStore`](ccs_trace::TraceStore).
    pub fn run(&self) -> CellResult {
        let trace = TraceStore::global().get(self.benchmark, self.sample_seed, self.len);
        let policy_config = self.policy_config.unwrap_or_else(|| self.policy.config());
        let outcome = run_custom(
            &self.config,
            &trace,
            policy_config,
            self.policy,
            &self.options,
        );
        CELLS_RUN.fetch_add(1, Ordering::Relaxed);
        CellResult {
            spec: *self,
            outcome,
        }
    }
}

/// The outcome of one grid cell, paired with the spec that produced it.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// The evaluated cell.
    pub spec: CellSpec,
    /// The evaluation outcome ([`SimError`] only from deadlocking
    /// policies, which the paper policies never are).
    pub outcome: Result<CellOutcome, SimError>,
}

impl CellResult {
    /// The successful outcome, panicking with the cell's identity on a
    /// simulator error — grid cells built from the paper's policies
    /// cannot deadlock, so figure code treats errors as fatal.
    pub fn expect_outcome(&self) -> &CellOutcome {
        match &self.outcome {
            Ok(o) => o,
            Err(e) => panic!(
                "grid cell failed: {:?} {} seed {} len {}: {e}",
                self.spec.policy,
                self.spec.benchmark.name(),
                self.spec.sample_seed,
                self.spec.len
            ),
        }
    }

    /// Cycles per instruction of the measured epoch.
    pub fn cpi(&self) -> f64 {
        self.expect_outcome().cpi()
    }
}

/// Total cells evaluated by this process (for throughput reporting).
static CELLS_RUN: AtomicU64 = AtomicU64::new(0);

/// Number of grid cells evaluated by this process so far.
pub fn cells_run() -> u64 {
    CELLS_RUN.load(Ordering::Relaxed)
}

/// Evaluates `specs` on up to `threads` worker threads, returning
/// results in input order.
///
/// Each cell is deterministic in isolation (its predictor bank, caches
/// and branch predictors are private to the cell), so the result vector
/// is **bit-identical** for every `threads` value; parallelism only
/// changes wall-clock time. `threads == 0` or `1` runs inline without
/// spawning.
pub fn run_grid(specs: &[CellSpec], threads: usize) -> Vec<CellResult> {
    parallel_map(specs, threads, CellSpec::run)
}

/// Applies `f` to every item of `items` on up to `threads` worker
/// threads, returning outputs in input order.
///
/// Scheduling is work-stealing over an atomic index: threads grab the
/// next unclaimed item, so a slow cell never stalls the queue behind it.
/// `f` must be pure per item for the output to be thread-count
/// invariant (all harness workloads are).
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads == 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut results: Vec<Option<R>> = Vec::with_capacity(items.len());
    results.resize_with(items.len(), || None);
    // Hand each worker a disjoint set of result slots by round of the
    // shared index: collect (index, value) pairs per worker, then place
    // them after the scope joins — no locks on the hot path.
    let mut per_worker: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                let f = &f;
                scope.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        out.push((i, f(&items[i])));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("grid worker panicked"))
            .collect()
    });
    for (i, r) in per_worker.drain(..).flatten() {
        debug_assert!(results[i].is_none(), "slot {i} filled twice");
        results[i] = Some(r);
    }
    results
        .into_iter()
        .map(|r| r.expect("work-stealing index covered every item"))
        .collect()
}

/// A builder enumerating the cells of a sweep in a fixed, documented
/// order: `benchmarks × sample_seeds × layouts × policies`, with
/// benchmarks outermost — the iteration order every figure module uses.
#[derive(Debug, Clone)]
pub struct GridRequest {
    base: MachineConfig,
    benchmarks: Vec<Benchmark>,
    layouts: Vec<ClusterLayout>,
    policies: Vec<PolicyKind>,
    sample_seeds: Vec<u64>,
    len: usize,
    options: RunOptions,
}

impl GridRequest {
    /// A request over `base`-derived machines with a single seed, no
    /// benchmarks/layouts/policies yet, and default options.
    pub fn new(base: MachineConfig, len: usize) -> Self {
        GridRequest {
            base,
            benchmarks: Vec::new(),
            layouts: vec![ClusterLayout::C1x8w],
            policies: Vec::new(),
            sample_seeds: vec![1],
            len,
            options: RunOptions::default(),
        }
    }

    /// Sets the benchmarks (outermost axis).
    #[must_use]
    pub fn benchmarks(mut self, benchmarks: impl IntoIterator<Item = Benchmark>) -> Self {
        self.benchmarks = benchmarks.into_iter().collect();
        self
    }

    /// Sets the cluster layouts applied to the base machine.
    #[must_use]
    pub fn layouts(mut self, layouts: impl IntoIterator<Item = ClusterLayout>) -> Self {
        self.layouts = layouts.into_iter().collect();
        self
    }

    /// Sets the policies (innermost axis).
    #[must_use]
    pub fn policies(mut self, policies: impl IntoIterator<Item = PolicyKind>) -> Self {
        self.policies = policies.into_iter().collect();
        self
    }

    /// Sets the workload sample seeds.
    #[must_use]
    pub fn sample_seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.sample_seeds = seeds.into_iter().collect();
        self
    }

    /// Sets the evaluation options shared by every cell.
    #[must_use]
    pub fn options(mut self, options: RunOptions) -> Self {
        self.options = options;
        self
    }

    /// Enumerates the cells in the documented order.
    pub fn build(&self) -> Vec<CellSpec> {
        let mut cells = Vec::with_capacity(
            self.benchmarks.len()
                * self.sample_seeds.len()
                * self.layouts.len()
                * self.policies.len(),
        );
        for &bench in &self.benchmarks {
            for &seed in &self.sample_seeds {
                for &layout in &self.layouts {
                    let machine = self.base.with_layout(layout);
                    for &policy in &self.policies {
                        cells.push(CellSpec::new(
                            machine,
                            bench,
                            seed,
                            self.len,
                            policy,
                            self.options,
                        ));
                    }
                }
            }
        }
        cells
    }

    /// Builds and evaluates the grid on `threads` threads.
    pub fn run(&self, threads: usize) -> Vec<CellResult> {
        run_grid(&self.build(), threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_specs() -> Vec<CellSpec> {
        GridRequest::new(MachineConfig::micro05_baseline(), 1_500)
            .benchmarks([Benchmark::Vpr, Benchmark::Gzip])
            .layouts([ClusterLayout::C2x4w, ClusterLayout::C8x1w])
            .policies([PolicyKind::Focused, PolicyKind::FocusedLoc])
            .build()
    }

    #[test]
    fn request_enumerates_in_documented_order() {
        let specs = small_specs();
        assert_eq!(specs.len(), 2 * 2 * 2);
        assert_eq!(specs[0].benchmark, Benchmark::Vpr);
        assert_eq!(specs[0].policy, PolicyKind::Focused);
        assert_eq!(specs[1].policy, PolicyKind::FocusedLoc);
        assert_eq!(specs[2].config.cluster_count(), 8);
        assert_eq!(specs[4].benchmark, Benchmark::Gzip);
    }

    #[test]
    fn parallel_grid_matches_serial_exactly() {
        let specs = small_specs();
        let serial = run_grid(&specs, 1);
        let parallel = run_grid(&specs, 4);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.spec, p.spec, "input order preserved");
            let (so, po) = (s.expect_outcome(), p.expect_outcome());
            assert_eq!(so.result.cycles, po.result.cycles);
            assert_eq!(so.result.records, po.result.records);
            assert_eq!(
                so.analysis.breakdown, po.analysis.breakdown,
                "critical-path attribution must be thread-count invariant"
            );
        }
    }

    #[test]
    fn parallel_map_orders_and_covers() {
        let items: Vec<u64> = (0..257).collect();
        let out = parallel_map(&items, 8, |&x| x * 3);
        assert_eq!(out.len(), items.len());
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as u64 * 3);
        }
    }

    #[test]
    fn oversized_thread_counts_are_clamped() {
        let items = [1u32, 2];
        let out = parallel_map(&items, 64, |&x| x + 1);
        assert_eq!(out, vec![2, 3]);
        let empty: Vec<u32> = parallel_map(&[], 4, |&x: &u32| x);
        assert!(empty.is_empty());
    }

    #[test]
    fn cells_run_counter_advances() {
        let before = cells_run();
        let specs = vec![CellSpec::new(
            MachineConfig::micro05_baseline(),
            Benchmark::Gap,
            1,
            1_000,
            PolicyKind::Focused,
            RunOptions::default(),
        )];
        run_grid(&specs, 1);
        assert!(cells_run() > before);
    }
}
