//! The parallel experiment-grid executor.
//!
//! Every paper exhibit evaluates a grid of independent
//! `(benchmark, machine, policy, sample)` cells; [`run_cell`] is
//! deterministic per cell, so the grid is embarrassingly parallel.
//! [`run_grid`] fans a slice of [`CellSpec`]s out over a scoped thread
//! pool with chunked self-scheduling over an atomic index — no thread
//! pool dependency, no unsafe — and returns results **in input order**,
//! bit-identical to a serial evaluation of the same specs.
//! [`auto_threads`] picks serial vs parallel from the grid's total work
//! so tiny grids never pay spawn/join overhead.
//!
//! Traces are fetched through the process-wide
//! [`TraceStore`](ccs_trace::TraceStore), so the 12 workloads × sample
//! seeds are generated once per process no matter how many grids run;
//! a parallel grid pre-warms its distinct traces (generation plus
//! memory disambiguation) serially before spawning workers.
//!
//! [`parallel_map`] exposes the same ordered work-stealing scheduler for
//! grid-shaped work that is not a [`run_cell`] evaluation (e.g. the
//! idealized list-scheduling study of Figure 2).

use crate::error::CcsError;
use crate::experiment::{run_custom_cancellable, CellOutcome, RunOptions};
use crate::policy::{PolicyConfig, PolicyKind};
use ccs_isa::{ClusterLayout, MachineConfig};
use ccs_trace::{Benchmark, SourceId, SourceRegistry, Trace, TraceStore};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Duration;

/// One cell of an experiment grid: everything needed to evaluate one
/// `(machine, workload, policy)` point with [`run_cell`].
///
/// [`run_cell`]: crate::run_cell
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellSpec {
    /// The machine to simulate.
    pub config: MachineConfig,
    /// The workload model.
    pub benchmark: Benchmark,
    /// The workload generation seed of this sample.
    pub sample_seed: u64,
    /// Dynamic instructions in the trace.
    pub len: usize,
    /// The policy label (and, when `policy_config` is `None`, the policy
    /// configuration via [`PolicyKind::config`]).
    pub policy: PolicyKind,
    /// Explicit policy configuration for ablation cells; `None` uses the
    /// canonical configuration of `policy`.
    pub policy_config: Option<PolicyConfig>,
    /// The two-phase evaluation options.
    pub options: RunOptions,
    /// When set, the workload is a registered trace source (a scenario
    /// manifest) instead of `benchmark`: the trace comes from the
    /// [`SourceRegistry`](ccs_trace::SourceRegistry) under this
    /// content-addressed id, and `benchmark` is a don't-care
    /// placeholder. Cache keys, checkpoints, and shard routing all key
    /// on the id's fingerprint.
    pub scenario: Option<SourceId>,
}

impl CellSpec {
    /// A cell with the canonical configuration of `policy`.
    pub fn new(
        config: MachineConfig,
        benchmark: Benchmark,
        sample_seed: u64,
        len: usize,
        policy: PolicyKind,
        options: RunOptions,
    ) -> Self {
        CellSpec {
            config,
            benchmark,
            sample_seed,
            len,
            policy,
            policy_config: None,
            options,
            scenario: None,
        }
    }

    /// A cell whose workload is a registered scenario trace source. The
    /// `benchmark` field is set to a fixed placeholder (`Bzip2`) that
    /// downstream code must ignore when `scenario` is `Some`.
    pub fn for_scenario(
        config: MachineConfig,
        scenario: SourceId,
        sample_seed: u64,
        len: usize,
        policy: PolicyKind,
        options: RunOptions,
    ) -> Self {
        let mut spec = CellSpec::new(config, Benchmark::Bzip2, sample_seed, len, policy, options);
        spec.scenario = Some(scenario);
        spec
    }

    /// Human-readable workload label: the scenario's registered name
    /// (or fingerprint, if this process never registered it) for
    /// scenario cells, the benchmark name otherwise.
    pub fn workload_label(&self) -> String {
        match self.scenario {
            Some(id) => SourceRegistry::global()
                .name(id)
                .map(|n| n.to_string())
                .unwrap_or_else(|| format!("scenario-{id}")),
            None => self.benchmark.name().to_string(),
        }
    }

    /// The same cell with an explicit policy configuration (ablations).
    #[must_use]
    pub fn with_policy_config(mut self, config: PolicyConfig) -> Self {
        self.policy_config = Some(config);
        self
    }

    /// Evaluates this cell serially (the unit of work [`run_grid`]
    /// distributes), with panic isolation and default [`Resilience`].
    pub fn run(&self) -> CellResult {
        run_cell_resilient(self, &Resilience::default(), &evaluate_cell)
    }
}

/// Fetches (memoized) the trace a cell simulates: scenario cells route
/// through the [`SourceRegistry`](ccs_trace::SourceRegistry) into
/// `store`'s custom-key space, benchmark cells through the store's
/// benchmark keys.
///
/// # Panics
///
/// Panics if the cell names a scenario source that was never registered
/// in this process (the wire layer registers decoded manifests before
/// cells reach evaluation).
pub fn fetch_cell_trace(store: &TraceStore, spec: &CellSpec) -> Arc<Trace> {
    match spec.scenario {
        Some(id) => SourceRegistry::global().trace_in(store, id, spec.sample_seed, spec.len),
        None => store.get(spec.benchmark, spec.sample_seed, spec.len),
    }
}

/// Evaluates one cell's experiment, without isolation or retries — the
/// work function [`run_grid`] wraps in its resilience machinery. The
/// trace comes from the global [`TraceStore`](ccs_trace::TraceStore);
/// the optional `cancel` flag is threaded into the engine's cooperative
/// budget so a watchdog can stop the cell mid-epoch.
///
/// # Errors
///
/// As for [`run_custom_cancellable`].
pub fn evaluate_cell(
    spec: &CellSpec,
    cancel: Option<Arc<AtomicBool>>,
) -> Result<CellOutcome, CcsError> {
    let trace = fetch_cell_trace(TraceStore::global(), spec);
    let policy_config = spec.policy_config.unwrap_or_else(|| spec.policy.config());
    run_custom_cancellable(
        &spec.config,
        &trace,
        policy_config,
        spec.policy,
        &spec.options,
        cancel,
    )
}

/// How one grid cell ended.
#[derive(Debug, Clone)]
pub enum CellStatus {
    /// The cell evaluated successfully. Boxed: a `CellOutcome` carries
    /// full per-instruction records and dwarfs the error variants.
    Completed(Box<CellOutcome>),
    /// Every attempt failed; the final error and the attempt count.
    Failed {
        /// The error of the last attempt.
        error: CcsError,
        /// How many attempts were made.
        attempts: u32,
    },
    /// Every attempt hit a watchdog (cycle budget or wall-clock
    /// deadline); the final timeout and the attempt count.
    TimedOut {
        /// The timeout error of the last attempt.
        error: CcsError,
        /// How many attempts were made.
        attempts: u32,
    },
}

impl CellStatus {
    /// The successful outcome, if the cell completed.
    pub fn outcome(&self) -> Option<&CellOutcome> {
        match self {
            CellStatus::Completed(o) => Some(o.as_ref()),
            _ => None,
        }
    }

    /// The error, if the cell failed or timed out.
    pub fn error(&self) -> Option<&CcsError> {
        match self {
            CellStatus::Completed(_) => None,
            CellStatus::Failed { error, .. } | CellStatus::TimedOut { error, .. } => Some(error),
        }
    }

    /// Attempts spent on this cell.
    pub fn attempts(&self) -> u32 {
        match self {
            CellStatus::Completed(_) => 1,
            CellStatus::Failed { attempts, .. } | CellStatus::TimedOut { attempts, .. } => {
                *attempts
            }
        }
    }

    /// Whether the cell completed successfully.
    pub fn is_completed(&self) -> bool {
        matches!(self, CellStatus::Completed(_))
    }

    /// Whether the cell timed out (watchdog outcome).
    pub fn is_timed_out(&self) -> bool {
        matches!(self, CellStatus::TimedOut { .. })
    }

    /// A short annotation for reports: `ok`, `FAILED`, or `TIMEOUT`.
    pub fn label(&self) -> &'static str {
        match self {
            CellStatus::Completed(_) => "ok",
            CellStatus::Failed { .. } => "FAILED",
            CellStatus::TimedOut { .. } => "TIMEOUT",
        }
    }
}

/// The outcome of one grid cell, paired with the spec that produced it.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// The evaluated cell.
    pub spec: CellSpec,
    /// How the cell ended: completed, failed (with the isolating
    /// error), or timed out.
    pub status: CellStatus,
}

impl CellResult {
    /// The successful outcome, panicking with the cell's identity on a
    /// failed or timed-out cell — grid cells built from the paper's
    /// policies cannot fail, so figure code treats errors as fatal.
    pub fn expect_outcome(&self) -> &CellOutcome {
        match &self.status {
            CellStatus::Completed(o) => o.as_ref(),
            CellStatus::Failed { error, .. } | CellStatus::TimedOut { error, .. } => panic!(
                "grid cell failed: {:?} {} seed {} len {}: {error}",
                self.spec.policy,
                self.spec.benchmark.name(),
                self.spec.sample_seed,
                self.spec.len
            ),
        }
    }

    /// Cycles per instruction of the measured epoch.
    pub fn cpi(&self) -> f64 {
        self.expect_outcome().cpi()
    }
}

/// Failure-handling policy for a grid run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Resilience {
    /// Attempts per cell before recording it as failed (≥ 1). Retries
    /// make sense for nondeterministic failures — wall-clock timeouts
    /// on a loaded machine, transient environmental panics; a
    /// deterministic failure simply fails `max_attempts` times.
    pub max_attempts: u32,
    /// Wall-clock deadline per attempt, enforced by a watchdog thread
    /// raising the cell's cooperative cancel flag. `None` disables the
    /// watchdog. This is inherently nondeterministic — prefer
    /// [`RunOptions::cycle_budget`] where determinism matters, and use
    /// the deadline as a backstop for cells that hang outside the
    /// engine's cycle loop.
    pub deadline: Option<Duration>,
}

impl Default for Resilience {
    fn default() -> Self {
        Resilience {
            max_attempts: 1,
            deadline: None,
        }
    }
}

impl Resilience {
    /// The same policy with a different attempt budget.
    #[must_use]
    pub fn with_max_attempts(mut self, max_attempts: u32) -> Self {
        self.max_attempts = max_attempts.max(1);
        self
    }

    /// The same policy with a per-attempt wall-clock deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// Runs `body` with a cancel flag that a watchdog thread raises after
/// `deadline`; without a deadline the body runs with no flag and no
/// watchdog. The watchdog is woken (and joined) as soon as the body
/// finishes, so well-behaved cells never wait on it.
fn with_watchdog<R>(
    deadline: Option<Duration>,
    body: impl FnOnce(Option<Arc<AtomicBool>>) -> R,
) -> R {
    let Some(deadline) = deadline else {
        return body(None);
    };
    let cancel = Arc::new(AtomicBool::new(false));
    let done = Arc::new((Mutex::new(false), Condvar::new()));
    let watchdog = {
        let cancel = Arc::clone(&cancel);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let (finished, cv) = &*done;
            let guard = finished.lock().unwrap_or_else(PoisonError::into_inner);
            let (guard, timeout) = cv
                .wait_timeout_while(guard, deadline, |finished| !*finished)
                .unwrap_or_else(PoisonError::into_inner);
            if timeout.timed_out() && !*guard {
                cancel.store(true, Ordering::Relaxed);
            }
        })
    };
    let result = body(Some(cancel));
    let (finished, cv) = &*done;
    *finished.lock().unwrap_or_else(PoisonError::into_inner) = true;
    cv.notify_all();
    watchdog.join().expect("watchdog thread panicked");
    result
}

/// Evaluates one cell under `res`: each attempt runs `cell_fn` behind a
/// `catch_unwind` isolation barrier (panics become
/// [`CcsError::CellPanicked`]) and an optional wall-clock watchdog;
/// failed attempts are retried up to [`Resilience::max_attempts`].
fn run_cell_resilient<F>(spec: &CellSpec, res: &Resilience, cell_fn: &F) -> CellResult
where
    F: Fn(&CellSpec, Option<Arc<AtomicBool>>) -> Result<CellOutcome, CcsError>,
{
    let max_attempts = res.max_attempts.max(1);
    let mut attempts = 0;
    let status = loop {
        attempts += 1;
        let attempt = with_watchdog(res.deadline, |cancel| {
            catch_unwind(AssertUnwindSafe(|| cell_fn(spec, cancel)))
                .unwrap_or_else(|panic| Err(CcsError::from_panic(panic.as_ref())))
        });
        CELLS_RUN.fetch_add(1, Ordering::Relaxed);
        match attempt {
            Ok(outcome) => break CellStatus::Completed(Box::new(outcome)),
            Err(error) if attempts < max_attempts => {
                let _ = error; // retry; only the final attempt's error is kept
            }
            Err(error) if error.is_timeout() => break CellStatus::TimedOut { error, attempts },
            Err(error) => break CellStatus::Failed { error, attempts },
        }
    };
    CellResult {
        spec: *spec,
        status,
    }
}

/// Deterministically folds the observability metrics of every completed
/// cell in `results`, in input order.
///
/// Returns `None` when no completed cell carried metrics (metrics-off
/// runs). Because [`run_cells`] returns results in input order regardless
/// of worker thread count, the fold — and therefore the aggregated
/// [`SimMetrics`](ccs_sim::SimMetrics) and its digest — is bit-identical
/// for every thread count.
pub fn aggregate_metrics(results: &[CellResult]) -> Option<ccs_sim::SimMetrics> {
    let mut agg: Option<ccs_sim::SimMetrics> = None;
    for r in results {
        let Some(m) = r.status.outcome().and_then(|o| o.metrics.as_ref()) else {
            continue;
        };
        match &mut agg {
            None => agg = Some(m.clone()),
            Some(a) => a.merge(m),
        }
    }
    agg
}

/// Folds the critical-path breakdowns of every completed cell in
/// `results`, returning `(breakdown, cycles, instructions)` totals.
///
/// The breakdown's exact attribution is preserved by summation:
/// `breakdown.total() == cycles` holds for the aggregate exactly as it
/// does per cell, which is what lets a grid-level CPI stack reconcile.
pub fn aggregate_breakdown(results: &[CellResult]) -> (ccs_critpath::Breakdown, u64, u64) {
    let mut breakdown = ccs_critpath::Breakdown::new();
    let mut cycles = 0u64;
    let mut instructions = 0u64;
    for r in results {
        let Some(o) = r.status.outcome() else { continue };
        breakdown += o.analysis.breakdown;
        cycles += o.result.cycles;
        instructions += o.result.records.len() as u64;
    }
    (breakdown, cycles, instructions)
}

/// Total cells evaluated by this process (for throughput reporting).
static CELLS_RUN: AtomicU64 = AtomicU64::new(0);

/// Number of grid cells evaluated by this process so far.
pub fn cells_run() -> u64 {
    CELLS_RUN.load(Ordering::Relaxed)
}

/// Evaluates `specs` on up to `threads` worker threads, returning
/// results in input order.
///
/// Each cell is deterministic in isolation (its predictor bank, caches
/// and branch predictors are private to the cell), so the result vector
/// is **bit-identical** for every `threads` value; parallelism only
/// changes wall-clock time. `threads == 0` or `1` runs inline without
/// spawning.
///
/// Every cell is evaluated behind a panic-isolation barrier: a
/// panicking cell becomes [`CellStatus::Failed`] with
/// [`CcsError::CellPanicked`] while every other cell completes
/// normally. Use [`run_grid_resilient`] to add retries and a wall-clock
/// watchdog.
pub fn run_grid(specs: &[CellSpec], threads: usize) -> Vec<CellResult> {
    run_grid_resilient(specs, threads, &Resilience::default())
}

/// [`run_grid`] with an explicit failure-handling policy: per-cell
/// retry budget and wall-clock watchdog deadline.
pub fn run_grid_resilient(specs: &[CellSpec], threads: usize, res: &Resilience) -> Vec<CellResult> {
    run_cells(specs, threads, res, |_, spec, cancel| evaluate_cell(spec, cancel), |_, _| {})
}

/// The fully general resilient executor: evaluates `specs` through
/// `cell_fn` (normally [`evaluate_cell`] ignoring the index; the
/// fault-injection harness keys seeded faults off it) under `res`,
/// calling `observe` with each `(input index, result)` as it finishes —
/// **in completion order**, from worker threads — before returning all
/// results in input order. The checkpoint layer uses `observe` to
/// stream completed cells to the manifest.
pub fn run_cells<F, O>(
    specs: &[CellSpec],
    threads: usize,
    res: &Resilience,
    cell_fn: F,
    observe: O,
) -> Vec<CellResult>
where
    F: Fn(usize, &CellSpec, Option<Arc<AtomicBool>>) -> Result<CellOutcome, CcsError> + Sync,
    O: Fn(usize, &CellResult) + Sync,
{
    if threads.clamp(1, specs.len().max(1)) > 1 {
        prewarm_traces(specs);
    }
    parallel_map_indexed(specs, threads, |i, spec| {
        let result = run_cell_resilient(spec, res, &|spec, cancel| cell_fn(i, spec, cancel));
        observe(i, &result);
        result
    })
}

/// Generates (and memory-disambiguates) every distinct trace of `specs`
/// serially, before workers spawn.
///
/// A grid typically reuses a handful of `(benchmark, seed, len)` traces
/// across dozens of cells. Without pre-warming, the first wave of
/// workers races on the [`TraceStore`](ccs_trace::TraceStore) lock and
/// on [`Trace::memory_deps`](ccs_trace::Trace::memory_deps) for the
/// *same* keys — duplicated generation work exactly when the pool is
/// trying to ramp up. Warming serially makes the parallel region pure
/// simulation.
fn prewarm_traces(specs: &[CellSpec]) {
    let mut seen: Vec<(Option<SourceId>, Benchmark, u64, usize)> = Vec::new();
    for spec in specs {
        let key = (spec.scenario, spec.benchmark, spec.sample_seed, spec.len);
        if !seen.contains(&key) {
            seen.push(key);
            let trace = fetch_cell_trace(TraceStore::global(), spec);
            let _ = trace.memory_deps();
        }
    }
}

/// Picks a worker count for a grid of `cells` cells over traces of
/// `trace_len` instructions: serial when the grid is too small to
/// amortize thread spawn/join, otherwise one worker per available core,
/// clamped to the cell count.
///
/// The threshold is total simulated instructions (`cells × trace_len`):
/// a grid under ~32k instructions finishes in low single-digit
/// milliseconds serially, which is the same order as spawning and
/// joining a handful of OS threads — parallelism there is pure
/// overhead (the 0.86× "speedup" a naive always-parallel policy
/// records on small grids). Results are bit-identical either way; only
/// wall-clock time changes.
pub fn auto_threads(cells: usize, trace_len: usize) -> usize {
    let available = std::thread::available_parallelism()
        .map(usize::from)
        .unwrap_or(1);
    if cells < 2 || available < 2 {
        return 1;
    }
    let total_insts = cells.saturating_mul(trace_len.max(1));
    if total_insts < 32_000 {
        return 1;
    }
    available.min(cells)
}

/// Applies `f` to every item of `items` on up to `threads` worker
/// threads, returning outputs in input order.
///
/// Scheduling is chunked self-scheduling over an atomic index: threads
/// claim geometrically shrinking ranges of unclaimed items (large while
/// plenty remains, single items near the tail), so index contention is
/// amortized and a slow cell never stalls the queue behind it. `f` must
/// be pure per item for the output to be thread-count invariant (all
/// harness workloads are).
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_indexed(items, threads, |_, item| f(item))
}

/// [`parallel_map`] whose work function also receives the item's input
/// index — for callers that label or stream per-item results (the
/// resilient executor's observer).
pub fn parallel_map_indexed<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads == 1 {
        return items.iter().enumerate().map(|(i, item)| f(i, item)).collect();
    }
    let next = AtomicUsize::new(0);
    let mut results: Vec<Option<R>> = Vec::with_capacity(items.len());
    results.resize_with(items.len(), || None);
    // Hand each worker a disjoint set of result slots by round of the
    // shared index: collect (index, value) pairs per worker, then place
    // them after the scope joins — no locks on the hot path.
    let mut per_worker: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                let f = &f;
                scope.spawn(move || {
                    let mut out = Vec::new();
                    // Guided self-scheduling: claim a *range* of items per
                    // fetch_add, sized to a fraction of what remains. Early
                    // claims are large (one cache-line bump covers many
                    // items, so contention on `next` stays negligible no
                    // matter how cheap the items are); late claims shrink
                    // to single items, so a slow cell near the end never
                    // strands a big chunk behind it. The remaining-work
                    // estimate reads `next` racily — that only perturbs
                    // chunk *sizes*, never coverage, which the fetch_add
                    // alone guarantees.
                    loop {
                        let claimed = next.load(Ordering::Relaxed);
                        if claimed >= items.len() {
                            break;
                        }
                        let remaining = items.len() - claimed;
                        let chunk = (remaining / (threads * 4)).clamp(1, 64);
                        let start = next.fetch_add(chunk, Ordering::Relaxed);
                        if start >= items.len() {
                            break;
                        }
                        let end = (start + chunk).min(items.len());
                        for (i, item) in items.iter().enumerate().take(end).skip(start) {
                            out.push((i, f(i, item)));
                        }
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("grid worker panicked"))
            .collect()
    });
    for (i, r) in per_worker.drain(..).flatten() {
        debug_assert!(results[i].is_none(), "slot {i} filled twice");
        results[i] = Some(r);
    }
    results
        .into_iter()
        .map(|r| r.expect("work-stealing index covered every item"))
        .collect()
}

/// A builder enumerating the cells of a sweep in a fixed, documented
/// order: `benchmarks × sample_seeds × layouts × policies`, with
/// benchmarks outermost — the iteration order every figure module uses.
#[derive(Debug, Clone)]
pub struct GridRequest {
    base: MachineConfig,
    benchmarks: Vec<Benchmark>,
    layouts: Vec<ClusterLayout>,
    policies: Vec<PolicyKind>,
    sample_seeds: Vec<u64>,
    len: usize,
    options: RunOptions,
}

impl GridRequest {
    /// A request over `base`-derived machines with a single seed, no
    /// benchmarks/layouts/policies yet, and default options.
    pub fn new(base: MachineConfig, len: usize) -> Self {
        GridRequest {
            base,
            benchmarks: Vec::new(),
            layouts: vec![ClusterLayout::C1x8w],
            policies: Vec::new(),
            sample_seeds: vec![1],
            len,
            options: RunOptions::default(),
        }
    }

    /// Sets the benchmarks (outermost axis).
    #[must_use]
    pub fn benchmarks(mut self, benchmarks: impl IntoIterator<Item = Benchmark>) -> Self {
        self.benchmarks = benchmarks.into_iter().collect();
        self
    }

    /// Sets the cluster layouts applied to the base machine.
    #[must_use]
    pub fn layouts(mut self, layouts: impl IntoIterator<Item = ClusterLayout>) -> Self {
        self.layouts = layouts.into_iter().collect();
        self
    }

    /// Sets the policies (innermost axis).
    #[must_use]
    pub fn policies(mut self, policies: impl IntoIterator<Item = PolicyKind>) -> Self {
        self.policies = policies.into_iter().collect();
        self
    }

    /// Sets the workload sample seeds.
    #[must_use]
    pub fn sample_seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.sample_seeds = seeds.into_iter().collect();
        self
    }

    /// Sets the evaluation options shared by every cell.
    #[must_use]
    pub fn options(mut self, options: RunOptions) -> Self {
        self.options = options;
        self
    }

    /// Enumerates the cells in the documented order.
    pub fn build(&self) -> Vec<CellSpec> {
        let mut cells = Vec::with_capacity(
            self.benchmarks.len()
                * self.sample_seeds.len()
                * self.layouts.len()
                * self.policies.len(),
        );
        for &bench in &self.benchmarks {
            for &seed in &self.sample_seeds {
                for &layout in &self.layouts {
                    let machine = self.base.with_layout(layout);
                    for &policy in &self.policies {
                        cells.push(CellSpec::new(
                            machine,
                            bench,
                            seed,
                            self.len,
                            policy,
                            self.options,
                        ));
                    }
                }
            }
        }
        cells
    }

    /// Builds and evaluates the grid on `threads` threads.
    pub fn run(&self, threads: usize) -> Vec<CellResult> {
        run_grid(&self.build(), threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_specs() -> Vec<CellSpec> {
        GridRequest::new(MachineConfig::micro05_baseline(), 1_500)
            .benchmarks([Benchmark::Vpr, Benchmark::Gzip])
            .layouts([ClusterLayout::C2x4w, ClusterLayout::C8x1w])
            .policies([PolicyKind::Focused, PolicyKind::FocusedLoc])
            .build()
    }

    #[test]
    fn request_enumerates_in_documented_order() {
        let specs = small_specs();
        assert_eq!(specs.len(), 2 * 2 * 2);
        assert_eq!(specs[0].benchmark, Benchmark::Vpr);
        assert_eq!(specs[0].policy, PolicyKind::Focused);
        assert_eq!(specs[1].policy, PolicyKind::FocusedLoc);
        assert_eq!(specs[2].config.cluster_count(), 8);
        assert_eq!(specs[4].benchmark, Benchmark::Gzip);
    }

    #[test]
    fn parallel_grid_matches_serial_exactly() {
        let specs = small_specs();
        let serial = run_grid(&specs, 1);
        let parallel = run_grid(&specs, 4);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.spec, p.spec, "input order preserved");
            let (so, po) = (s.expect_outcome(), p.expect_outcome());
            assert_eq!(so.result.cycles, po.result.cycles);
            assert_eq!(so.result.records, po.result.records);
            assert_eq!(
                so.analysis.breakdown, po.analysis.breakdown,
                "critical-path attribution must be thread-count invariant"
            );
        }
    }

    #[test]
    fn parallel_map_orders_and_covers() {
        let items: Vec<u64> = (0..257).collect();
        let out = parallel_map(&items, 8, |&x| x * 3);
        assert_eq!(out.len(), items.len());
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as u64 * 3);
        }
    }

    #[test]
    fn chunked_scheduler_covers_uneven_work() {
        // Items whose cost varies by orders of magnitude, at a count
        // that exercises shrinking chunk sizes (64 → … → 1). Coverage
        // and order must hold regardless of which worker claims what.
        let items: Vec<u32> = (0..1_023).collect();
        let out = parallel_map(&items, 7, |&x| {
            if x % 97 == 0 {
                std::thread::yield_now();
            }
            u64::from(x) * 7 + 1
        });
        assert_eq!(out.len(), items.len());
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as u64 * 7 + 1);
        }
    }

    #[test]
    fn auto_threads_keeps_tiny_grids_serial() {
        // A handful of short-trace cells must never spawn workers: the
        // spawn/join cost is the 0.86x anti-speedup this fixes.
        assert_eq!(auto_threads(0, 4_000), 1);
        assert_eq!(auto_threads(1, 1_000_000), 1);
        assert_eq!(auto_threads(4, 2_000), 1);
        assert_eq!(auto_threads(12, 1_500), 1);
    }

    #[test]
    fn auto_threads_caps_at_cells_and_cores() {
        let available = std::thread::available_parallelism()
            .map(usize::from)
            .unwrap_or(1);
        let t = auto_threads(2, 100_000);
        assert!((1..=2).contains(&t));
        let t = auto_threads(1_000, 100_000);
        assert!((1..=available).contains(&t));
        if available >= 2 {
            assert!(t >= 2, "big grids parallelize when cores exist");
        } else {
            assert_eq!(t, 1, "single-core hosts stay serial");
        }
    }

    #[test]
    fn oversized_thread_counts_are_clamped() {
        let items = [1u32, 2];
        let out = parallel_map(&items, 64, |&x| x + 1);
        assert_eq!(out, vec![2, 3]);
        let empty: Vec<u32> = parallel_map(&[], 4, |&x: &u32| x);
        assert!(empty.is_empty());
    }

    #[test]
    fn panicking_cells_are_isolated_from_the_rest() {
        let specs = small_specs();
        let results = run_cells(
            &specs,
            4,
            &Resilience::default(),
            |_, spec, cancel| {
                if spec.benchmark == Benchmark::Gzip && spec.policy == PolicyKind::Focused {
                    panic!("injected fault in {}", spec.benchmark.name());
                }
                evaluate_cell(spec, cancel)
            },
            |_, _| {},
        );
        let clean = run_grid(&specs, 1);
        let mut failed = 0;
        for (r, c) in results.iter().zip(&clean) {
            if r.spec.benchmark == Benchmark::Gzip && r.spec.policy == PolicyKind::Focused {
                failed += 1;
                let err = r.status.error().expect("seeded cell must fail");
                assert!(
                    matches!(err, CcsError::CellPanicked { message } if message.contains("injected fault")),
                    "got {err}"
                );
            } else {
                assert_eq!(
                    r.expect_outcome().result.cycles,
                    c.expect_outcome().result.cycles,
                    "unseeded cells are unaffected"
                );
            }
        }
        assert_eq!(failed, 2, "both gzip/Focused layout cells fail");
    }

    #[test]
    fn failed_cells_spend_their_whole_attempt_budget() {
        let specs = &small_specs()[..1];
        let res = Resilience::default().with_max_attempts(3);
        let results = run_cells(
            specs,
            1,
            &res,
            |_, _, _| -> Result<CellOutcome, CcsError> { panic!("always fails") },
            |_, _| {},
        );
        match &results[0].status {
            CellStatus::Failed { attempts, .. } => assert_eq!(*attempts, 3),
            other => panic!("expected Failed, got {other:?}"),
        }
        assert_eq!(results[0].status.label(), "FAILED");
    }

    #[test]
    fn exhausted_cycle_budgets_surface_as_timeouts() {
        let mut spec = small_specs()[0];
        spec.options = spec.options.with_cycle_budget(10);
        let result = spec.run();
        assert!(result.status.is_timed_out());
        assert_eq!(result.status.label(), "TIMEOUT");
        assert!(result.status.error().unwrap().is_timeout());
    }

    #[test]
    fn wall_clock_watchdog_cancels_spinning_cells() {
        use std::time::Duration;
        let specs = &small_specs()[..1];
        let res = Resilience::default().with_deadline(Duration::from_millis(30));
        let results = run_cells(
            specs,
            1,
            &res,
            |_, _, cancel| -> Result<CellOutcome, CcsError> {
                // A cooperative hang: spin until the watchdog raises the
                // flag, as the engine's cycle loop would.
                let cancel = cancel.expect("deadline implies a cancel flag");
                while !cancel.load(Ordering::Relaxed) {
                    std::hint::spin_loop();
                }
                Err(CcsError::Sim(ccs_sim::SimError::Cancelled {
                    cycle: 0,
                    committed: 0,
                    total: 1,
                }))
            },
            |_, _| {},
        );
        assert!(results[0].status.is_timed_out());
    }

    #[test]
    fn observer_sees_every_cell_with_its_input_index() {
        let specs = small_specs();
        let seen = Mutex::new(Vec::new());
        let results = run_cells(
            &specs,
            4,
            &Resilience::default(),
            |_, spec, cancel| evaluate_cell(spec, cancel),
            |i, r: &CellResult| {
                seen.lock().unwrap().push((i, r.spec.benchmark));
            },
        );
        let mut seen = seen.into_inner().unwrap();
        seen.sort_unstable_by_key(|(i, _)| *i);
        assert_eq!(seen.len(), results.len());
        for ((i, bench), r) in seen.iter().zip(&results) {
            assert_eq!(specs[*i].benchmark, *bench);
            assert_eq!(r.spec.benchmark, *bench);
        }
    }

    #[test]
    fn cells_run_counter_advances() {
        let before = cells_run();
        let specs = vec![CellSpec::new(
            MachineConfig::micro05_baseline(),
            Benchmark::Gap,
            1,
            1_000,
            PolicyKind::Focused,
            RunOptions::default(),
        )];
        run_grid(&specs, 1);
        assert!(cells_run() > before);
    }
}
