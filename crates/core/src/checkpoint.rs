//! Checkpoint/resume for long grid campaigns.
//!
//! A campaign streams every finished cell — completed, failed, or timed
//! out — to an append-only JSONL *manifest* (one record per line,
//! written and flushed as the cell finishes). A campaign killed mid-run
//! can then be restarted with [`CampaignOptions::resume`]: cells whose
//! key is already recorded are skipped, only the missing cells run, and
//! the merged manifest is bit-identical to the manifest of an
//! uninterrupted run (a property the test suite enforces).
//!
//! Records carry a *digest* of each result — the cycle count, the CPI
//! bit pattern, and an FNV-1a hash over the full per-instruction record
//! vector — rather than the result itself, which keeps manifests small
//! while still detecting any divergence between a resumed and a fresh
//! evaluation.
//!
//! The manifest format is hand-rolled: records are flat and the
//! workspace deliberately carries no JSON dependency (the vendored
//! `serde` is an offline stub). Every manifest opens with a header line
//! naming the format and its [`MANIFEST_SCHEMA`] version; a manifest
//! with a missing or mismatched header fails loudly instead of being
//! silently treated as empty (which would wrongly re-run — or worse,
//! wrongly skip — every cell). Loading still tolerates a torn *final*
//! line — the expected artifact of killing a campaign mid-write — by
//! treating it as "not recorded".

use crate::error::CcsError;
use crate::grid::{evaluate_cell, run_cells, CellResult, CellSpec, CellStatus, Resilience};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::fs::OpenOptions;
use std::io::{BufWriter, Write as _};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, PoisonError};

/// Version of the manifest's key fingerprint and record layout.
///
/// Schema 1 was the pre-header format whose keys hashed the spec's
/// `Debug` rendering. Schema 2 hashes explicitly serialized fields (see
/// [`cell_key`]) and records an optional metrics digest. Bump this
/// whenever either changes incompatibly; [`load_manifest`] refuses
/// manifests whose header does not match, so stale checkpoints surface
/// as a hard error instead of a silently wrong resume.
pub const MANIFEST_SCHEMA: u32 = 2;

/// The manifest's first line: format marker plus schema version.
fn manifest_header() -> String {
    format!("{{\"manifest\":\"ccs-grid-manifest\",\"schema\":{MANIFEST_SCHEMA}}}")
}

/// 64-bit FNV-1a over `bytes`.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// An FNV-1a accumulator over *explicitly serialized*, type-tagged
/// fields.
///
/// Every push prepends a type tag byte, so adjacent fields of different
/// types can never alias (e.g. `Some(0)` vs `None` followed by `0`). This
/// is the identity layer under [`cell_key`]: it hashes field values, never
/// `Debug` output, so a derive or float-formatting change cannot silently
/// reshuffle manifest keys.
#[derive(Debug)]
struct Fingerprint(u64);

impl Fingerprint {
    fn new() -> Self {
        Fingerprint(0xcbf2_9ce4_8422_2325)
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&[1]);
        self.bytes(&v.to_le_bytes());
    }

    fn bool(&mut self, v: bool) {
        self.bytes(&[2, v as u8]);
    }

    /// Floats are hashed by bit pattern — exact, no formatting round trip.
    fn f64(&mut self, v: f64) {
        self.bytes(&[3]);
        self.bytes(&v.to_bits().to_le_bytes());
    }

    fn str(&mut self, s: &str) {
        self.bytes(&[4]);
        self.bytes(&(s.len() as u64).to_le_bytes());
        self.bytes(s.as_bytes());
    }

    fn none(&mut self) {
        self.bytes(&[5]);
    }

    fn some(&mut self) {
        self.bytes(&[6]);
    }

    fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.none(),
            Some(v) => {
                self.some();
                self.u64(v);
            }
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Hashes every semantic field of `spec` — workload axes, machine
/// configuration, policy and its configuration, and the run options —
/// in a fixed, documented order.
///
/// Deliberately excluded: [`RunOptions::metrics`]. Metrics collection is
/// a write-only observer (schedules and results are bit-identical with it
/// on or off), so it must not change a cell's identity — a campaign can
/// be resumed with metrics toggled and still skip its finished cells.
fn spec_fingerprint(spec: &CellSpec) -> u64 {
    let mut fp = Fingerprint::new();
    // Workload axes. A scenario cell hashes the content-addressed
    // source fingerprint instead of the benchmark name; the `some`
    // type tag keeps it from ever aliasing a benchmark cell (old
    // benchmark fingerprints are unchanged, so schema 2 holds).
    match spec.scenario {
        None => fp.str(spec.benchmark.name()),
        Some(id) => {
            fp.some();
            fp.u64(id.raw());
        }
    }
    fp.u64(spec.sample_seed);
    fp.u64(spec.len as u64);
    // Machine configuration.
    let c = &spec.config;
    fp.str(c.layout.name());
    fp.u64(c.front_end.fetch_width as u64);
    fp.u64(c.front_end.depth_to_dispatch as u64);
    fp.u64(c.front_end.gshare_history_bits as u64);
    fp.u64(c.front_end.skid_buffer as u64);
    fp.bool(c.front_end.break_on_taken);
    fp.u64(c.window_total as u64);
    fp.u64(c.rob_entries as u64);
    fp.u64(c.commit_width as u64);
    fp.u64(c.int_total as u64);
    fp.u64(c.fp_total as u64);
    fp.u64(c.mem_total as u64);
    fp.u64(c.forward_latency as u64);
    fp.opt_u64(c.forward_bandwidth.map(u64::from));
    fp.u64(c.memory.l1_bytes as u64);
    fp.u64(c.memory.l1_ways as u64);
    fp.u64(c.memory.l1_line_bytes as u64);
    fp.u64(c.memory.l2_latency as u64);
    match c.memory.l2 {
        None => fp.none(),
        Some(l2) => {
            fp.some();
            fp.u64(l2.bytes as u64);
            fp.u64(l2.ways as u64);
            fp.u64(l2.line_bytes as u64);
            fp.u64(l2.memory_latency as u64);
        }
    }
    // Per-cluster shape. Derived from the totals and layout today, but a
    // resumed campaign must not silently survive a change to that
    // derivation.
    fp.u64(c.cluster.window_entries as u64);
    fp.u64(c.cluster.issue_width as u64);
    fp.u64(c.cluster.int_ports as u64);
    fp.u64(c.cluster.fp_ports as u64);
    fp.u64(c.cluster.mem_ports as u64);
    // Policy identity and configuration.
    fp.str(spec.policy.name());
    match &spec.policy_config {
        None => fp.none(),
        Some(pc) => {
            fp.some();
            fingerprint_policy_config(&mut fp, pc);
        }
    }
    // Run options (minus `metrics`; see above).
    let o = &spec.options;
    fp.u64(o.epochs as u64);
    match o.loc_mode {
        crate::bank::LocMode::Exact => fp.str("exact"),
        crate::bank::LocMode::Quantized16 => fp.str("q16"),
        crate::bank::LocMode::QuantizedBits(bits) => {
            fp.str("qbits");
            fp.u64(bits as u64);
        }
    }
    fp.u64(o.seed);
    match o.training {
        crate::experiment::TrainingSource::ExactGraph => fp.str("exact-graph"),
        crate::experiment::TrainingSource::TokenDetector(det) => {
            fp.str("token-detector");
            fp.u64(det.horizon as u64);
            fp.u64(det.tokens as u64);
        }
    }
    fp.bool(o.checked);
    fp.opt_u64(o.cycle_budget);
    fp.finish()
}

fn fingerprint_policy_config(fp: &mut Fingerprint, pc: &crate::policy::PolicyConfig) {
    fp.bool(pc.criticality_steer);
    fp.bool(pc.loc_steer);
    fp.bool(pc.binary_priority);
    fp.bool(pc.loc_priority);
    match pc.stall_threshold {
        None => fp.none(),
        Some(v) => {
            fp.some();
            fp.f64(v);
        }
    }
    match pc.proactive {
        None => fp.none(),
        Some(p) => {
            fp.some();
            fp.f64(p.min_loc_override);
            fp.f64(p.producer_fraction);
        }
    }
}

/// A stable identity for a cell within a campaign: the readable axes
/// (benchmark, seed, length, layout, policy) plus an FNV-1a fingerprint
/// over every *explicitly serialized* field of the spec (machine config,
/// policy config, run options), so ablation cells differing only in
/// configuration get distinct keys.
///
/// The fingerprint hashes field values in a fixed order — never `Debug`
/// output — so keys survive derive and formatting changes. Field-set
/// changes are versioned by the manifest header instead
/// ([`MANIFEST_SCHEMA`]): extending the fingerprint means bumping the
/// schema, which makes stale manifests fail loudly rather than silently
/// re-running (or wrongly skipping) every cell.
///
/// This key is the workspace's **single cell-identity API**: the
/// checkpoint manifest keys its records by it, and the `ccs-serve`
/// daemon uses it as the dedup/cache key of its bounded result cache —
/// two submissions map to the same cache entry exactly when their specs
/// fingerprint identically. Anything that can change a cell's schedule
/// must feed the fingerprint; anything that cannot (today: only the
/// write-only `metrics` flag) must not, or equal work would miss the
/// cache. Re-exported as `ccs_core::cell_key`.
pub fn cell_key(spec: &CellSpec) -> String {
    let fingerprint = spec_fingerprint(spec);
    let workload = match spec.scenario {
        None => spec.benchmark.name().to_string(),
        // Prefer the registered scenario name (already restricted to
        // `[a-z0-9_-]`, so it is key-safe); fall back to the
        // content-addressed fingerprint when this process never
        // registered the source. Either way the trailing spec
        // fingerprint carries the scenario identity, so the two
        // renderings of one cell cannot collide with *different* cells.
        Some(id) => match ccs_trace::SourceRegistry::global().name(id) {
            Some(name) if name.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-') => {
                format!("scn-{name}")
            }
            _ => format!("scn-{id}"),
        },
    };
    format!(
        "{workload}/s{}/n{}/{}/{:?}/{fingerprint:016x}",
        spec.sample_seed,
        spec.len,
        spec.config.layout,
        spec.policy,
    )
}

/// One manifest line: the identity and result digest of a finished cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointRecord {
    /// The cell's [`cell_key`].
    pub key: String,
    /// `ok`, `FAILED`, or `TIMEOUT` (see [`CellStatus::label`]).
    pub status: String,
    /// Attempts spent on the cell.
    pub attempts: u32,
    /// Measured-epoch cycle count (0 for failed cells).
    pub cycles: u64,
    /// Bit pattern of the measured CPI (0 for failed cells) — exact
    /// equality without float-formatting round trips.
    pub cpi_bits: u64,
    /// FNV-1a over the debug rendering of the full simulation result
    /// (0 for failed cells). Bit-identical runs digest identically.
    pub digest: u64,
    /// [`SimMetrics::digest`](ccs_sim::SimMetrics::digest) of the cell's
    /// observability counters, when the cell ran with
    /// [`RunOptions::metrics`](crate::RunOptions) on. `None` when metrics
    /// were off (metrics never feed [`cell_key`], so a campaign can be
    /// resumed with the flag toggled).
    pub metrics_digest: Option<u64>,
    /// The error rendering for failed/timed-out cells.
    pub error: Option<String>,
    /// Analytic lower bound on the cell's cycle count
    /// ([`ccs_predict::predict`]), recorded when the campaign ran with
    /// [`CampaignOptions::predict_order`]. Predictions are pure
    /// metadata: they never feed [`cell_key`] or the result digest, and
    /// both fields are omitted from the JSON line when absent, so
    /// manifests written without prediction stay byte-identical.
    pub predicted_lo: Option<u64>,
    /// Analytic upper bound companion to `predicted_lo`.
    pub predicted_hi: Option<u64>,
}

impl CheckpointRecord {
    /// Digests a finished cell.
    pub fn from_result(result: &CellResult) -> CheckpointRecord {
        let key = cell_key(&result.spec);
        match &result.status {
            CellStatus::Completed(o) => CheckpointRecord {
                key,
                status: result.status.label().to_string(),
                attempts: result.status.attempts(),
                cycles: o.result.cycles,
                cpi_bits: o.cpi().to_bits(),
                digest: fnv1a(format!("{:?}", o.result).as_bytes()),
                metrics_digest: o.metrics.as_ref().map(|m| m.digest()),
                error: None,
                predicted_lo: None,
                predicted_hi: None,
            },
            CellStatus::Failed { error, attempts } | CellStatus::TimedOut { error, attempts } => {
                CheckpointRecord {
                    key,
                    status: result.status.label().to_string(),
                    attempts: *attempts,
                    cycles: 0,
                    cpi_bits: 0,
                    digest: 0,
                    metrics_digest: None,
                    error: Some(error.to_string()),
                    predicted_lo: None,
                    predicted_hi: None,
                }
            }
        }
    }

    /// Whether this record is a successful completion.
    pub fn is_ok(&self) -> bool {
        self.status == "ok"
    }

    /// Renders the record as one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut s = String::with_capacity(128);
        s.push_str("{\"key\":\"");
        escape_into(&self.key, &mut s);
        let _ = write!(
            s,
            "\",\"status\":\"{}\",\"attempts\":{},\"cycles\":{},\"cpi_bits\":{},\"digest\":{}",
            self.status, self.attempts, self.cycles, self.cpi_bits, self.digest
        );
        match self.metrics_digest {
            None => s.push_str(",\"metrics_digest\":null"),
            Some(d) => {
                let _ = write!(s, ",\"metrics_digest\":{d}");
            }
        }
        // Prediction metadata is omitted entirely (not `null`) when
        // absent: manifests from prediction-free campaigns stay
        // byte-identical to what earlier builds wrote.
        if let Some(lo) = self.predicted_lo {
            let _ = write!(s, ",\"predicted_lo\":{lo}");
        }
        if let Some(hi) = self.predicted_hi {
            let _ = write!(s, ",\"predicted_hi\":{hi}");
        }
        match &self.error {
            None => s.push_str(",\"error\":null}"),
            Some(e) => {
                s.push_str(",\"error\":\"");
                escape_into(e, &mut s);
                s.push_str("\"}");
            }
        }
        s
    }

    /// Parses one manifest line; `None` for torn or foreign lines.
    pub fn from_json_line(line: &str) -> Option<CheckpointRecord> {
        let line = line.trim();
        if !line.starts_with('{') || !line.ends_with('}') {
            return None;
        }
        Some(CheckpointRecord {
            key: parse_str_field(line, "key")?,
            status: parse_str_field(line, "status")?,
            attempts: parse_u64_field(line, "attempts")? as u32,
            cycles: parse_u64_field(line, "cycles")?,
            cpi_bits: parse_u64_field(line, "cpi_bits")?,
            digest: parse_u64_field(line, "digest")?,
            // Tolerant: `null` or an absent field both read as `None`.
            metrics_digest: if line.contains("\"metrics_digest\":null") {
                None
            } else {
                parse_u64_field(line, "metrics_digest")
            },
            error: parse_opt_str_field(line, "error")?,
            // Tolerant: absent in prediction-free manifests.
            predicted_lo: parse_u64_field(line, "predicted_lo"),
            predicted_hi: parse_u64_field(line, "predicted_hi"),
        })
    }
}

/// Minimal JSON string escaping for the characters our renderings can
/// contain.
fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                if let Some(c) = u32::from_str_radix(&hex, 16).ok().and_then(char::from_u32) {
                    out.push(c);
                }
            }
            Some(other) => out.push(other),
            None => {}
        }
    }
    out
}

/// The raw (still escaped) contents of `"name":"..."`, or `None`.
fn raw_str_field<'a>(line: &'a str, name: &str) -> Option<&'a str> {
    let tag = format!("\"{name}\":\"");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    // Closing quote: first '"' not preceded by an odd run of backslashes.
    let bytes = rest.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return Some(&rest[..i]),
            _ => i += 1,
        }
    }
    None
}

fn parse_str_field(line: &str, name: &str) -> Option<String> {
    raw_str_field(line, name).map(unescape)
}

fn parse_opt_str_field(line: &str, name: &str) -> Option<Option<String>> {
    if line.contains(&format!("\"{name}\":null")) {
        return Some(None);
    }
    parse_str_field(line, name).map(Some)
}

fn parse_u64_field(line: &str, name: &str) -> Option<u64> {
    let tag = format!("\"{name}\":");
    let start = line.find(&tag)? + tag.len();
    let digits: &str = &line[start..];
    let end = digits
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(digits.len());
    digits[..end].parse().ok()
}

/// Loads a manifest into a key-indexed map. A later record for a key
/// supersedes an earlier one (a retry after resume); torn or foreign
/// lines after the header are skipped.
///
/// # Errors
///
/// [`CcsError::Checkpoint`] if the file exists but cannot be read, or
/// if a non-empty file does not open with a `ccs-grid-manifest` header
/// carrying the current [`MANIFEST_SCHEMA`] — the keys of an
/// incompatible manifest cannot be trusted, so resuming over one must
/// fail loudly rather than silently re-run (or wrongly skip) cells. A
/// missing or empty file loads as an empty map.
pub fn load_manifest(path: &Path) -> Result<HashMap<String, CheckpointRecord>, CcsError> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(HashMap::new()),
        Err(e) => {
            return Err(CcsError::Checkpoint {
                path: path.display().to_string(),
                message: e.to_string(),
            })
        }
    };
    if text.trim().is_empty() {
        return Ok(HashMap::new());
    }
    let mut lines = text.lines();
    let first = lines.next().unwrap_or_default();
    let marker = parse_str_field(first, "manifest");
    let schema = parse_u64_field(first, "schema");
    match (marker.as_deref(), schema) {
        (Some("ccs-grid-manifest"), Some(s)) if s == MANIFEST_SCHEMA as u64 => {}
        (Some("ccs-grid-manifest"), Some(s)) => {
            return Err(CcsError::Checkpoint {
                path: path.display().to_string(),
                message: format!(
                    "manifest schema {s} is incompatible with this build \
                     (expected {MANIFEST_SCHEMA}); its cell keys cannot be \
                     trusted — delete it or run without --resume"
                ),
            });
        }
        _ => {
            return Err(CcsError::Checkpoint {
                path: path.display().to_string(),
                message: format!(
                    "not a ccs-grid-manifest (missing or malformed header \
                     line; expected schema {MANIFEST_SCHEMA}); refusing to \
                     resume over it — delete it or run without --resume"
                ),
            });
        }
    }
    let mut map = HashMap::new();
    for line in lines {
        if let Some(rec) = CheckpointRecord::from_json_line(line) {
            map.insert(rec.key.clone(), rec);
        }
    }
    Ok(map)
}

/// How a campaign checkpoints and (optionally) resumes.
#[derive(Debug, Clone)]
pub struct CampaignOptions {
    /// The JSONL manifest path, conventionally under
    /// `results/checkpoints/`.
    pub manifest: PathBuf,
    /// Resume: skip cells already recorded in the manifest and append
    /// to it. Off: truncate any existing manifest and run everything.
    pub resume: bool,
    /// Stop scheduling new cells after this many have run — a
    /// deterministic stand-in for a mid-campaign kill, used by the
    /// kill-and-resume tests. `None` runs the full grid.
    pub max_cells: Option<usize>,
    /// Order pending cells best-first (longest-predicted-first) by the
    /// analytic cycle bound from [`ccs_predict::predict`], and record
    /// each cell's predicted envelope in its manifest line. Pure
    /// metadata: ordering changes which cell runs *when* (better
    /// tail-latency under `max_cells`/kills, classic LPT scheduling)
    /// but never what any cell computes — results are re-placed by
    /// input index and keys/digests are unaffected, a property
    /// `tests/predict_order_determinism.rs` enforces.
    pub predict_order: bool,
}

impl CampaignOptions {
    /// A campaign writing to `manifest`, not resuming, unbounded.
    pub fn new(manifest: impl Into<PathBuf>) -> Self {
        CampaignOptions {
            manifest: manifest.into(),
            resume: false,
            max_cells: None,
            predict_order: false,
        }
    }

    /// The same options with resume on or off.
    #[must_use]
    pub fn with_resume(mut self, resume: bool) -> Self {
        self.resume = resume;
        self
    }

    /// The same options stopping after `max_cells` cells.
    #[must_use]
    pub fn with_max_cells(mut self, max_cells: usize) -> Self {
        self.max_cells = Some(max_cells);
        self
    }

    /// The same options with best-first predicted ordering on or off.
    #[must_use]
    pub fn with_predict_order(mut self, predict_order: bool) -> Self {
        self.predict_order = predict_order;
        self
    }
}

/// What a (possibly resumed, possibly truncated) campaign produced.
#[derive(Debug)]
pub struct CampaignReport {
    /// Per input spec: the in-memory result if the cell ran in *this*
    /// process, `None` if it was skipped on resume or cut by
    /// [`CampaignOptions::max_cells`].
    pub results: Vec<Option<CellResult>>,
    /// Per input spec: the manifest record after the run — present for
    /// every cell that has ever finished (this run or a resumed one).
    pub records: Vec<Option<CheckpointRecord>>,
    /// Cells skipped because the manifest already recorded them.
    pub skipped: usize,
}

impl CampaignReport {
    /// Cells recorded as completed.
    pub fn completed(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.as_ref().is_some_and(CheckpointRecord::is_ok))
            .count()
    }

    /// Cells recorded as failed or timed out.
    pub fn failed(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.as_ref().is_some_and(|r| !r.is_ok()))
            .count()
    }

    /// Cells with no record yet (cut by `max_cells`).
    pub fn unfinished(&self) -> usize {
        self.records.iter().filter(|r| r.is_none()).count()
    }

    /// `0` when every cell completed, `1` when any failed or timed
    /// out, `2` when the campaign is incomplete.
    pub fn exit_code(&self) -> i32 {
        if self.unfinished() > 0 {
            2
        } else if self.failed() > 0 {
            1
        } else {
            0
        }
    }

    /// A one-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "{} ok, {} failed/timed-out, {} unfinished, {} resumed-skipped of {} cells",
            self.completed(),
            self.failed(),
            self.unfinished(),
            self.skipped,
            self.records.len()
        )
    }
}

/// Runs `specs` as a checkpointed campaign: every finished cell is
/// appended (and flushed) to the manifest as it completes, and with
/// [`CampaignOptions::resume`] cells already recorded are skipped.
///
/// # Errors
///
/// [`CcsError::Checkpoint`] if the manifest cannot be created, read, or
/// appended. Cell-level failures do **not** error the campaign — they
/// are recorded per cell, reflected in
/// [`CampaignReport::exit_code`].
pub fn run_campaign(
    specs: &[CellSpec],
    threads: usize,
    res: &Resilience,
    opts: &CampaignOptions,
) -> Result<CampaignReport, CcsError> {
    let io_err = |e: std::io::Error| CcsError::Checkpoint {
        path: opts.manifest.display().to_string(),
        message: e.to_string(),
    };
    if let Some(dir) = opts.manifest.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(io_err)?;
        }
    }
    let recorded = if opts.resume {
        load_manifest(&opts.manifest)?
    } else {
        HashMap::new()
    };
    // A truncated manifest needs its header; so does resuming into a
    // missing or empty file (an empty file validates as an empty map).
    let needs_header = !opts.resume
        || std::fs::metadata(&opts.manifest)
            .map(|m| m.len() == 0)
            .unwrap_or(true);
    let file = OpenOptions::new()
        .create(true)
        .append(opts.resume)
        .truncate(!opts.resume)
        .write(true)
        .open(&opts.manifest)
        .map_err(io_err)?;
    let mut buf = BufWriter::new(file);
    if needs_header {
        writeln!(buf, "{}", manifest_header()).map_err(io_err)?;
        buf.flush().map_err(io_err)?;
    }
    let writer = Mutex::new(buf);

    let keys: Vec<String> = specs.iter().map(cell_key).collect();
    let mut pending: Vec<(usize, CellSpec)> = specs
        .iter()
        .enumerate()
        .filter(|(i, _)| !recorded.contains_key(&keys[*i]))
        .map(|(i, s)| (i, *s))
        .collect();
    let skipped = specs.len() - pending.len();
    // Best-first (LPT) ordering: sort the still-pending cells by
    // descending predicted cycle lower bound before any `max_cells`
    // truncation, so the longest cells start (and survive a truncated
    // run) first. Strictly metadata: only the evaluation *order*
    // changes — results are re-placed by input index below, and the
    // predicted envelope rides along on each cell's manifest record.
    let predictions: HashMap<String, (u64, u64)> = if opts.predict_order {
        let map: HashMap<String, (u64, u64)> = pending
            .iter()
            .map(|(i, spec)| {
                let trace =
                    ccs_trace::TraceStore::global().get(spec.benchmark, spec.sample_seed, spec.len);
                let p = ccs_predict::predict(&spec.config, &trace)
                    .with_cycle_budget(spec.options.cycle_budget);
                (keys[*i].clone(), (p.cycles_lo, p.cycles_hi))
            })
            .collect();
        pending.sort_by(|(a, _), (b, _)| {
            let lo = |i: &usize| map.get(&keys[*i]).map(|p| p.0).unwrap_or(0);
            lo(b).cmp(&lo(a)).then(a.cmp(b))
        });
        map
    } else {
        HashMap::new()
    };
    if let Some(max) = opts.max_cells {
        pending.truncate(max);
    }
    let attach = |mut rec: CheckpointRecord| {
        if let Some(&(lo, hi)) = predictions.get(&rec.key) {
            rec.predicted_lo = Some(lo);
            rec.predicted_hi = Some(hi);
        }
        rec
    };

    let pending_specs: Vec<CellSpec> = pending.iter().map(|(_, s)| *s).collect();
    let ran = run_cells(
        &pending_specs,
        threads,
        res,
        |_, spec, cancel| evaluate_cell(spec, cancel),
        |_, result: &CellResult| {
            let line = attach(CheckpointRecord::from_result(result)).to_json_line();
            let mut w = writer.lock().unwrap_or_else(PoisonError::into_inner);
            // A write/flush failure here must not take down the other
            // worker threads; the campaign still holds its results in
            // memory, so losing a checkpoint line only costs a re-run
            // of that cell after a resume.
            let _ = writeln!(w, "{line}");
            let _ = w.flush();
        },
    );
    drop(
        writer
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner),
    );

    let mut results: Vec<Option<CellResult>> = vec![None; specs.len()];
    for ((input_idx, _), result) in pending.iter().zip(ran) {
        results[*input_idx] = Some(result);
    }
    let records: Vec<Option<CheckpointRecord>> = results
        .iter()
        .zip(&keys)
        .map(|(result, key)| match result {
            Some(r) => Some(attach(CheckpointRecord::from_result(r))),
            None => recorded.get(key).cloned(),
        })
        .collect();
    Ok(CampaignReport {
        results,
        records,
        skipped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridRequest;
    use crate::policy::PolicyKind;
    use crate::RunOptions;
    use ccs_isa::{ClusterLayout, MachineConfig};
    use ccs_trace::Benchmark;

    #[test]
    fn records_round_trip_through_json_lines() {
        let rec = CheckpointRecord {
            key: "vpr/s1/n1000/4x2/Focused/00ff".into(),
            status: "ok".into(),
            attempts: 1,
            cycles: 1234,
            cpi_bits: 0x3ff0_0000_0000_0000,
            digest: 0xdead_beef,
            metrics_digest: Some(0x0123_4567_89ab_cdef),
            error: None,
            predicted_lo: Some(1_100),
            predicted_hi: Some(164_001),
        };
        let line = rec.to_json_line();
        assert_eq!(CheckpointRecord::from_json_line(&line), Some(rec));

        let failed = CheckpointRecord {
            key: "gzip/s2/n500/8x1/FocusedLoc/0001".into(),
            status: "FAILED".into(),
            attempts: 2,
            cycles: 0,
            cpi_bits: 0,
            digest: 0,
            metrics_digest: None,
            error: Some("cell panicked: \"quoted\"\nand newline \\ slash".into()),
            predicted_lo: None,
            predicted_hi: None,
        };
        let line = failed.to_json_line();
        assert_eq!(CheckpointRecord::from_json_line(&line), Some(failed));
    }

    #[test]
    fn torn_lines_parse_as_none() {
        assert_eq!(CheckpointRecord::from_json_line(""), None);
        assert_eq!(
            CheckpointRecord::from_json_line("{\"key\":\"a/b\",\"status\":\"ok\",\"atte"),
            None
        );
        assert_eq!(CheckpointRecord::from_json_line("not json at all"), None);
    }

    #[test]
    fn cell_keys_distinguish_config_variants() {
        let opts = RunOptions::default();
        let base = MachineConfig::micro05_baseline().with_layout(ClusterLayout::C4x2w);
        let a = CellSpec::new(base, Benchmark::Vpr, 1, 1_000, PolicyKind::Focused, opts);
        let b = CellSpec::new(
            base,
            Benchmark::Vpr,
            1,
            1_000,
            PolicyKind::Focused,
            opts.with_epochs(3),
        );
        assert_ne!(cell_key(&a), cell_key(&b), "options feed the fingerprint");
        assert_eq!(cell_key(&a), cell_key(&a.clone()), "keys are stable");
    }

    #[test]
    fn metrics_flag_does_not_change_cell_key() {
        let base = MachineConfig::micro05_baseline().with_layout(ClusterLayout::C4x2w);
        let off = CellSpec::new(
            base,
            Benchmark::Vpr,
            1,
            1_000,
            PolicyKind::Focused,
            RunOptions::default(),
        );
        let on = CellSpec::new(
            base,
            Benchmark::Vpr,
            1,
            1_000,
            PolicyKind::Focused,
            RunOptions::default().with_metrics(true),
        );
        assert_eq!(
            cell_key(&off),
            cell_key(&on),
            "metrics is a write-only observer: toggling it must not invalidate a resume"
        );
    }

    #[test]
    fn fingerprint_distinguishes_adjacent_option_fields() {
        // `Some(0)` for one field must not alias `None` followed by a
        // zero in the next — the tag bytes keep them apart.
        let base = MachineConfig::micro05_baseline().with_layout(ClusterLayout::C2x4w);
        let spec = |opts: RunOptions| {
            CellSpec::new(base, Benchmark::Gzip, 7, 500, PolicyKind::Focused, opts)
        };
        let none = spec(RunOptions::default());
        let some_zero = spec(RunOptions::default().with_cycle_budget(0));
        assert_ne!(cell_key(&none), cell_key(&some_zero));
    }

    #[test]
    fn fingerprint_distinguishes_adjacent_machine_fields() {
        // The serve-cache twin of the options test above: an optional
        // *machine* field set to `Some(0)` must not alias `None` with a
        // zero in the following field, or the daemon's result cache
        // would serve one machine's schedule for the other.
        let mut unbounded = MachineConfig::micro05_baseline().with_layout(ClusterLayout::C4x2w);
        unbounded.forward_bandwidth = None;
        let mut zero = unbounded;
        zero.forward_bandwidth = Some(0);
        let opts = RunOptions::default();
        let a = CellSpec::new(unbounded, Benchmark::Vpr, 1, 1_000, PolicyKind::Focused, opts);
        let b = CellSpec::new(zero, Benchmark::Vpr, 1, 1_000, PolicyKind::Focused, opts);
        assert_ne!(
            cell_key(&a),
            cell_key(&b),
            "forward_bandwidth None vs Some(0) must key distinctly"
        );
    }

    #[test]
    fn scenario_cells_never_collide_with_benchmark_cells() {
        // A scenario cell whose generator *is* vpr, at identical
        // (seed, len, layout, policy, options), must still key apart
        // from the plain vpr benchmark cell: the fingerprint type-tags
        // the workload axis (`some`+u64 vs str), so equal parameters
        // cannot alias across the two workload kinds.
        let scenario = ccs_scenario::Scenario::benchmark_equivalent(Benchmark::Vpr);
        let id = scenario.register().expect("benchmark equivalent is valid");
        let base = MachineConfig::micro05_baseline().with_layout(ClusterLayout::C4x2w);
        let opts = RunOptions::default();
        let bench = CellSpec::new(base, Benchmark::Vpr, 1, 1_000, PolicyKind::Focused, opts);
        let scn = CellSpec::for_scenario(base, id, 1, 1_000, PolicyKind::Focused, opts);
        assert_ne!(spec_fingerprint(&bench), spec_fingerprint(&scn));
        assert_ne!(cell_key(&bench), cell_key(&scn));
        assert!(
            cell_key(&scn).starts_with("scn-vpr/"),
            "scenario keys carry the scn- prefix: {}",
            cell_key(&scn)
        );
    }

    #[test]
    fn manifest_field_reorder_does_not_change_cell_key() {
        // The cell key hashes the scenario's content-addressed id,
        // which fingerprints the *canonical* manifest rendering — so a
        // hand-edited manifest with reordered fields maps to the same
        // cell (cache hit, checkpoint skip, same shard) as the original.
        let canonical = ccs_scenario::Scenario::benchmark_equivalent(Benchmark::Gzip).to_manifest();
        let reordered = canonical.replace(
            "id = \"chain\"\nkind = \"chain\"\npc = 0x6000\nlen = 6\n",
            "len = 6\npc = 0x6000\nkind = \"chain\"\nid = \"chain\"\n",
        );
        assert_ne!(canonical, reordered, "test must actually reorder fields");
        let (_, id_a) = ccs_scenario::register_manifest(&canonical).unwrap();
        let (_, id_b) = ccs_scenario::register_manifest(&reordered).unwrap();
        assert_eq!(id_a, id_b, "canonicalization makes registration order-blind");
        let base = MachineConfig::micro05_baseline().with_layout(ClusterLayout::C4x2w);
        let opts = RunOptions::default();
        let a = CellSpec::for_scenario(base, id_a, 3, 800, PolicyKind::Dependence, opts);
        let b = CellSpec::for_scenario(base, id_b, 3, 800, PolicyKind::Dependence, opts);
        assert_eq!(cell_key(&a), cell_key(&b));
    }

    #[test]
    fn unregistered_scenario_keys_fall_back_to_fingerprint() {
        // Key rendering must not require the registry: a coordinator
        // can compute keys for cells whose manifests only workers hold.
        let base = MachineConfig::micro05_baseline().with_layout(ClusterLayout::C4x2w);
        let spec = CellSpec::for_scenario(
            base,
            // An id no process registered: fabricate via a manifest
            // that is never parsed — register under a unique name.
            ccs_scenario::Scenario::new("never-again")
                .with_mix(
                    0xFEED,
                    &[(ccs_scenario::EmitterKind::Chain { len: 9 }, 1)],
                )
                .register()
                .unwrap(),
            1,
            100,
            PolicyKind::Focused,
            RunOptions::default(),
        );
        // Registered in this process, so the name renders…
        assert!(cell_key(&spec).starts_with("scn-never-again/"));
        // …and the registered-vs-unregistered renderings share the
        // trailing fingerprint (identity lives in the hash, not the
        // label).
        let fp = format!("{:016x}", spec_fingerprint(&spec));
        assert!(cell_key(&spec).ends_with(&fp));
    }

    #[test]
    fn manifest_without_valid_header_fails_loudly() {
        let dir = std::env::temp_dir().join(format!("ccs-ckpt-hdr-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();

        // Legacy (headerless) manifest: first line is a record.
        let legacy = dir.join("legacy.jsonl");
        std::fs::write(
            &legacy,
            "{\"key\":\"a/b\",\"status\":\"ok\",\"attempts\":1,\"cycles\":1,\
             \"cpi_bits\":1,\"digest\":1,\"metrics_digest\":null,\"error\":null}\n",
        )
        .unwrap();
        let err = load_manifest(&legacy).unwrap_err();
        assert!(
            err.to_string().contains("ccs-grid-manifest"),
            "unexpected error: {err}"
        );

        // Wrong schema version.
        let stale = dir.join("stale.jsonl");
        std::fs::write(&stale, "{\"manifest\":\"ccs-grid-manifest\",\"schema\":1}\n").unwrap();
        let err = load_manifest(&stale).unwrap_err();
        assert!(err.to_string().contains("schema 1"), "unexpected error: {err}");

        // Missing or empty files still load as empty maps.
        assert!(load_manifest(&dir.join("missing.jsonl")).unwrap().is_empty());
        let empty = dir.join("empty.jsonl");
        std::fs::write(&empty, "").unwrap();
        assert!(load_manifest(&empty).unwrap().is_empty());

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn campaign_manifests_open_with_the_schema_header() {
        let dir = std::env::temp_dir().join(format!("ccs-ckpt-hdr2-{}", std::process::id()));
        let specs = GridRequest::new(MachineConfig::micro05_baseline(), 500)
            .benchmarks([Benchmark::Vpr])
            .layouts([ClusterLayout::C2x4w])
            .policies([PolicyKind::Focused])
            .options(RunOptions::default().with_epochs(1))
            .build();
        let opts = CampaignOptions::new(dir.join("hdr.jsonl"));
        run_campaign(&specs, 1, &Resilience::default(), &opts).unwrap();
        let text = std::fs::read_to_string(dir.join("hdr.jsonl")).unwrap();
        assert_eq!(text.lines().next(), Some(manifest_header().as_str()));
        // And the file it wrote round-trips through load_manifest.
        assert_eq!(load_manifest(&dir.join("hdr.jsonl")).unwrap().len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn campaign_checkpoints_and_resumes_bit_identically() {
        let dir = std::env::temp_dir().join(format!("ccs-ckpt-{}", std::process::id()));
        let specs = GridRequest::new(MachineConfig::micro05_baseline(), 800)
            .benchmarks([Benchmark::Vpr, Benchmark::Gzip])
            .layouts([ClusterLayout::C2x4w])
            .policies([PolicyKind::Focused, PolicyKind::FocusedLoc])
            .options(RunOptions::default().with_epochs(1))
            .build();
        assert_eq!(specs.len(), 4);

        // Uninterrupted reference campaign.
        let clean_opts = CampaignOptions::new(dir.join("clean.jsonl"));
        let clean = run_campaign(&specs, 2, &Resilience::default(), &clean_opts).unwrap();
        assert_eq!(clean.exit_code(), 0, "{}", clean.summary());

        // Killed after 2 cells, then resumed.
        let killed_opts = CampaignOptions::new(dir.join("resumed.jsonl")).with_max_cells(2);
        let killed = run_campaign(&specs, 1, &Resilience::default(), &killed_opts).unwrap();
        assert_eq!(killed.exit_code(), 2);
        assert_eq!(killed.unfinished(), 2);

        let resume_opts = CampaignOptions::new(dir.join("resumed.jsonl")).with_resume(true);
        let resumed = run_campaign(&specs, 1, &Resilience::default(), &resume_opts).unwrap();
        assert_eq!(resumed.exit_code(), 0, "{}", resumed.summary());
        assert_eq!(resumed.skipped, 2, "completed cells must not re-run");
        assert_eq!(
            resumed.results.iter().flatten().count(),
            2,
            "only the missing cells ran"
        );

        // The resumed manifest's records must match the clean run's
        // digests exactly, cell for cell.
        for (i, (clean_rec, resumed_rec)) in
            clean.records.iter().zip(&resumed.records).enumerate()
        {
            assert_eq!(clean_rec, resumed_rec, "cell {i} digest");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
