//! Append-only request journal, and the crash-recovery replay built on
//! it.
//!
//! One JSONL line per event, flushed line-by-line so a killed daemon
//! leaves at most one torn trailing line — which the loader skips by
//! construction (every parse is per-line and a torn line simply fails
//! to parse). The journal answers "what did the daemon admit and
//! finish" after the fact; it is written outside any hot path (one line
//! per submission and one per finished cell, not per cycle).
//!
//! Since version 2 a [`JournalEvent::CellDone`] line carries the full
//! result payload (attempts, cycles, CPI bits, schedule digest), which
//! is everything a wire reply needs — so [`replay_journal`] can rebuild
//! the result cache of a crashed shard from its journal alone, and
//! [`Journal::recover`] reopens the file in append mode (never
//! truncating history) and stamps a [`JournalEvent::Recovered`] marker.
//! Replay is last-write-wins per cell key, tolerates a torn tail, and
//! rejects a wrong-version header loudly rather than guessing at a
//! foreign schema.

use crate::json;
use ccs_core::checkpoint::CheckpointRecord;
use ccs_core::CcsError;
use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, PoisonError};

/// Journal format version, recorded in the header line. Version 2
/// extended `cell_done` with the result payload that recovery replays;
/// version-1 journals cannot rebuild a cache and are rejected loudly.
pub const JOURNAL_VERSION: u64 = 2;

/// One journal event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalEvent {
    /// The daemon started (always the first line).
    Started {
        /// Listen address.
        addr: String,
        /// Worker threads.
        workers: u64,
        /// Admission-queue capacity.
        queue_capacity: u64,
    },
    /// A submission was admitted.
    Admitted {
        /// Monotonic sequence number.
        seq: u64,
        /// Client-chosen submission id.
        id: u64,
        /// Cells in the submission.
        cells: u64,
        /// Of which answered straight from cache.
        cached: u64,
    },
    /// A submission was rejected (busy or draining).
    RejectedEvent {
        /// Monotonic sequence number.
        seq: u64,
        /// Client-chosen submission id.
        id: u64,
        /// Why (`busy` or `draining`).
        reason: String,
    },
    /// An approximate submission was answered with an analytic envelope
    /// (cache miss on an `approx` request; no evaluation happened).
    ApproxServed {
        /// Monotonic sequence number.
        seq: u64,
        /// The cell's key.
        key: String,
    },
    /// A cell finished evaluating. Carries the full result payload so
    /// recovery can rebuild the cache entry bit-identically.
    CellDone {
        /// Monotonic sequence number.
        seq: u64,
        /// The cell's key.
        key: String,
        /// `ok`, `FAILED`, or `TIMEOUT`.
        status: String,
        /// Evaluation attempts the resilient executor spent.
        attempts: u64,
        /// Total cycles of the final schedule (0 unless `ok`).
        cycles: u64,
        /// CPI as raw `f64` bits (0 unless `ok`).
        cpi_bits: u64,
        /// Order-independent schedule digest (0 unless `ok`).
        digest: u64,
        /// The rendered error for non-`ok` cells.
        error: Option<String>,
    },
    /// Drain was requested.
    DrainRequested {
        /// Monotonic sequence number.
        seq: u64,
        /// Cells still in flight at the request.
        pending: u64,
    },
    /// The daemon finished draining and is exiting.
    Drained {
        /// Monotonic sequence number.
        seq: u64,
    },
    /// The daemon restarted and replayed this journal. Everything above
    /// this marker happened in an earlier incarnation.
    Recovered {
        /// Monotonic sequence number.
        seq: u64,
        /// Cache entries rebuilt from `cell_done` lines.
        replayed: u64,
        /// Torn or foreign lines skipped during replay.
        skipped: u64,
    },
}

impl JournalEvent {
    fn encode(&self) -> String {
        let mut out = String::with_capacity(64);
        match self {
            JournalEvent::Started {
                addr,
                workers,
                queue_capacity,
            } => {
                let _ = write!(
                    out,
                    "{{\"event\":\"started\",\"journal\":{JOURNAL_VERSION},\"addr\":{},\
                     \"workers\":{workers},\"queue_capacity\":{queue_capacity}}}",
                    json::quoted(addr),
                );
            }
            JournalEvent::Admitted {
                seq,
                id,
                cells,
                cached,
            } => {
                let _ = write!(
                    out,
                    "{{\"event\":\"admitted\",\"seq\":{seq},\"id\":{id},\
                     \"cells\":{cells},\"cached\":{cached}}}",
                );
            }
            JournalEvent::RejectedEvent { seq, id, reason } => {
                let _ = write!(
                    out,
                    "{{\"event\":\"rejected\",\"seq\":{seq},\"id\":{id},\"reason\":{}}}",
                    json::quoted(reason),
                );
            }
            JournalEvent::ApproxServed { seq, key } => {
                let _ = write!(
                    out,
                    "{{\"event\":\"approx\",\"seq\":{seq},\"key\":{}}}",
                    json::quoted(key),
                );
            }
            JournalEvent::CellDone {
                seq,
                key,
                status,
                attempts,
                cycles,
                cpi_bits,
                digest,
                error,
            } => {
                let _ = write!(
                    out,
                    "{{\"event\":\"cell_done\",\"seq\":{seq},\"key\":{},\"status\":{},\
                     \"attempts\":{attempts},\"cycles\":{cycles},\
                     \"cpi_bits\":{cpi_bits},\"digest\":{digest}",
                    json::quoted(key),
                    json::quoted(status),
                );
                if let Some(e) = error {
                    let _ = write!(out, ",\"error\":{}", json::quoted(e));
                }
                out.push('}');
            }
            JournalEvent::DrainRequested { seq, pending } => {
                let _ = write!(
                    out,
                    "{{\"event\":\"drain_requested\",\"seq\":{seq},\"pending\":{pending}}}",
                );
            }
            JournalEvent::Drained { seq } => {
                let _ = write!(out, "{{\"event\":\"drained\",\"seq\":{seq}}}");
            }
            JournalEvent::Recovered {
                seq,
                replayed,
                skipped,
            } => {
                let _ = write!(
                    out,
                    "{{\"event\":\"recovered\",\"seq\":{seq},\
                     \"replayed\":{replayed},\"skipped\":{skipped}}}",
                );
            }
        }
        out
    }

    /// Parses one journal line.
    ///
    /// # Errors
    ///
    /// [`CcsError::Protocol`] for unknown or incomplete lines (a torn
    /// trailing line from a killed daemon lands here).
    pub fn decode(line: &str) -> Result<JournalEvent, CcsError> {
        let bad = |what: &str| CcsError::Protocol {
            message: format!("journal line {what}: {line:?}"),
        };
        // A record cut mid-write can still satisfy the lenient field
        // scanners below — worst case with a *truncated trailing
        // number*. Requiring the closing brace rejects torn lines
        // before any field is trusted.
        if !line.trim_end().ends_with('}') {
            return Err(bad("is truncated"));
        }
        let event = json::str_field(line, "event").ok_or_else(|| bad("missing event"))?;
        let num = |name: &str| json::u64_field(line, name).ok_or_else(|| bad("missing field"));
        match event.as_str() {
            "started" => Ok(JournalEvent::Started {
                addr: json::str_field(line, "addr").ok_or_else(|| bad("missing addr"))?,
                workers: num("workers")?,
                queue_capacity: num("queue_capacity")?,
            }),
            "admitted" => Ok(JournalEvent::Admitted {
                seq: num("seq")?,
                id: num("id")?,
                cells: num("cells")?,
                cached: num("cached")?,
            }),
            "rejected" => Ok(JournalEvent::RejectedEvent {
                seq: num("seq")?,
                id: num("id")?,
                reason: json::str_field(line, "reason").ok_or_else(|| bad("missing reason"))?,
            }),
            "approx" => Ok(JournalEvent::ApproxServed {
                seq: num("seq")?,
                key: json::str_field(line, "key").ok_or_else(|| bad("missing key"))?,
            }),
            "cell_done" => Ok(JournalEvent::CellDone {
                seq: num("seq")?,
                key: json::str_field(line, "key").ok_or_else(|| bad("missing key"))?,
                status: json::str_field(line, "status").ok_or_else(|| bad("missing status"))?,
                attempts: num("attempts")?,
                cycles: num("cycles")?,
                cpi_bits: num("cpi_bits")?,
                digest: num("digest")?,
                error: json::opt_str_field(line, "error").flatten(),
            }),
            "drain_requested" => Ok(JournalEvent::DrainRequested {
                seq: num("seq")?,
                pending: num("pending")?,
            }),
            "drained" => Ok(JournalEvent::Drained { seq: num("seq")? }),
            "recovered" => Ok(JournalEvent::Recovered {
                seq: num("seq")?,
                replayed: num("replayed")?,
                skipped: num("skipped")?,
            }),
            _ => Err(bad("unknown event")),
        }
    }
}

/// The daemon's append-only journal writer.
pub struct Journal {
    inner: Mutex<JournalInner>,
    path: PathBuf,
}

struct JournalInner {
    file: File,
    seq: u64,
}

impl Journal {
    /// Creates (truncating) the journal at `path` and writes the header
    /// line.
    ///
    /// # Errors
    ///
    /// [`CcsError::Checkpoint`] when the file cannot be created or
    /// written.
    pub fn create(
        path: impl Into<PathBuf>,
        addr: &str,
        workers: usize,
        queue_capacity: usize,
    ) -> Result<Journal, CcsError> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(|e| CcsError::Checkpoint {
                    path: parent.display().to_string(),
                    message: e.to_string(),
                })?;
            }
        }
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&path)
            .map_err(|e| CcsError::Checkpoint {
                path: path.display().to_string(),
                message: e.to_string(),
            })?;
        let journal = Journal {
            inner: Mutex::new(JournalInner { file, seq: 0 }),
            path,
        };
        journal.append(JournalEvent::Started {
            addr: addr.to_string(),
            workers: workers as u64,
            queue_capacity: queue_capacity as u64,
        });
        Ok(journal)
    }

    /// Reopens an existing journal for crash recovery: replays it (see
    /// [`replay_journal`]), then opens the file in **append** mode —
    /// history is never truncated — resumes the sequence counter past
    /// the highest replayed event, and stamps a
    /// [`JournalEvent::Recovered`] marker. A missing file is not a
    /// crash; it falls back to [`Journal::create`] with an empty
    /// [`ReplayState`].
    ///
    /// # Errors
    ///
    /// [`CcsError::Checkpoint`] when the journal exists but cannot be
    /// replayed (unreadable, headerless, or a foreign version) or the
    /// file cannot be reopened.
    pub fn recover(
        path: impl Into<PathBuf>,
        addr: &str,
        workers: usize,
        queue_capacity: usize,
    ) -> Result<(Journal, ReplayState), CcsError> {
        let path = path.into();
        if !path.exists() {
            let journal = Journal::create(&path, addr, workers, queue_capacity)?;
            return Ok((journal, ReplayState::default()));
        }
        let state = replay_journal(&path)?;
        let file = OpenOptions::new()
            .append(true)
            .open(&path)
            .map_err(|e| CcsError::Checkpoint {
                path: path.display().to_string(),
                message: e.to_string(),
            })?;
        let journal = Journal {
            inner: Mutex::new(JournalInner {
                file,
                seq: state.max_seq + 1,
            }),
            path,
        };
        journal.append(JournalEvent::Recovered {
            seq: 0,
            replayed: state.records.len() as u64,
            skipped: state.skipped,
        });
        Ok((journal, state))
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The next sequence number (what the next event will carry).
    pub fn next_seq(&self) -> u64 {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner).seq
    }

    /// Appends one event, stamping its sequence number, and flushes the
    /// line. Write failures are swallowed: the journal is an audit
    /// trail, and a full disk must not take the daemon down with it.
    pub fn append(&self, mut event: JournalEvent) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let seq = inner.seq;
        inner.seq += 1;
        match &mut event {
            JournalEvent::Started { .. } => {}
            JournalEvent::Admitted { seq: s, .. }
            | JournalEvent::RejectedEvent { seq: s, .. }
            | JournalEvent::ApproxServed { seq: s, .. }
            | JournalEvent::CellDone { seq: s, .. }
            | JournalEvent::DrainRequested { seq: s, .. }
            | JournalEvent::Drained { seq: s }
            | JournalEvent::Recovered { seq: s, .. } => *s = seq,
        }
        let mut line = event.encode();
        line.push('\n');
        let _ = inner.file.write_all(line.as_bytes());
        let _ = inner.file.flush();
    }
}

/// Loads every parseable event from a journal file, skipping (and
/// counting) torn or foreign lines.
///
/// # Errors
///
/// [`CcsError::Checkpoint`] when the file cannot be read at all.
pub fn load_journal(path: &Path) -> Result<(Vec<JournalEvent>, usize), CcsError> {
    let file = File::open(path).map_err(|e| CcsError::Checkpoint {
        path: path.display().to_string(),
        message: e.to_string(),
    })?;
    let mut events = Vec::new();
    let mut skipped = 0usize;
    for line in BufReader::new(file).lines() {
        let line = line.map_err(|e| CcsError::Checkpoint {
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
        if line.trim().is_empty() {
            continue;
        }
        match JournalEvent::decode(&line) {
            Ok(ev) => events.push(ev),
            Err(_) => skipped += 1,
        }
    }
    Ok((events, skipped))
}

/// What a journal replay reconstructed about a crashed daemon.
#[derive(Debug, Clone, Default)]
pub struct ReplayState {
    /// Finished-cell records, last-write-wins per key, in first-seen
    /// key order. `"ok"` records carry everything the result cache
    /// needs for a bit-identical wire reply.
    pub records: Vec<CheckpointRecord>,
    /// Cells admitted across the journal's lifetime (includes cache
    /// hits, which never produce a `cell_done` line).
    pub admitted: u64,
    /// Of the admitted cells, how many were answered from cache at
    /// admission time.
    pub cached: u64,
    /// `cell_done` lines seen (any status, before deduplication).
    pub done: u64,
    /// Torn or foreign lines skipped.
    pub skipped: u64,
    /// Whether the journal ends with a clean `drained` marker (false ⇒
    /// the previous incarnation crashed or was killed).
    pub drained: bool,
    /// Highest sequence number seen, so a recovered journal can keep
    /// numbering monotonically.
    pub max_seq: u64,
}

impl ReplayState {
    /// Admitted cells with no recorded outcome: work the crash ate.
    /// The campaign layer re-places these via client failover; they are
    /// reported so the loss is visible, not silent.
    pub fn lost_in_flight(&self) -> u64 {
        self.admitted.saturating_sub(self.cached + self.done)
    }
}

/// Replays a journal for crash recovery: validates the header version,
/// then folds every `cell_done` line into a last-write-wins record map.
///
/// # Errors
///
/// [`CcsError::Checkpoint`] when the file cannot be read, has no
/// parseable header line, or — loudly, rather than misreading a foreign
/// schema — carries a `"journal"` version other than
/// [`JOURNAL_VERSION`].
pub fn replay_journal(path: &Path) -> Result<ReplayState, CcsError> {
    let fail = |message: String| CcsError::Checkpoint {
        path: path.display().to_string(),
        message,
    };
    let file = File::open(path).map_err(|e| fail(e.to_string()))?;
    let mut state = ReplayState::default();
    let mut by_key: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
    let mut header_seen = false;
    for line in BufReader::new(file).lines() {
        let line = line.map_err(|e| fail(e.to_string()))?;
        if line.trim().is_empty() {
            continue;
        }
        if !header_seen {
            // The header is written and flushed before the daemon
            // serves anything; a journal whose first line is not a
            // current-version `started` event is not ours to replay.
            let version = json::u64_field(&line, "journal");
            match (JournalEvent::decode(&line), version) {
                (Ok(JournalEvent::Started { .. }), Some(v)) if v == JOURNAL_VERSION => {
                    header_seen = true;
                    continue;
                }
                (Ok(JournalEvent::Started { .. }), Some(v)) => {
                    return Err(fail(format!(
                        "journal version {v} is not replayable (expected {JOURNAL_VERSION}); \
                         refusing to rebuild a cache from a foreign schema"
                    )));
                }
                _ => {
                    return Err(fail(format!(
                        "journal does not start with a version-{JOURNAL_VERSION} header line"
                    )));
                }
            }
        }
        match JournalEvent::decode(&line) {
            Ok(ev) => {
                match &ev {
                    JournalEvent::Started { .. } => {}
                    JournalEvent::Admitted {
                        seq, cells, cached, ..
                    } => {
                        state.admitted += cells;
                        state.cached += cached;
                        state.max_seq = state.max_seq.max(*seq);
                    }
                    JournalEvent::CellDone {
                        seq,
                        key,
                        status,
                        attempts,
                        cycles,
                        cpi_bits,
                        digest,
                        error,
                    } => {
                        state.done += 1;
                        state.max_seq = state.max_seq.max(*seq);
                        let record = CheckpointRecord {
                            key: key.clone(),
                            status: status.clone(),
                            attempts: u32::try_from(*attempts).unwrap_or(u32::MAX),
                            cycles: *cycles,
                            cpi_bits: *cpi_bits,
                            digest: *digest,
                            metrics_digest: None,
                            predicted_lo: None,
                            predicted_hi: None,
                            error: error.clone(),
                        };
                        match by_key.get(key) {
                            Some(&at) => state.records[at] = record,
                            None => {
                                by_key.insert(key.clone(), state.records.len());
                                state.records.push(record);
                            }
                        }
                    }
                    JournalEvent::RejectedEvent { seq, .. }
                    | JournalEvent::ApproxServed { seq, .. }
                    | JournalEvent::DrainRequested { seq, .. }
                    | JournalEvent::Recovered { seq, .. } => {
                        state.max_seq = state.max_seq.max(*seq);
                    }
                    JournalEvent::Drained { seq } => {
                        state.max_seq = state.max_seq.max(*seq);
                    }
                }
                state.drained = matches!(ev, JournalEvent::Drained { .. });
            }
            Err(_) => {
                state.skipped += 1;
                state.drained = false;
            }
        }
    }
    if !header_seen {
        return Err(fail(format!(
            "journal does not start with a version-{JOURNAL_VERSION} header line"
        )));
    }
    Ok(state)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("ccs-serve-journal-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn events_round_trip_through_the_file() {
        let path = tmp("roundtrip");
        let journal = Journal::create(&path, "127.0.0.1:0", 4, 256).unwrap();
        journal.append(JournalEvent::Admitted {
            seq: 0,
            id: 7,
            cells: 3,
            cached: 1,
        });
        journal.append(JournalEvent::CellDone {
            seq: 0,
            key: "vpr/s1/n2000/4x2w/Focused/abc".into(),
            status: "ok".into(),
            attempts: 1,
            cycles: 4321,
            cpi_bits: 0x3ff4_0000_0000_0000,
            digest: 0xdead_beef,
            error: None,
        });
        journal.append(JournalEvent::ApproxServed {
            seq: 0,
            key: "vpr/s1/n2000/4x2w/Focused/def".into(),
        });
        journal.append(JournalEvent::DrainRequested { seq: 0, pending: 2 });
        journal.append(JournalEvent::Drained { seq: 0 });
        let (events, skipped) = load_journal(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(skipped, 0);
        assert_eq!(events.len(), 6);
        assert!(matches!(
            events[0],
            JournalEvent::Started { workers: 4, queue_capacity: 256, .. }
        ));
        // Sequence numbers are stamped by the journal, in order.
        assert!(matches!(events[1], JournalEvent::Admitted { seq: 1, id: 7, cells: 3, cached: 1 }));
        assert!(matches!(
            &events[2],
            JournalEvent::CellDone { seq: 2, cycles: 4321, digest: 0xdead_beef, error: None, .. }
        ));
        assert!(matches!(events[3], JournalEvent::ApproxServed { seq: 3, .. }));
        assert!(matches!(events[5], JournalEvent::Drained { seq: 5 }));
    }

    fn done(key: &str, status: &str, cycles: u64) -> JournalEvent {
        JournalEvent::CellDone {
            seq: 0,
            key: key.into(),
            status: status.into(),
            attempts: 1,
            cycles,
            cpi_bits: cycles.wrapping_mul(3),
            digest: cycles.wrapping_mul(7),
            error: (status != "ok").then(|| "sim: deadlock".to_string()),
        }
    }

    #[test]
    fn replay_rebuilds_records_last_write_wins() {
        let path = tmp("replay");
        {
            let journal = Journal::create(&path, "addr", 2, 64).unwrap();
            journal.append(JournalEvent::Admitted {
                seq: 0,
                id: 1,
                cells: 4,
                cached: 1,
            });
            journal.append(done("cell/a", "ok", 100));
            journal.append(done("cell/b", "TIMEOUT", 0));
            // The same key finishing again (e.g. resubmitted after an
            // eviction) must supersede the earlier line.
            journal.append(done("cell/a", "ok", 100));
            journal.append(done("cell/b", "ok", 200));
        }
        let state = replay_journal(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(state.admitted, 4);
        assert_eq!(state.cached, 1);
        assert_eq!(state.done, 4);
        assert_eq!(state.skipped, 0);
        assert!(!state.drained, "no drained marker ⇒ crash semantics");
        assert_eq!(state.records.len(), 2, "two distinct keys");
        assert_eq!(state.records[0].key, "cell/a");
        assert_eq!(state.records[1].key, "cell/b");
        assert_eq!(state.records[1].status, "ok", "last write wins");
        assert_eq!(state.records[1].cycles, 200);
        assert_eq!(state.lost_in_flight(), 0, "4 admitted = 1 cached + 3 unique done + 1 dup");
    }

    #[test]
    fn replay_tolerates_a_torn_tail_and_counts_losses() {
        let path = tmp("replay-torn");
        {
            let journal = Journal::create(&path, "addr", 1, 8).unwrap();
            journal.append(JournalEvent::Admitted {
                seq: 0,
                id: 9,
                cells: 3,
                cached: 0,
            });
            journal.append(done("cell/x", "ok", 42));
        }
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"event\":\"cell_done\",\"seq\":3,\"key\":\"cell/y\",\"sta").unwrap();
        drop(f);
        let state = replay_journal(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(state.records.len(), 1);
        assert_eq!(state.skipped, 1, "the torn line is skipped, not fatal");
        assert_eq!(state.lost_in_flight(), 2, "cell/y (torn) and the never-finished third cell");
    }

    #[test]
    fn replay_rejects_wrong_version_and_headerless_files_loudly() {
        let path = tmp("replay-v1");
        std::fs::write(
            &path,
            "{\"event\":\"started\",\"journal\":1,\"addr\":\"a\",\"workers\":1,\
             \"queue_capacity\":8}\n",
        )
        .unwrap();
        let err = replay_journal(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(
            err.to_string().contains("version 1"),
            "must name the offending version: {err}"
        );

        let path = tmp("replay-headerless");
        std::fs::write(&path, "{\"event\":\"drained\",\"seq\":4}\n").unwrap();
        let err = replay_journal(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(err.to_string().contains("header"), "{err}");
    }

    #[test]
    fn recover_appends_without_truncating_and_resumes_seq() {
        let path = tmp("recover");
        {
            let journal = Journal::create(&path, "addr", 2, 64).unwrap();
            journal.append(done("cell/a", "ok", 7));
        }
        let (journal, state) = Journal::recover(&path, "addr", 2, 64).unwrap();
        assert_eq!(state.records.len(), 1);
        journal.append(done("cell/b", "ok", 8));
        drop(journal);
        let (events, skipped) = load_journal(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(skipped, 0);
        // started, cell_done, recovered, cell_done — history intact.
        assert_eq!(events.len(), 4);
        assert!(matches!(
            events[2],
            JournalEvent::Recovered { seq: 2, replayed: 1, skipped: 0 }
        ));
        assert!(matches!(events[3], JournalEvent::CellDone { seq: 3, .. }));
    }

    #[test]
    fn recover_of_a_missing_journal_is_a_fresh_start() {
        let path = tmp("recover-fresh");
        std::fs::remove_file(&path).ok();
        let (journal, state) = Journal::recover(&path, "addr", 1, 8).unwrap();
        assert!(state.records.is_empty());
        drop(journal);
        let (events, _) = load_journal(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(matches!(events[0], JournalEvent::Started { .. }));
    }

    #[test]
    fn torn_trailing_line_is_skipped_not_fatal() {
        let path = tmp("torn");
        {
            let journal = Journal::create(&path, "addr", 1, 8).unwrap();
            journal.append(JournalEvent::Admitted {
                seq: 0,
                id: 1,
                cells: 1,
                cached: 0,
            });
        }
        // Simulate a kill mid-write: append half a line.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"event\":\"cell_done\",\"seq\":2,\"ke").unwrap();
        drop(f);
        let (events, skipped) = load_journal(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(events.len(), 2);
        assert_eq!(skipped, 1);
    }
}
