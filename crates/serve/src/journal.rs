//! Append-only request journal.
//!
//! One JSONL line per event, flushed line-by-line so a killed daemon
//! leaves at most one torn trailing line — which the loader skips by
//! construction (every parse is per-line and a torn line simply fails
//! to parse). The journal answers "what did the daemon admit and
//! finish" after the fact; it is written outside any hot path (one line
//! per submission and one per finished cell, not per cycle).

use crate::json;
use ccs_core::CcsError;
use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, PoisonError};

/// Journal format version, recorded in the header line.
pub const JOURNAL_VERSION: u64 = 1;

/// One journal event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalEvent {
    /// The daemon started (always the first line).
    Started {
        /// Listen address.
        addr: String,
        /// Worker threads.
        workers: u64,
        /// Admission-queue capacity.
        queue_capacity: u64,
    },
    /// A submission was admitted.
    Admitted {
        /// Monotonic sequence number.
        seq: u64,
        /// Client-chosen submission id.
        id: u64,
        /// Cells in the submission.
        cells: u64,
        /// Of which answered straight from cache.
        cached: u64,
    },
    /// A submission was rejected (busy or draining).
    RejectedEvent {
        /// Monotonic sequence number.
        seq: u64,
        /// Client-chosen submission id.
        id: u64,
        /// Why (`busy` or `draining`).
        reason: String,
    },
    /// An approximate submission was answered with an analytic envelope
    /// (cache miss on an `approx` request; no evaluation happened).
    ApproxServed {
        /// Monotonic sequence number.
        seq: u64,
        /// The cell's key.
        key: String,
    },
    /// A cell finished evaluating.
    CellDone {
        /// Monotonic sequence number.
        seq: u64,
        /// The cell's key.
        key: String,
        /// `ok`, `FAILED`, or `TIMEOUT`.
        status: String,
    },
    /// Drain was requested.
    DrainRequested {
        /// Monotonic sequence number.
        seq: u64,
        /// Cells still in flight at the request.
        pending: u64,
    },
    /// The daemon finished draining and is exiting.
    Drained {
        /// Monotonic sequence number.
        seq: u64,
    },
}

impl JournalEvent {
    fn encode(&self) -> String {
        let mut out = String::with_capacity(64);
        match self {
            JournalEvent::Started {
                addr,
                workers,
                queue_capacity,
            } => {
                let _ = write!(
                    out,
                    "{{\"event\":\"started\",\"journal\":{JOURNAL_VERSION},\"addr\":{},\
                     \"workers\":{workers},\"queue_capacity\":{queue_capacity}}}",
                    json::quoted(addr),
                );
            }
            JournalEvent::Admitted {
                seq,
                id,
                cells,
                cached,
            } => {
                let _ = write!(
                    out,
                    "{{\"event\":\"admitted\",\"seq\":{seq},\"id\":{id},\
                     \"cells\":{cells},\"cached\":{cached}}}",
                );
            }
            JournalEvent::RejectedEvent { seq, id, reason } => {
                let _ = write!(
                    out,
                    "{{\"event\":\"rejected\",\"seq\":{seq},\"id\":{id},\"reason\":{}}}",
                    json::quoted(reason),
                );
            }
            JournalEvent::ApproxServed { seq, key } => {
                let _ = write!(
                    out,
                    "{{\"event\":\"approx\",\"seq\":{seq},\"key\":{}}}",
                    json::quoted(key),
                );
            }
            JournalEvent::CellDone { seq, key, status } => {
                let _ = write!(
                    out,
                    "{{\"event\":\"cell_done\",\"seq\":{seq},\"key\":{},\"status\":{}}}",
                    json::quoted(key),
                    json::quoted(status),
                );
            }
            JournalEvent::DrainRequested { seq, pending } => {
                let _ = write!(
                    out,
                    "{{\"event\":\"drain_requested\",\"seq\":{seq},\"pending\":{pending}}}",
                );
            }
            JournalEvent::Drained { seq } => {
                let _ = write!(out, "{{\"event\":\"drained\",\"seq\":{seq}}}");
            }
        }
        out
    }

    /// Parses one journal line.
    ///
    /// # Errors
    ///
    /// [`CcsError::Protocol`] for unknown or incomplete lines (a torn
    /// trailing line from a killed daemon lands here).
    pub fn decode(line: &str) -> Result<JournalEvent, CcsError> {
        let bad = |what: &str| CcsError::Protocol {
            message: format!("journal line {what}: {line:?}"),
        };
        let event = json::str_field(line, "event").ok_or_else(|| bad("missing event"))?;
        let num = |name: &str| json::u64_field(line, name).ok_or_else(|| bad("missing field"));
        match event.as_str() {
            "started" => Ok(JournalEvent::Started {
                addr: json::str_field(line, "addr").ok_or_else(|| bad("missing addr"))?,
                workers: num("workers")?,
                queue_capacity: num("queue_capacity")?,
            }),
            "admitted" => Ok(JournalEvent::Admitted {
                seq: num("seq")?,
                id: num("id")?,
                cells: num("cells")?,
                cached: num("cached")?,
            }),
            "rejected" => Ok(JournalEvent::RejectedEvent {
                seq: num("seq")?,
                id: num("id")?,
                reason: json::str_field(line, "reason").ok_or_else(|| bad("missing reason"))?,
            }),
            "approx" => Ok(JournalEvent::ApproxServed {
                seq: num("seq")?,
                key: json::str_field(line, "key").ok_or_else(|| bad("missing key"))?,
            }),
            "cell_done" => Ok(JournalEvent::CellDone {
                seq: num("seq")?,
                key: json::str_field(line, "key").ok_or_else(|| bad("missing key"))?,
                status: json::str_field(line, "status").ok_or_else(|| bad("missing status"))?,
            }),
            "drain_requested" => Ok(JournalEvent::DrainRequested {
                seq: num("seq")?,
                pending: num("pending")?,
            }),
            "drained" => Ok(JournalEvent::Drained { seq: num("seq")? }),
            _ => Err(bad("unknown event")),
        }
    }
}

/// The daemon's append-only journal writer.
pub struct Journal {
    inner: Mutex<JournalInner>,
    path: PathBuf,
}

struct JournalInner {
    file: File,
    seq: u64,
}

impl Journal {
    /// Creates (truncating) the journal at `path` and writes the header
    /// line.
    ///
    /// # Errors
    ///
    /// [`CcsError::Checkpoint`] when the file cannot be created or
    /// written.
    pub fn create(
        path: impl Into<PathBuf>,
        addr: &str,
        workers: usize,
        queue_capacity: usize,
    ) -> Result<Journal, CcsError> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(|e| CcsError::Checkpoint {
                    path: parent.display().to_string(),
                    message: e.to_string(),
                })?;
            }
        }
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&path)
            .map_err(|e| CcsError::Checkpoint {
                path: path.display().to_string(),
                message: e.to_string(),
            })?;
        let journal = Journal {
            inner: Mutex::new(JournalInner { file, seq: 0 }),
            path,
        };
        journal.append(JournalEvent::Started {
            addr: addr.to_string(),
            workers: workers as u64,
            queue_capacity: queue_capacity as u64,
        });
        Ok(journal)
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The next sequence number (what the next event will carry).
    pub fn next_seq(&self) -> u64 {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner).seq
    }

    /// Appends one event, stamping its sequence number, and flushes the
    /// line. Write failures are swallowed: the journal is an audit
    /// trail, and a full disk must not take the daemon down with it.
    pub fn append(&self, mut event: JournalEvent) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let seq = inner.seq;
        inner.seq += 1;
        match &mut event {
            JournalEvent::Started { .. } => {}
            JournalEvent::Admitted { seq: s, .. }
            | JournalEvent::RejectedEvent { seq: s, .. }
            | JournalEvent::ApproxServed { seq: s, .. }
            | JournalEvent::CellDone { seq: s, .. }
            | JournalEvent::DrainRequested { seq: s, .. }
            | JournalEvent::Drained { seq: s } => *s = seq,
        }
        let mut line = event.encode();
        line.push('\n');
        let _ = inner.file.write_all(line.as_bytes());
        let _ = inner.file.flush();
    }
}

/// Loads every parseable event from a journal file, skipping (and
/// counting) torn or foreign lines.
///
/// # Errors
///
/// [`CcsError::Checkpoint`] when the file cannot be read at all.
pub fn load_journal(path: &Path) -> Result<(Vec<JournalEvent>, usize), CcsError> {
    let file = File::open(path).map_err(|e| CcsError::Checkpoint {
        path: path.display().to_string(),
        message: e.to_string(),
    })?;
    let mut events = Vec::new();
    let mut skipped = 0usize;
    for line in BufReader::new(file).lines() {
        let line = line.map_err(|e| CcsError::Checkpoint {
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
        if line.trim().is_empty() {
            continue;
        }
        match JournalEvent::decode(&line) {
            Ok(ev) => events.push(ev),
            Err(_) => skipped += 1,
        }
    }
    Ok((events, skipped))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("ccs-serve-journal-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn events_round_trip_through_the_file() {
        let path = tmp("roundtrip");
        let journal = Journal::create(&path, "127.0.0.1:0", 4, 256).unwrap();
        journal.append(JournalEvent::Admitted {
            seq: 0,
            id: 7,
            cells: 3,
            cached: 1,
        });
        journal.append(JournalEvent::CellDone {
            seq: 0,
            key: "vpr/s1/n2000/4x2w/Focused/abc".into(),
            status: "ok".into(),
        });
        journal.append(JournalEvent::ApproxServed {
            seq: 0,
            key: "vpr/s1/n2000/4x2w/Focused/def".into(),
        });
        journal.append(JournalEvent::DrainRequested { seq: 0, pending: 2 });
        journal.append(JournalEvent::Drained { seq: 0 });
        let (events, skipped) = load_journal(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(skipped, 0);
        assert_eq!(events.len(), 6);
        assert!(matches!(
            events[0],
            JournalEvent::Started { workers: 4, queue_capacity: 256, .. }
        ));
        // Sequence numbers are stamped by the journal, in order.
        assert!(matches!(events[1], JournalEvent::Admitted { seq: 1, id: 7, cells: 3, cached: 1 }));
        assert!(matches!(events[3], JournalEvent::ApproxServed { seq: 3, .. }));
        assert!(matches!(events[5], JournalEvent::Drained { seq: 5 }));
    }

    #[test]
    fn torn_trailing_line_is_skipped_not_fatal() {
        let path = tmp("torn");
        {
            let journal = Journal::create(&path, "addr", 1, 8).unwrap();
            journal.append(JournalEvent::Admitted {
                seq: 0,
                id: 1,
                cells: 1,
                cached: 0,
            });
        }
        // Simulate a kill mid-write: append half a line.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"event\":\"cell_done\",\"seq\":2,\"ke").unwrap();
        drop(f);
        let (events, skipped) = load_journal(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(events.len(), 2);
        assert_eq!(skipped, 1);
    }
}
