//! The versioned request/response vocabulary of the serve protocol.
//!
//! Every frame is a flat JSON object (see [`crate::wire`] for the
//! length-prefixed framing). Requests carry the protocol version in a
//! `"v"` field; the daemon rejects mismatched versions with a typed
//! error instead of guessing. Field names are unique across nesting
//! levels within each payload shape — a requirement of the scanner-style
//! JSON helpers in [`crate::json`].
//!
//! The cell vocabulary ([`WireCellSpec`]) deliberately covers the
//! *paper-grid surface*: the MICRO-05 baseline machine under any
//! [`ClusterLayout`], any named [`PolicyKind`], and the run options that
//! feed the checkpoint fingerprint (epochs, run seed, checked mode,
//! cycle budget). Ablation cells with custom policy configurations are
//! batch-binary territory and are refused at encode time rather than
//! silently mis-keyed.
//!
//! Scenario cells (the `ccs-scenario` DSL) travel as an extra optional
//! `"scenario"` field carrying the canonical manifest text; the `bench`
//! field then holds the marker `scenario:<name>`, which is not a valid
//! benchmark name, so a daemon predating the field rejects the cell
//! loudly instead of silently simulating the placeholder benchmark.
//! Decoding is tolerant (an absent field is a plain benchmark cell), so
//! the protocol stays at version 1.

use crate::json;
use ccs_core::checkpoint::CheckpointRecord;
use ccs_core::{CcsError, CellSpec, PolicyKind, RunOptions};
use ccs_isa::{ClusterLayout, MachineConfig};
use ccs_trace::Benchmark;
use std::fmt::Write as _;

/// Version of the frame vocabulary. Bump on any incompatible change;
/// the daemon refuses other versions with a typed error.
pub const PROTOCOL_VERSION: u64 = 1;

/// Upper bound on a frame's payload length. A length prefix above this
/// is rejected *before* any payload allocation, so a hostile or
/// corrupted 4-byte prefix cannot make the daemon reserve gigabytes.
pub const MAX_FRAME_LEN: usize = 1 << 20;

/// Frame-kind indices into
/// [`ccs_obs::SERVE_FRAME_KINDS`](ccs_obs::SERVE_FRAME_KINDS).
pub mod frame_kind {
    /// `submit_cell` request.
    pub const SUBMIT_CELL: usize = 0;
    /// `submit_grid` request.
    pub const SUBMIT_GRID: usize = 1;
    /// `status` request.
    pub const STATUS: usize = 2;
    /// `metrics` request.
    pub const METRICS: usize = 3;
    /// `drain` request.
    pub const DRAIN: usize = 4;
    /// `cache_lookup` request (shard-to-shard cache peering).
    pub const CACHE_LOOKUP: usize = 5;
}

/// Everything that can go wrong at the protocol layer.
#[derive(Debug)]
pub enum ServeError {
    /// Transport failure.
    Io(std::io::Error),
    /// The peer closed the connection cleanly between frames.
    Closed,
    /// The byte stream is not a valid frame (bad magic, truncated
    /// header or payload). The stream cannot be resynchronized.
    Frame {
        /// What was wrong.
        message: String,
    },
    /// A frame's length prefix exceeded [`MAX_FRAME_LEN`]; rejected
    /// before allocation.
    Oversized {
        /// The declared payload length.
        declared: u64,
        /// The enforced limit.
        limit: usize,
    },
    /// A well-framed payload failed to parse (malformed JSON, unknown
    /// type, missing field, version mismatch). The stream itself is
    /// still framed; the connection can continue.
    Malformed {
        /// What was wrong.
        message: String,
    },
    /// The server replied `busy` (admission backpressure).
    Busy {
        /// The server's advisory backoff.
        retry_after_ms: u64,
    },
    /// The server refused the request (draining, or a server-side
    /// parse failure).
    Rejected {
        /// The server's reason.
        reason: String,
    },
    /// An I/O deadline expired: the peer stopped mid-frame, a reply
    /// never arrived, or a connect hung.
    Timeout {
        /// What was being waited for.
        what: String,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "io: {e}"),
            ServeError::Closed => write!(f, "connection closed"),
            ServeError::Frame { message } => write!(f, "bad frame: {message}"),
            ServeError::Oversized { declared, limit } => {
                write!(f, "frame length {declared} exceeds limit {limit}")
            }
            ServeError::Malformed { message } => write!(f, "malformed payload: {message}"),
            ServeError::Busy { retry_after_ms } => {
                write!(f, "server busy (retry after {retry_after_ms} ms)")
            }
            ServeError::Rejected { reason } => write!(f, "rejected: {reason}"),
            ServeError::Timeout { what } => write!(f, "timeout: {what}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<ServeError> for CcsError {
    fn from(e: ServeError) -> Self {
        match e {
            ServeError::Busy { retry_after_ms } => CcsError::Rejected {
                reason: "server busy".into(),
                retry_after_ms: Some(retry_after_ms),
            },
            ServeError::Rejected { reason } => CcsError::Rejected {
                reason,
                retry_after_ms: None,
            },
            ServeError::Timeout { what } => CcsError::Timeout { what },
            other => CcsError::Protocol {
                message: other.to_string(),
            },
        }
    }
}

impl ServeError {
    /// Whether the framing of the stream survived this error (the
    /// connection may keep serving further frames).
    pub fn is_recoverable(&self) -> bool {
        matches!(self, ServeError::Malformed { .. })
    }
}

/// A [`Duration`](std::time::Duration) in whole milliseconds, saturating
/// at `u64::MAX` instead of silently truncating the `u128`.
///
/// `as_millis` returns `u128`; a bare `as u64` cast wraps for durations
/// past ~585 million years. No sane latency gets there, but a
/// `Duration::MAX` sentinel (or arithmetic on one) does, and a wrapped
/// retry hint of 0 ms would turn a "back off forever" signal into a
/// busy-loop invitation.
pub fn saturating_millis(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_millis()).unwrap_or(u64::MAX)
}

/// A [`Duration`](std::time::Duration) in whole nanoseconds, saturating
/// at `u64::MAX` instead of silently truncating the `u128`.
pub fn saturating_nanos(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// The named policies reachable over the wire, in ladder order, with
/// the two dynamic policies of the adaptive tier appended.
pub const WIRE_POLICIES: [PolicyKind; 7] = [
    PolicyKind::Dependence,
    PolicyKind::Focused,
    PolicyKind::FocusedLoc,
    PolicyKind::StallOverSteer,
    PolicyKind::Proactive,
    PolicyKind::Adaptive,
    PolicyKind::IneffSteer,
];

fn parse_benchmark(name: &str) -> Result<Benchmark, ServeError> {
    Benchmark::ALL
        .into_iter()
        .find(|b| b.name() == name)
        .ok_or_else(|| ServeError::Malformed {
            message: format!("unknown benchmark {name:?}"),
        })
}

fn parse_layout(name: &str) -> Result<ClusterLayout, ServeError> {
    ClusterLayout::ALL
        .into_iter()
        .find(|l| l.name() == name)
        .ok_or_else(|| ServeError::Malformed {
            message: format!("unknown layout {name:?}"),
        })
}

fn parse_policy(name: &str) -> Result<PolicyKind, ServeError> {
    WIRE_POLICIES
        .into_iter()
        .find(|p| p.name() == name)
        .ok_or_else(|| ServeError::Malformed {
            message: format!("unknown policy {name:?}"),
        })
}

/// One experiment cell as named over the wire.
///
/// Deliberately *names* axes instead of serializing the full
/// [`MachineConfig`]: the server reconstructs
/// `MachineConfig::micro05_baseline().with_layout(layout)` exactly as
/// the batch harness does, so a wire submission and an in-process
/// [`run_grid`](ccs_core::run_grid) of the same axes build identical
/// [`CellSpec`]s — which is what makes the round-trip determinism test
/// possible at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireCellSpec {
    /// Benchmark name ([`Benchmark::name`]).
    pub bench: String,
    /// Workload sample seed.
    pub sample_seed: u64,
    /// Dynamic instructions in the trace.
    pub len: usize,
    /// Cluster layout name ([`ClusterLayout::name`]).
    pub layout: String,
    /// Policy name ([`PolicyKind::name`]).
    pub policy: String,
    /// Training + measurement epochs.
    pub epochs: u32,
    /// Probabilistic-counter seed ([`RunOptions::seed`]).
    pub run_seed: u64,
    /// Checked (invariant-audited) simulation.
    pub checked: bool,
    /// Deterministic per-epoch cycle budget.
    pub cycle_budget: Option<u64>,
    /// Canonical scenario manifest text, for cells whose workload is a
    /// `ccs-scenario` source instead of a named benchmark. When set,
    /// `bench` holds the `scenario:<name>` marker and is never parsed
    /// as a benchmark.
    pub scenario: Option<String>,
}

impl WireCellSpec {
    /// Names a paper-grid cell with default run options.
    pub fn new(
        bench: Benchmark,
        sample_seed: u64,
        len: usize,
        layout: ClusterLayout,
        policy: PolicyKind,
    ) -> Self {
        let defaults = RunOptions::default();
        WireCellSpec {
            bench: bench.name().to_string(),
            sample_seed,
            len,
            layout: layout.name().to_string(),
            policy: policy.name().to_string(),
            epochs: defaults.epochs,
            run_seed: defaults.seed,
            checked: defaults.checked,
            cycle_budget: defaults.cycle_budget,
            scenario: None,
        }
    }

    /// Names a scenario cell with default run options. The scenario is
    /// carried as its canonical manifest text, so the receiving daemon
    /// registers the bit-identical source (same [`SourceId`], same
    /// cache key) that an in-process run would use.
    ///
    /// [`SourceId`]: ccs_trace::SourceId
    pub fn for_scenario(
        scenario: &ccs_scenario::Scenario,
        sample_seed: u64,
        len: usize,
        layout: ClusterLayout,
        policy: PolicyKind,
    ) -> Self {
        let defaults = RunOptions::default();
        WireCellSpec {
            bench: format!("scenario:{}", scenario.name),
            sample_seed,
            len,
            layout: layout.name().to_string(),
            policy: policy.name().to_string(),
            epochs: defaults.epochs,
            run_seed: defaults.seed,
            checked: defaults.checked,
            cycle_budget: defaults.cycle_budget,
            scenario: Some(scenario.to_manifest()),
        }
    }

    /// The same cell with a different epoch count.
    #[must_use]
    pub fn with_epochs(mut self, epochs: u32) -> Self {
        self.epochs = epochs;
        self
    }

    /// The same cell with a cycle budget.
    #[must_use]
    pub fn with_cycle_budget(mut self, budget: u64) -> Self {
        self.cycle_budget = Some(budget);
        self
    }

    /// Projects an in-process [`CellSpec`] onto the wire vocabulary.
    ///
    /// # Errors
    ///
    /// [`ServeError::Malformed`] when the spec is off the wire surface:
    /// a custom policy configuration, a non-default LoC mode or
    /// training source, or a machine that is not the MICRO-05 baseline
    /// under its layout. Refusing is deliberate — a lossy projection
    /// would collide cache keys.
    pub fn from_cell(spec: &CellSpec) -> Result<Self, ServeError> {
        if spec.policy_config.is_some() {
            return Err(ServeError::Malformed {
                message: "custom policy configurations are not wire-addressable".into(),
            });
        }
        let defaults = RunOptions::default();
        if spec.options.loc_mode != defaults.loc_mode || spec.options.training != defaults.training
        {
            return Err(ServeError::Malformed {
                message: "non-default loc_mode/training are not wire-addressable".into(),
            });
        }
        let canonical = MachineConfig::micro05_baseline().with_layout(spec.config.layout);
        if spec.config != canonical {
            return Err(ServeError::Malformed {
                message: "only micro05_baseline machines are wire-addressable".into(),
            });
        }
        // Scenario cells re-emit the canonical manifest from the
        // registry, so a remote daemon re-registers the identical
        // content-addressed source.
        let (bench, scenario) = match spec.scenario {
            None => (spec.benchmark.name().to_string(), None),
            Some(id) => {
                let registry = ccs_trace::SourceRegistry::global();
                let manifest = registry.manifest(id).ok_or_else(|| ServeError::Malformed {
                    message: format!("scenario source {id} is not registered in this process"),
                })?;
                let name = registry.name(id).unwrap_or_else(|| "unnamed".into());
                (format!("scenario:{name}"), Some(manifest.to_string()))
            }
        };
        Ok(WireCellSpec {
            bench,
            sample_seed: spec.sample_seed,
            len: spec.len,
            layout: spec.config.layout.name().to_string(),
            policy: spec.policy.name().to_string(),
            epochs: spec.options.epochs,
            run_seed: spec.options.seed,
            checked: spec.options.checked,
            cycle_budget: spec.options.cycle_budget,
            scenario,
        })
    }

    /// Reconstructs the [`CellSpec`] this wire cell names. Metrics are
    /// always off server-side (they are write-only observers excluded
    /// from [`cell_key`](ccs_core::cell_key), so a client could not
    /// observe them anyway).
    ///
    /// # Errors
    ///
    /// [`ServeError::Malformed`] for unknown benchmark/layout/policy
    /// names, or a scenario manifest the DSL rejects.
    pub fn to_cell(&self) -> Result<CellSpec, ServeError> {
        let layout = parse_layout(&self.layout)?;
        let policy = parse_policy(&self.policy)?;
        let mut options = RunOptions::default()
            .with_epochs(self.epochs)
            .with_checked(self.checked);
        options.seed = self.run_seed;
        if let Some(budget) = self.cycle_budget {
            options = options.with_cycle_budget(budget);
        }
        let config = MachineConfig::micro05_baseline().with_layout(layout);
        if let Some(manifest) = &self.scenario {
            // Registration is content-addressed and idempotent, so
            // repeated submissions of the same scenario are free and
            // resolve to the same cache key.
            let (_, id) =
                ccs_scenario::register_manifest(manifest).map_err(|e| ServeError::Malformed {
                    message: format!("bad scenario manifest: {e}"),
                })?;
            return Ok(CellSpec::for_scenario(
                config,
                id,
                self.sample_seed,
                self.len,
                policy,
                options,
            ));
        }
        let bench = parse_benchmark(&self.bench)?;
        Ok(CellSpec::new(
            config,
            bench,
            self.sample_seed,
            self.len,
            policy,
            options,
        ))
    }

    fn encode_into(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"bench\":{},\"sample_seed\":{},\"len\":{},\"layout\":{},\"policy\":{},\
             \"epochs\":{},\"run_seed\":{},\"checked\":{}",
            json::quoted(&self.bench),
            self.sample_seed,
            self.len,
            json::quoted(&self.layout),
            json::quoted(&self.policy),
            self.epochs,
            self.run_seed,
            self.checked,
        );
        match self.cycle_budget {
            None => out.push_str(",\"cycle_budget\":null"),
            Some(b) => {
                let _ = write!(out, ",\"cycle_budget\":{b}");
            }
        }
        // Omitted entirely for benchmark cells, so their encoding is
        // byte-identical to what pre-scenario builds produced.
        if let Some(manifest) = &self.scenario {
            let _ = write!(out, ",\"scenario\":{}", json::quoted(manifest));
        }
        out.push('}');
    }

    fn decode(obj: &str) -> Result<Self, ServeError> {
        let field = |name: &str| {
            json::str_field(obj, name).ok_or_else(|| ServeError::Malformed {
                message: format!("cell missing string field {name:?}"),
            })
        };
        let num = |name: &str| {
            json::u64_field(obj, name).ok_or_else(|| ServeError::Malformed {
                message: format!("cell missing numeric field {name:?}"),
            })
        };
        Ok(WireCellSpec {
            bench: field("bench")?,
            sample_seed: num("sample_seed")?,
            len: num("len")? as usize,
            layout: field("layout")?,
            policy: field("policy")?,
            epochs: u32::try_from(num("epochs")?).unwrap_or(u32::MAX),
            run_seed: num("run_seed")?,
            checked: json::bool_field(obj, "checked").ok_or_else(|| ServeError::Malformed {
                message: "cell missing bool field \"checked\"".into(),
            })?,
            cycle_budget: json::opt_u64_field(obj, "cycle_budget").ok_or_else(|| {
                ServeError::Malformed {
                    message: "cell missing field \"cycle_budget\"".into(),
                }
            })?,
            // Tolerant: absent (or null, from a cautious peer) reads as
            // a plain benchmark cell, keeping the protocol at v1.
            scenario: json::opt_str_field(obj, "scenario").flatten(),
        })
    }
}

/// A request frame, client → server.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Evaluate one cell.
    SubmitCell {
        /// Client-chosen submission id, echoed in every reply.
        id: u64,
        /// Opt in to an approximate answer: on a cache miss the daemon
        /// replies immediately with the cell's analytic
        /// [`Response::Approx`] envelope instead of simulating. A cache
        /// *hit* still returns the exact [`Response::Cell`] record — an
        /// exact answer is strictly better and costs nothing. Decoded
        /// tolerantly (absent reads as `false`), so version-1 clients
        /// that never send the field are unaffected.
        approx: bool,
        /// The cell.
        cell: WireCellSpec,
    },
    /// Evaluate a grid of cells.
    SubmitGrid {
        /// Client-chosen submission id, echoed in every reply.
        id: u64,
        /// The cells, in client index order.
        cells: Vec<WireCellSpec>,
    },
    /// Queue/cache/drain state.
    Status,
    /// Full server-side counters.
    Metrics,
    /// Stop admitting, finish in-flight work, then exit cleanly.
    Drain,
    /// Shard-to-shard cache peering: answer from the *local* result
    /// cache only — a hit is a [`Response::Cell`], a miss is a
    /// [`Response::NotFound`]. Never enqueues work and never consults
    /// the asking shard's own peers, so lookups cannot recurse.
    CacheLookup {
        /// The cell's [`cell_key`](ccs_core::cell_key).
        key: String,
    },
}

impl Request {
    /// The frame-kind index for metrics attribution.
    pub fn kind(&self) -> usize {
        match self {
            Request::SubmitCell { .. } => frame_kind::SUBMIT_CELL,
            Request::SubmitGrid { .. } => frame_kind::SUBMIT_GRID,
            Request::Status => frame_kind::STATUS,
            Request::Metrics => frame_kind::METRICS,
            Request::Drain => frame_kind::DRAIN,
            Request::CacheLookup { .. } => frame_kind::CACHE_LOOKUP,
        }
    }

    /// Renders the request as a frame payload.
    pub fn encode(&self) -> String {
        let mut out = String::with_capacity(64);
        let _ = write!(out, "{{\"v\":{PROTOCOL_VERSION},\"type\":");
        match self {
            Request::SubmitCell { id, approx, cell } => {
                // `approx` is written before the "cell" tag so the
                // tag-scan decode of the nested object stays valid.
                let _ = write!(out, "\"submit_cell\",\"id\":{id},\"approx\":{approx},\"cell\":");
                cell.encode_into(&mut out);
                out.push('}');
            }
            Request::SubmitGrid { id, cells } => {
                let _ = write!(out, "\"submit_grid\",\"id\":{id},\"cells\":[");
                for (i, cell) in cells.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    cell.encode_into(&mut out);
                }
                out.push_str("]}");
            }
            Request::Status => out.push_str("\"status\"}"),
            Request::Metrics => out.push_str("\"metrics\"}"),
            Request::Drain => out.push_str("\"drain\"}"),
            Request::CacheLookup { key } => {
                let _ = write!(out, "\"cache_lookup\",\"key\":{}}}", json::quoted(key));
            }
        }
        out
    }

    /// Parses a frame payload.
    ///
    /// # Errors
    ///
    /// [`ServeError::Malformed`] for anything that is not a versioned,
    /// known request object.
    pub fn decode(payload: &str) -> Result<Request, ServeError> {
        let payload = payload.trim();
        if !payload.starts_with('{') || !payload.ends_with('}') {
            return Err(ServeError::Malformed {
                message: "payload is not a JSON object".into(),
            });
        }
        let v = json::u64_field(payload, "v").ok_or_else(|| ServeError::Malformed {
            message: "missing protocol version field \"v\"".into(),
        })?;
        if v != PROTOCOL_VERSION {
            return Err(ServeError::Malformed {
                message: format!("protocol version {v} unsupported (this build speaks {PROTOCOL_VERSION})"),
            });
        }
        let ty = json::str_field(payload, "type").ok_or_else(|| ServeError::Malformed {
            message: "missing field \"type\"".into(),
        })?;
        match ty.as_str() {
            "submit_cell" => {
                let id = json::u64_field(payload, "id").ok_or_else(|| ServeError::Malformed {
                    message: "submit_cell missing \"id\"".into(),
                })?;
                // Reuse the array splitter on the single nested object
                // by scanning from the "cell" tag to the payload end.
                let tag = "\"cell\":{";
                let start = payload.find(tag).ok_or_else(|| ServeError::Malformed {
                    message: "submit_cell missing \"cell\" object".into(),
                })?;
                let cell = WireCellSpec::decode(&payload[start + tag.len() - 1..])?;
                // Tolerant: clients predating the approximate tier
                // never send the field; absent means exact.
                let approx = json::bool_field(&payload[..start], "approx").unwrap_or(false);
                Ok(Request::SubmitCell { id, approx, cell })
            }
            "submit_grid" => {
                let id = json::u64_field(payload, "id").ok_or_else(|| ServeError::Malformed {
                    message: "submit_grid missing \"id\"".into(),
                })?;
                let elements =
                    json::array_field(payload, "cells").ok_or_else(|| ServeError::Malformed {
                        message: "submit_grid missing or unbalanced \"cells\" array".into(),
                    })?;
                let cells = elements
                    .iter()
                    .map(|e| WireCellSpec::decode(e))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Request::SubmitGrid { id, cells })
            }
            "status" => Ok(Request::Status),
            "metrics" => Ok(Request::Metrics),
            "drain" => Ok(Request::Drain),
            "cache_lookup" => Ok(Request::CacheLookup {
                key: json::str_field(payload, "key").ok_or_else(|| ServeError::Malformed {
                    message: "cache_lookup missing \"key\"".into(),
                })?,
            }),
            other => Err(ServeError::Malformed {
                message: format!("unknown request type {other:?}"),
            }),
        }
    }
}

/// One finished cell as reported over the wire: the same digest fields
/// the checkpoint manifest records, plus cache attribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireCellRecord {
    /// Position of this cell in the submission.
    pub index: usize,
    /// The cell's [`cell_key`](ccs_core::cell_key).
    pub key: String,
    /// `ok`, `FAILED`, or `TIMEOUT`.
    pub status: String,
    /// Attempts spent on the cell.
    pub attempts: u32,
    /// Measured-epoch cycle count (0 for failed cells).
    pub cycles: u64,
    /// Bit pattern of the measured CPI (0 for failed cells).
    pub cpi_bits: u64,
    /// FNV-1a schedule digest (0 for failed cells).
    pub digest: u64,
    /// Whether the result came from the daemon's result cache.
    pub cached: bool,
    /// The error rendering for failed/timed-out cells.
    pub error: Option<String>,
}

impl WireCellRecord {
    /// Builds the wire record from a checkpoint digest.
    pub fn from_checkpoint(index: usize, rec: &CheckpointRecord, cached: bool) -> Self {
        WireCellRecord {
            index,
            key: rec.key.clone(),
            status: rec.status.clone(),
            attempts: rec.attempts,
            cycles: rec.cycles,
            cpi_bits: rec.cpi_bits,
            digest: rec.digest,
            cached,
            error: rec.error.clone(),
        }
    }

    /// Projects the wire record back onto a [`CheckpointRecord`] — the
    /// inverse of [`from_checkpoint`](Self::from_checkpoint) for every
    /// field that travels (`metrics_digest` and the predicted envelope
    /// do not; they come back [`None`]). Cache peering uses this to
    /// install a peer's answer into the local result cache.
    pub fn to_checkpoint(&self) -> CheckpointRecord {
        CheckpointRecord {
            key: self.key.clone(),
            status: self.status.clone(),
            attempts: self.attempts,
            cycles: self.cycles,
            cpi_bits: self.cpi_bits,
            digest: self.digest,
            metrics_digest: None,
            predicted_lo: None,
            predicted_hi: None,
            error: self.error.clone(),
        }
    }

    /// Whether the cell completed successfully.
    pub fn is_ok(&self) -> bool {
        self.status == "ok"
    }

    /// The measured CPI.
    pub fn cpi(&self) -> f64 {
        f64::from_bits(self.cpi_bits)
    }
}

/// A response frame, server → client.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// One finished cell of a submission (streamed in completion
    /// order).
    Cell {
        /// The submission id this cell belongs to.
        id: u64,
        /// The finished cell.
        record: WireCellRecord,
    },
    /// An approximate answer to an opt-in [`Request::SubmitCell`]: the
    /// cell's analytic `[cycles_lo, cycles_hi]` envelope and IPC
    /// ceiling (`ccs-predict`), computed from the trace and machine
    /// config without simulating. Never cached as a result — a later
    /// exact submission of the same cell simulates (and caches)
    /// normally.
    Approx {
        /// The submission id.
        id: u64,
        /// The cell's [`cell_key`](ccs_core::cell_key) — identical to
        /// the key an exact evaluation would record.
        key: String,
        /// Sound lower bound on the measured-epoch cycle count.
        cycles_lo: u64,
        /// Ceiling a successful run cannot exceed.
        cycles_hi: u64,
        /// Bit pattern of the IPC ceiling (exact float transport, like
        /// `cpi_bits`).
        ipc_hi_bits: u64,
        /// Confidence tag (`high` / `medium` / `low`).
        confidence: String,
    },
    /// A submission finished; tallies over its cells.
    GridDone {
        /// The submission id.
        id: u64,
        /// Cells in the submission.
        cells: usize,
        /// Cells that completed.
        ok: usize,
        /// Cells that failed.
        failed: usize,
        /// Cells that timed out.
        timed_out: usize,
        /// Cells served from the result cache.
        cached: usize,
    },
    /// Typed backpressure: nothing was admitted; retry after the hint.
    Busy {
        /// Advisory backoff in milliseconds.
        retry_after_ms: u64,
    },
    /// The request was refused (draining daemon, unparseable cell).
    Rejected {
        /// Why.
        reason: String,
    },
    /// Queue/cache/drain state.
    Status(StatusReply),
    /// Full server-side counters as a rendered JSON object.
    Metrics {
        /// The metrics object (JSON text).
        json: String,
    },
    /// Drain acknowledged; the daemon exits once `pending` reaches 0.
    Draining {
        /// Cells admitted but not yet finished.
        pending: u64,
    },
    /// A protocol-level error the server noticed in the request.
    Error {
        /// What was wrong.
        message: String,
    },
    /// A [`Request::CacheLookup`] missed the local cache.
    NotFound {
        /// The key that was asked for, echoed back.
        key: String,
    },
}

/// The payload of a [`Response::Status`] reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatusReply {
    /// Protocol version the server speaks.
    pub protocol: u64,
    /// Whether the daemon is draining.
    pub draining: bool,
    /// Cells pending in the admission queue.
    pub queue_depth: u64,
    /// Admission-queue capacity.
    pub queue_capacity: u64,
    /// Worker threads.
    pub workers: u64,
    /// Entries in the result cache.
    pub cache_len: u64,
    /// Result-cache capacity.
    pub cache_capacity: u64,
    /// Result-cache hits since start.
    pub cache_hits: u64,
    /// Result-cache misses since start.
    pub cache_misses: u64,
    /// Cells admitted since start.
    pub cells_admitted: u64,
    /// Cells evaluated since start.
    pub cells_evaluated: u64,
    /// Busy rejects since start.
    pub admission_rejects: u64,
    /// Protocol errors since start.
    pub protocol_errors: u64,
    /// Approximate (envelope-only) answers served since start.
    pub approx_answered: u64,
    /// Cache entries rebuilt from the journal at startup (0 unless the
    /// daemon recovered from a crash).
    pub recovered: u64,
    /// Local misses answered by a peer shard's cache since start.
    pub peer_hits: u64,
}

impl Response {
    /// Renders the response as a frame payload.
    pub fn encode(&self) -> String {
        let mut out = String::with_capacity(96);
        match self {
            Response::Cell { id, record } => {
                let _ = write!(
                    out,
                    "{{\"type\":\"cell\",\"id\":{id},\"index\":{},\"key\":{},\"status\":{},\
                     \"attempts\":{},\"cycles\":{},\"cpi_bits\":{},\"digest\":{},\"cached\":{}",
                    record.index,
                    json::quoted(&record.key),
                    json::quoted(&record.status),
                    record.attempts,
                    record.cycles,
                    record.cpi_bits,
                    record.digest,
                    record.cached,
                );
                match &record.error {
                    None => out.push_str(",\"error\":null}"),
                    Some(e) => {
                        let _ = write!(out, ",\"error\":{}}}", json::quoted(e));
                    }
                }
            }
            Response::Approx {
                id,
                key,
                cycles_lo,
                cycles_hi,
                ipc_hi_bits,
                confidence,
            } => {
                let _ = write!(
                    out,
                    "{{\"type\":\"approx\",\"id\":{id},\"key\":{},\"cycles_lo\":{cycles_lo},\
                     \"cycles_hi\":{cycles_hi},\"ipc_hi_bits\":{ipc_hi_bits},\"confidence\":{}}}",
                    json::quoted(key),
                    json::quoted(confidence),
                );
            }
            Response::GridDone {
                id,
                cells,
                ok,
                failed,
                timed_out,
                cached,
            } => {
                let _ = write!(
                    out,
                    "{{\"type\":\"grid_done\",\"id\":{id},\"cells\":{cells},\"ok\":{ok},\
                     \"failed\":{failed},\"timed_out\":{timed_out},\"cached\":{cached}}}",
                );
            }
            Response::Busy { retry_after_ms } => {
                let _ = write!(
                    out,
                    "{{\"type\":\"busy\",\"retry_after_ms\":{retry_after_ms}}}"
                );
            }
            Response::Rejected { reason } => {
                let _ = write!(
                    out,
                    "{{\"type\":\"rejected\",\"reason\":{}}}",
                    json::quoted(reason)
                );
            }
            Response::Status(s) => {
                let _ = write!(
                    out,
                    "{{\"type\":\"status\",\"protocol\":{},\"draining\":{},\"queue_depth\":{},\
                     \"queue_capacity\":{},\"workers\":{},\"cache_len\":{},\"cache_capacity\":{},\
                     \"cache_hits\":{},\"cache_misses\":{},\"cells_admitted\":{},\
                     \"cells_evaluated\":{},\"admission_rejects\":{},\"protocol_errors\":{},\
                     \"approx_answered\":{},\"recovered\":{},\"peer_hits\":{}}}",
                    s.protocol,
                    s.draining,
                    s.queue_depth,
                    s.queue_capacity,
                    s.workers,
                    s.cache_len,
                    s.cache_capacity,
                    s.cache_hits,
                    s.cache_misses,
                    s.cells_admitted,
                    s.cells_evaluated,
                    s.admission_rejects,
                    s.protocol_errors,
                    s.approx_answered,
                    s.recovered,
                    s.peer_hits,
                );
            }
            Response::Metrics { json: body } => {
                let _ = write!(out, "{{\"type\":\"metrics\",\"metrics\":{body}}}");
            }
            Response::Draining { pending } => {
                let _ = write!(out, "{{\"type\":\"draining\",\"pending\":{pending}}}");
            }
            Response::Error { message } => {
                let _ = write!(
                    out,
                    "{{\"type\":\"error\",\"message\":{}}}",
                    json::quoted(message)
                );
            }
            Response::NotFound { key } => {
                let _ = write!(
                    out,
                    "{{\"type\":\"not_found\",\"key\":{}}}",
                    json::quoted(key)
                );
            }
        }
        out
    }

    /// Parses a response frame payload.
    ///
    /// # Errors
    ///
    /// [`ServeError::Malformed`] for anything that is not a known
    /// response object.
    pub fn decode(payload: &str) -> Result<Response, ServeError> {
        let missing = |name: &str| ServeError::Malformed {
            message: format!("response missing field {name:?}"),
        };
        let num =
            |name: &str| json::u64_field(payload, name).ok_or_else(|| missing(name));
        let ty = json::str_field(payload, "type").ok_or_else(|| missing("type"))?;
        match ty.as_str() {
            "cell" => Ok(Response::Cell {
                id: num("id")?,
                record: WireCellRecord {
                    index: num("index")? as usize,
                    key: json::str_field(payload, "key").ok_or_else(|| missing("key"))?,
                    status: json::str_field(payload, "status")
                        .ok_or_else(|| missing("status"))?,
                    attempts: u32::try_from(num("attempts")?).unwrap_or(u32::MAX),
                    cycles: num("cycles")?,
                    cpi_bits: num("cpi_bits")?,
                    digest: num("digest")?,
                    cached: json::bool_field(payload, "cached")
                        .ok_or_else(|| missing("cached"))?,
                    error: json::opt_str_field(payload, "error")
                        .ok_or_else(|| missing("error"))?,
                },
            }),
            "approx" => Ok(Response::Approx {
                id: num("id")?,
                key: json::str_field(payload, "key").ok_or_else(|| missing("key"))?,
                cycles_lo: num("cycles_lo")?,
                cycles_hi: num("cycles_hi")?,
                ipc_hi_bits: num("ipc_hi_bits")?,
                confidence: json::str_field(payload, "confidence")
                    .ok_or_else(|| missing("confidence"))?,
            }),
            "grid_done" => Ok(Response::GridDone {
                id: num("id")?,
                cells: num("cells")? as usize,
                ok: num("ok")? as usize,
                failed: num("failed")? as usize,
                timed_out: num("timed_out")? as usize,
                cached: num("cached")? as usize,
            }),
            "busy" => Ok(Response::Busy {
                retry_after_ms: num("retry_after_ms")?,
            }),
            "rejected" => Ok(Response::Rejected {
                reason: json::str_field(payload, "reason").ok_or_else(|| missing("reason"))?,
            }),
            "status" => Ok(Response::Status(StatusReply {
                protocol: num("protocol")?,
                draining: json::bool_field(payload, "draining")
                    .ok_or_else(|| missing("draining"))?,
                queue_depth: num("queue_depth")?,
                queue_capacity: num("queue_capacity")?,
                workers: num("workers")?,
                cache_len: num("cache_len")?,
                cache_capacity: num("cache_capacity")?,
                cache_hits: num("cache_hits")?,
                cache_misses: num("cache_misses")?,
                cells_admitted: num("cells_admitted")?,
                cells_evaluated: num("cells_evaluated")?,
                admission_rejects: num("admission_rejects")?,
                protocol_errors: num("protocol_errors")?,
                approx_answered: num("approx_answered")?,
                recovered: num("recovered")?,
                peer_hits: num("peer_hits")?,
            })),
            "metrics" => {
                let tag = "\"metrics\":";
                let start = payload.find(tag).ok_or_else(|| missing("metrics"))? + tag.len();
                // The metrics object runs to the payload's closing brace.
                let body = payload[start..payload.len() - 1].trim().to_string();
                Ok(Response::Metrics { json: body })
            }
            "draining" => Ok(Response::Draining {
                pending: num("pending")?,
            }),
            "error" => Ok(Response::Error {
                message: json::str_field(payload, "message")
                    .ok_or_else(|| missing("message"))?,
            }),
            "not_found" => Ok(Response::NotFound {
                key: json::str_field(payload, "key").ok_or_else(|| missing("key"))?,
            }),
            other => Err(ServeError::Malformed {
                message: format!("unknown response type {other:?}"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_cells() -> Vec<WireCellSpec> {
        vec![
            WireCellSpec::new(
                Benchmark::Vpr,
                1,
                2_000,
                ClusterLayout::C4x2w,
                PolicyKind::Focused,
            ),
            WireCellSpec::new(
                Benchmark::Gzip,
                2,
                1_500,
                ClusterLayout::C8x1w,
                PolicyKind::Proactive,
            )
            .with_epochs(3)
            .with_cycle_budget(500_000),
        ]
    }

    fn sample_scenario_cell() -> WireCellSpec {
        WireCellSpec::for_scenario(
            &ccs_scenario::Scenario::benchmark_equivalent(Benchmark::Gzip),
            7,
            1_200,
            ClusterLayout::C2x4w,
            PolicyKind::Dependence,
        )
    }

    #[test]
    fn benchmark_cells_encode_without_the_scenario_field() {
        // Pre-scenario builds never wrote the field; omitting it keeps
        // benchmark-cell payloads byte-identical across versions.
        let mut out = String::new();
        sample_cells()[0].encode_into(&mut out);
        assert!(!out.contains("scenario"), "{out}");
    }

    #[test]
    fn scenario_cells_round_trip_through_requests() {
        let reqs = [
            Request::SubmitCell {
                id: 21,
                approx: false,
                cell: sample_scenario_cell(),
            },
            // A grid mixing benchmark and scenario cells exercises the
            // array splitter against an embedded multi-line manifest.
            Request::SubmitGrid {
                id: 22,
                cells: vec![
                    sample_cells()[0].clone(),
                    sample_scenario_cell(),
                    sample_cells()[1].clone(),
                ],
            },
        ];
        for req in reqs {
            let payload = req.encode();
            let back = Request::decode(&payload).unwrap_or_else(|e| panic!("{payload}: {e}"));
            assert_eq!(back, req, "{payload}");
        }
    }

    #[test]
    fn scenario_wire_cells_round_trip_through_cell_specs() {
        let wire = sample_scenario_cell();
        let spec = wire.to_cell().unwrap();
        let id = spec.scenario.expect("scenario cell spec must carry a source id");
        assert_eq!(
            id.raw(),
            ccs_scenario::Scenario::benchmark_equivalent(Benchmark::Gzip)
                .fingerprint(),
            "wire transport must preserve the content-addressed identity"
        );
        let back = WireCellSpec::from_cell(&spec).unwrap();
        assert_eq!(back, wire);
    }

    #[test]
    fn scenario_cells_fail_loudly_on_pre_scenario_daemons() {
        // An old daemon's decode drops the unknown "scenario" field and
        // is left staring at bench = "scenario:<name>" — which must be
        // an unknown-benchmark error, never a silent placeholder run.
        let mut stripped = sample_scenario_cell();
        stripped.scenario = None;
        let err = stripped.to_cell().unwrap_err();
        assert!(
            matches!(&err, ServeError::Malformed { message } if message.contains("scenario:gzip")),
            "{err}"
        );
    }

    #[test]
    fn rejected_scenario_manifests_are_malformed_not_fatal() {
        let mut cell = sample_scenario_cell();
        cell.scenario = Some("name = \"broken\"\n".into());
        let err = cell.to_cell().unwrap_err();
        assert!(matches!(&err, ServeError::Malformed { .. }), "{err}");
        assert!(err.is_recoverable());
    }

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::SubmitCell {
                id: 9,
                approx: false,
                cell: sample_cells()[0].clone(),
            },
            Request::SubmitCell {
                id: 10,
                approx: true,
                cell: sample_cells()[1].clone(),
            },
            Request::SubmitGrid {
                id: 7,
                cells: sample_cells(),
            },
            Request::SubmitGrid {
                id: 8,
                cells: Vec::new(),
            },
            Request::Status,
            Request::Metrics,
            Request::Drain,
            Request::CacheLookup {
                key: "vpr/s1/n2000/4x2w/Focused/00ff".into(),
            },
        ];
        for req in reqs {
            let payload = req.encode();
            let back = Request::decode(&payload).unwrap_or_else(|e| panic!("{payload}: {e}"));
            assert_eq!(back, req, "{payload}");
        }
    }

    #[test]
    fn submit_cell_without_approx_field_decodes_as_exact() {
        // A client predating the approximate tier omits the field
        // entirely; the daemon must read that as an exact submission.
        let payload = Request::SubmitCell {
            id: 1,
            approx: false,
            cell: sample_cells()[0].clone(),
        }
        .encode()
        .replace("\"approx\":false,", "");
        match Request::decode(&payload).unwrap() {
            Request::SubmitCell { approx, .. } => assert!(!approx),
            other => panic!("unexpected decode: {other:?}"),
        }
    }

    #[test]
    fn responses_round_trip() {
        let resps = [
            Response::Cell {
                id: 3,
                record: WireCellRecord {
                    index: 5,
                    key: "vpr/s1/n2000/4x2w/Focused/00ff".into(),
                    status: "ok".into(),
                    attempts: 1,
                    cycles: 1234,
                    cpi_bits: 0x3ff0_0000_0000_0000,
                    digest: 0xdead_beef,
                    cached: true,
                    error: None,
                },
            },
            Response::Cell {
                id: 3,
                record: WireCellRecord {
                    index: 0,
                    key: "k".into(),
                    status: "FAILED".into(),
                    attempts: 2,
                    cycles: 0,
                    cpi_bits: 0,
                    digest: 0,
                    cached: false,
                    error: Some("cell panicked: \"quoted\"\nnewline".into()),
                },
            },
            Response::Approx {
                id: 4,
                key: "vpr/s1/n2000/4x2w/Focused/00ff".into(),
                cycles_lo: 1_100,
                cycles_hi: 228_001,
                ipc_hi_bits: (1.8182_f64).to_bits(),
                confidence: "medium".into(),
            },
            Response::GridDone {
                id: 3,
                cells: 6,
                ok: 5,
                failed: 1,
                timed_out: 0,
                cached: 2,
            },
            Response::Busy { retry_after_ms: 40 },
            Response::Rejected {
                reason: "draining".into(),
            },
            Response::Status(StatusReply {
                protocol: PROTOCOL_VERSION,
                draining: false,
                queue_depth: 3,
                queue_capacity: 256,
                workers: 4,
                cache_len: 10,
                cache_capacity: 4096,
                cache_hits: 7,
                cache_misses: 13,
                cells_admitted: 20,
                cells_evaluated: 17,
                admission_rejects: 1,
                protocol_errors: 2,
                approx_answered: 6,
                recovered: 11,
                peer_hits: 3,
            }),
            Response::Metrics {
                json: "{\"queue_depth\":0}".into(),
            },
            Response::Draining { pending: 4 },
            Response::Error {
                message: "malformed payload: missing field \"type\"".into(),
            },
            Response::NotFound {
                key: "gzip/s2/n1500/8x1w/Proactive/0abc".into(),
            },
        ];
        for resp in resps {
            let payload = resp.encode();
            let back = Response::decode(&payload).unwrap_or_else(|e| panic!("{payload}: {e}"));
            assert_eq!(back, resp, "{payload}");
        }
    }

    #[test]
    fn wire_records_round_trip_through_checkpoints() {
        let rec = CheckpointRecord {
            key: "vpr/s1/n2000/4x2w/Focused/00ff".into(),
            status: "ok".into(),
            attempts: 2,
            cycles: 987,
            cpi_bits: 0x3ff8_0000_0000_0000,
            digest: 0xfeed,
            metrics_digest: None,
            predicted_lo: None,
            predicted_hi: None,
            error: None,
        };
        let wire = WireCellRecord::from_checkpoint(4, &rec, true);
        assert_eq!(wire.to_checkpoint(), rec);
    }

    #[test]
    fn wire_cells_round_trip_through_cell_specs() {
        for wire in sample_cells() {
            let spec = wire.to_cell().unwrap();
            let back = WireCellSpec::from_cell(&spec).unwrap();
            assert_eq!(back, wire);
        }
    }

    #[test]
    fn off_surface_specs_are_refused() {
        let spec = sample_cells()[0].clone().to_cell().unwrap();
        let custom = spec.with_policy_config(PolicyKind::Focused.config());
        assert!(WireCellSpec::from_cell(&custom).is_err());
    }

    #[test]
    fn unknown_names_are_malformed() {
        let mut cell = sample_cells()[0].clone();
        cell.bench = "quake".into();
        assert!(matches!(
            cell.to_cell(),
            Err(ServeError::Malformed { .. })
        ));
        let mut cell = sample_cells()[0].clone();
        cell.layout = "3x3w".into();
        assert!(cell.to_cell().is_err());
        let mut cell = sample_cells()[0].clone();
        cell.policy = "oracle".into();
        assert!(cell.to_cell().is_err());
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let payload = Request::Status.encode().replace("\"v\":1", "\"v\":2");
        let err = Request::decode(&payload).unwrap_err();
        assert!(matches!(err, ServeError::Malformed { .. }), "{err}");
        assert!(err.is_recoverable());
    }

    #[test]
    fn duration_casts_saturate_instead_of_truncating() {
        use std::time::Duration;
        // A bare `.as_millis() as u64` keeps only the low 64 bits of
        // the u128: 2^60 seconds is 1000 * 2^60 ms, which truncates to
        // 2^63 — a wrong-but-plausible number. The saturating helpers
        // must pin out-of-range durations to u64::MAX instead; a
        // wrapped Busy retry hint could tell clients to retry far too
        // soon.
        let huge = Duration::from_secs(1 << 60);
        assert_eq!(huge.as_millis() as u64, 1u64 << 63, "premise: bare cast wraps");
        assert_eq!(saturating_millis(huge), u64::MAX);
        assert_eq!(saturating_millis(Duration::MAX), u64::MAX);
        assert_eq!(saturating_nanos(huge), u64::MAX);
        assert_eq!(saturating_nanos(Duration::MAX), u64::MAX);
        // In-range durations pass through exactly.
        assert_eq!(saturating_millis(Duration::from_millis(1500)), 1500);
        assert_eq!(saturating_nanos(Duration::from_nanos(42)), 42);
        assert_eq!(saturating_millis(Duration::ZERO), 0);
    }

    #[test]
    fn oversized_wire_counts_saturate_to_u32() {
        // epochs/attempts travel as u64 JSON numbers but live as u32;
        // a value past u32::MAX must clamp, not silently wrap to its
        // low 32 bits ((1 << 35) + 9 would otherwise decode as 9).
        let json = Request::SubmitGrid {
            id: 7,
            cells: sample_cells(),
        }
        .encode()
        .replace("\"epochs\":3", &format!("\"epochs\":{}", (1u64 << 35) + 9));
        match Request::decode(&json).unwrap() {
            Request::SubmitGrid { cells, .. } => assert_eq!(cells[1].epochs, u32::MAX),
            other => panic!("wrong decode: {other:?}"),
        }
    }

    #[test]
    fn garbage_payloads_error_without_panicking() {
        for payload in [
            "",
            "null",
            "[]",
            "{}",
            "{\"v\":1}",
            "{\"v\":1,\"type\":\"submit_grid\"}",
            "{\"v\":1,\"type\":\"submit_grid\",\"id\":1,\"cells\":[{\"bench\":\"vpr\"}]}",
            "{\"v\":1,\"type\":\"warp\"}",
            "{\"v\":1,\"type\":\"submit_grid\",\"id\":1,\"cells\":[{",
        ] {
            assert!(Request::decode(payload).is_err(), "{payload:?}");
        }
    }
}
