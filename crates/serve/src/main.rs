//! The `ccs-serve` daemon binary.
//!
//! ```text
//! ccs-serve [--addr HOST:PORT] [--workers N] [--queue-cap N]
//!           [--cache-cap N] [--trace-cap N] [--journal PATH]
//!           [--recover] [--peers HOST:PORT,...]
//!           [--frame-timeout-ms MS] [--peer-timeout-ms MS]
//!           [--max-attempts N] [--deadline-ms MS]
//! ```
//!
//! Prints `listening on <addr>` once the socket is bound (scripts wait
//! for that line), serves until a client sends `drain`, then exits 0.

use ccs_core::Resilience;
use ccs_serve::{ServeConfig, Server};
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: ccs-serve [--addr HOST:PORT] [--workers N] [--queue-cap N] [--cache-cap N]\n\
         \x20                [--trace-cap N] [--journal PATH] [--recover] [--peers HOST:PORT,...]\n\
         \x20                [--frame-timeout-ms MS] [--peer-timeout-ms MS]\n\
         \x20                [--max-attempts N] [--deadline-ms MS]"
    );
    std::process::exit(2)
}

fn parse_args() -> ServeConfig {
    let mut config = ServeConfig::default();
    if let Ok(addr) = std::env::var("CCS_SERVE_ADDR") {
        config.addr = addr;
    }
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |what: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a {what}");
                usage()
            })
        };
        match flag.as_str() {
            "--addr" => config.addr = value("HOST:PORT"),
            "--workers" => config.workers = parse_num(&flag, &value("count")),
            "--queue-cap" => config.queue_capacity = parse_num(&flag, &value("count")),
            "--cache-cap" => config.cache_capacity = parse_num(&flag, &value("count")),
            "--trace-cap" => config.trace_capacity = Some(parse_num(&flag, &value("count"))),
            "--journal" => config.journal = Some(value("PATH").into()),
            "--recover" => config.recover = true,
            "--peers" => {
                config.peers = value("HOST:PORT,...")
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(String::from)
                    .collect()
            }
            "--frame-timeout-ms" => {
                config.frame_timeout =
                    Duration::from_millis(parse_num(&flag, &value("millis")) as u64)
            }
            "--peer-timeout-ms" => {
                config.peer_timeout =
                    Duration::from_millis(parse_num(&flag, &value("millis")) as u64)
            }
            "--max-attempts" => {
                config.resilience =
                    Resilience::default().with_max_attempts(parse_num(&flag, &value("count")) as u32)
            }
            "--deadline-ms" => {
                config.resilience.deadline = Some(Duration::from_millis(
                    parse_num(&flag, &value("millis")) as u64,
                ))
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage()
            }
        }
    }
    config
}

fn parse_num(flag: &str, value: &str) -> usize {
    value.parse().unwrap_or_else(|_| {
        eprintln!("{flag}: not a number: {value:?}");
        usage()
    })
}

fn main() {
    let config = parse_args();
    let server = match Server::bind(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("ccs-serve: {e}");
            std::process::exit(1);
        }
    };
    println!("listening on {}", server.local_addr());
    if let Err(e) = server.run() {
        eprintln!("ccs-serve: {e}");
        std::process::exit(1);
    }
}
