//! Simulation-as-a-service for the clustercrit experiment grid.
//!
//! `ccs-serve` turns the batch experiment executor into a long-running
//! daemon: clients submit grid cells over TCP, the daemon evaluates
//! them on a worker pool with the same panic-isolated resilient
//! executor the batch harness uses, answers duplicates from a bounded
//! LRU result cache keyed by the checkpoint
//! [`cell_key`](ccs_core::cell_key), and pushes back with typed `busy`
//! replies when its bounded admission queue is full. Opt-in `approx`
//! submissions skip the queue entirely: cache hits answer exactly and
//! everything else gets `ccs-predict`'s analytic cycle/IPC envelope,
//! which the client escalates to a full simulation by re-submitting
//! without the flag. Results are
//! *bit-identical* to an in-process [`run_grid`](ccs_core::run_grid) of
//! the same cells — same schedule digests, same CPI bit patterns —
//! because both paths run the same deterministic evaluation; the
//! round-trip integration test pins that.
//!
//! Layering:
//!
//! - [`json`] — dependency-free JSON field scanners (render + parse).
//! - [`protocol`] — the versioned request/response vocabulary
//!   ([`Request`], [`Response`], [`WireCellSpec`], [`WireCellRecord`]).
//! - [`wire`] — `CCS1` length-prefixed framing with a partial-read
//!   tolerant [`FrameReader`].
//! - [`cache`] — the bounded LRU [`ResultCache`] (ok results only).
//! - [`journal`] — the append-only JSONL request [`Journal`].
//! - [`server`] — the daemon itself: [`Server`], [`ServeConfig`],
//!   accept loop, worker pool, graceful drain.
//!
//! The `ccs-serve` binary wraps [`Server`] with flag parsing; the
//! `ccs-client` crate speaks the same protocol from the other side.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod journal;
pub mod json;
pub mod protocol;
pub mod server;
pub mod wire;

pub use cache::ResultCache;
pub use journal::{
    load_journal, replay_journal, Journal, JournalEvent, ReplayState, JOURNAL_VERSION,
};
pub use protocol::{
    saturating_millis, saturating_nanos, Request, Response, ServeError, StatusReply,
    WireCellRecord, WireCellSpec, MAX_FRAME_LEN, PROTOCOL_VERSION, WIRE_POLICIES,
};
pub use server::{render_metrics, KillSwitch, ServeConfig, Server};
pub use wire::{frame_bytes, write_frame, FrameReader, Poll, MAGIC};
