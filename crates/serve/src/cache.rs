//! Bounded LRU cache of finished cell results.
//!
//! Keyed by [`cell_key`](ccs_core::cell_key) — the same type-tagged
//! fingerprint the checkpoint manifest uses — so two submissions naming
//! the same cell share one evaluation no matter which client sent them.
//! Only `"ok"` results are cached: a timeout is a wall-clock accident
//! and a failure may be environmental, and replaying either from cache
//! would turn a transient into a permanent answer.

use ccs_core::checkpoint::CheckpointRecord;
use std::collections::HashMap;
use std::sync::{Mutex, PoisonError};

struct Entry {
    record: CheckpointRecord,
    last_used: u64,
}

/// A thread-safe bounded LRU map from cell key to checkpoint record.
pub struct ResultCache {
    inner: Mutex<Inner>,
}

struct Inner {
    map: HashMap<String, Entry>,
    capacity: usize,
    clock: u64,
}

impl ResultCache {
    /// A cache holding at most `capacity` results (minimum 1).
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                capacity: capacity.max(1),
                clock: 0,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.lock().capacity
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&self, key: &str) -> Option<CheckpointRecord> {
        let mut inner = self.lock();
        inner.clock += 1;
        let now = inner.clock;
        let entry = inner.map.get_mut(key)?;
        entry.last_used = now;
        Some(entry.record.clone())
    }

    /// Inserts an `"ok"` record, evicting the least recently used entry
    /// if full. Non-ok records are ignored (see the module docs).
    pub fn put(&self, record: &CheckpointRecord) {
        if record.status != "ok" {
            return;
        }
        let mut inner = self.lock();
        inner.clock += 1;
        let now = inner.clock;
        if let Some(entry) = inner.map.get_mut(&record.key) {
            entry.last_used = now;
            return; // same key ⇒ same deterministic result
        }
        while inner.map.len() >= inner.capacity {
            let victim = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => {
                    inner.map.remove(&k);
                }
                None => break,
            }
        }
        inner.map.insert(
            record.key.clone(),
            Entry {
                record: record.clone(),
                last_used: now,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(key: &str, status: &str, cycles: u64) -> CheckpointRecord {
        CheckpointRecord {
            key: key.into(),
            status: status.into(),
            attempts: 1,
            cycles,
            cpi_bits: cycles.wrapping_mul(3),
            digest: cycles.wrapping_mul(7),
            metrics_digest: None,
            predicted_lo: None,
            predicted_hi: None,
            error: None,
        }
    }

    #[test]
    fn hits_return_the_stored_record() {
        let cache = ResultCache::new(4);
        cache.put(&rec("a", "ok", 10));
        assert_eq!(cache.get("a").unwrap().cycles, 10);
        assert!(cache.get("b").is_none());
    }

    #[test]
    fn non_ok_records_are_not_cached() {
        let cache = ResultCache::new(4);
        cache.put(&rec("t", "TIMEOUT", 0));
        cache.put(&rec("f", "FAILED", 0));
        assert!(cache.is_empty());
    }

    #[test]
    fn eviction_removes_the_least_recently_used() {
        let cache = ResultCache::new(2);
        cache.put(&rec("a", "ok", 1));
        cache.put(&rec("b", "ok", 2));
        assert!(cache.get("a").is_some()); // refresh a ⇒ b is LRU
        cache.put(&rec("c", "ok", 3));
        assert!(cache.get("b").is_none(), "b was evicted");
        assert!(cache.get("a").is_some());
        assert!(cache.get("c").is_some());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn reinserting_a_key_refreshes_instead_of_duplicating() {
        let cache = ResultCache::new(2);
        cache.put(&rec("a", "ok", 1));
        cache.put(&rec("b", "ok", 2));
        cache.put(&rec("a", "ok", 1)); // refresh ⇒ b becomes LRU
        cache.put(&rec("c", "ok", 3));
        assert_eq!(cache.len(), 2);
        assert!(cache.get("a").is_some());
        assert!(cache.get("b").is_none());
    }
}
