//! The daemon: accept loop, connection handlers, worker pool, and the
//! graceful drain handshake.
//!
//! Threading model (all scoped — no detached threads, so shutdown is a
//! join, not a prayer):
//!
//! ```text
//! acceptor ──spawns──► connection handler (one per client)
//!                        │ decode frame → admit / reject / answer
//!                        │ admitted jobs ──► BoundedQueue
//!                        ◄── per-submission mpsc ── worker pool (N)
//! ```
//!
//! A connection handler serves one submission at a time: it admits the
//! whole grid (all-or-nothing), streams each cell reply as workers
//! finish (completion order), then a `grid_done` tally. Workers reuse
//! the same resilient executor as the batch harness —
//! [`run_cells`] with panic isolation and watchdog — so a poisoned cell
//! becomes a `FAILED` record, never a dead daemon.
//!
//! Drain: the `drain` frame sets a flag; new submissions are refused
//! with a typed reject while in-flight cells finish. When the
//! outstanding count reaches zero the acceptor closes the queue (worker
//! pop sees `None`), raises the stop flag (handlers exit at their next
//! read-timeout poll), journals `drained`, and [`Server::run`] returns.

use crate::cache::ResultCache;
use crate::journal::{Journal, JournalEvent};
use crate::protocol::{Request, Response, StatusReply, WireCellRecord, PROTOCOL_VERSION};
use crate::wire::{write_frame, FrameReader, Poll};
use ccs_core::checkpoint::{cell_key, CheckpointRecord};
use ccs_core::grid::run_cells;
use ccs_core::{run_custom_cancellable, CcsError, CellSpec, Resilience};
use ccs_core::{Admission, BoundedQueue};
use ccs_obs::{ServeMetrics, ServeSnapshot, SERVE_FRAME_KINDS};
use ccs_trace::TraceStore;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Everything a daemon needs to know at bind time.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address (use port 0 to let the OS pick).
    pub addr: String,
    /// Worker threads evaluating cells.
    pub workers: usize,
    /// Admission-queue capacity (cells, not submissions).
    pub queue_capacity: usize,
    /// Result-cache capacity (finished cells).
    pub cache_capacity: usize,
    /// Trace-store LRU bound; `None` keeps every generated trace.
    pub trace_capacity: Option<usize>,
    /// Request-journal path; `None` disables journaling.
    pub journal: Option<PathBuf>,
    /// Retry/watchdog policy for cell evaluation.
    pub resilience: Resilience,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_capacity: 256,
            cache_capacity: 4096,
            trace_capacity: None,
            journal: None,
            resilience: Resilience::default(),
        }
    }
}

/// One unit of worker work: a unique cell plus every submission index
/// that asked for it (within-submission dedup fans one evaluation back
/// out to all of them).
struct Job {
    spec: CellSpec,
    key: String,
    indices: Vec<usize>,
    reply: mpsc::Sender<(Vec<usize>, CheckpointRecord, bool)>,
}

/// State shared by the acceptor, every connection handler, and every
/// worker.
struct Shared {
    queue: BoundedQueue<Job>,
    cache: ResultCache,
    traces: TraceStore,
    metrics: ServeMetrics,
    journal: Option<Journal>,
    resilience: Resilience,
    workers: usize,
    /// Cells admitted but not yet answered. The drain handshake waits
    /// on this reaching zero.
    outstanding: AtomicU64,
    /// Set by a `drain` frame: refuse new submissions.
    draining: AtomicBool,
    /// Set by the acceptor once drained: handlers exit at their next
    /// poll.
    stop: AtomicBool,
}

impl Shared {
    fn status(&self) -> StatusReply {
        let snap = self.metrics.snapshot();
        StatusReply {
            protocol: PROTOCOL_VERSION,
            draining: self.draining.load(Ordering::SeqCst),
            queue_depth: snap.queue_depth,
            queue_capacity: self.queue.capacity() as u64,
            workers: self.workers as u64,
            cache_len: self.cache.len() as u64,
            cache_capacity: self.cache.capacity() as u64,
            cache_hits: snap.cache_hits,
            cache_misses: snap.cache_misses,
            cells_admitted: snap.cells_admitted,
            cells_evaluated: snap.cells_evaluated,
            admission_rejects: snap.admission_rejects,
            protocol_errors: snap.protocol_errors,
            approx_answered: snap.approx_answered,
        }
    }
}

/// Renders a [`ServeSnapshot`] as the JSON body of a `metrics` reply.
pub fn render_metrics(snap: &ServeSnapshot) -> String {
    let mut out = String::with_capacity(256);
    out.push_str("{\"frames\":{");
    for (i, kind) in SERVE_FRAME_KINDS.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{kind}\":{}", snap.frames[i]);
    }
    let _ = write!(
        out,
        "}},\"protocol_errors\":{},\"admission_rejects\":{},\"drain_rejects\":{},\
         \"cells_admitted\":{},\"cells_evaluated\":{},\"cache_hits\":{},\"cache_misses\":{},\
         \"cache_hit_rate\":{:.6},\"approx_answered\":{},\"queue_depth\":{},\
         \"queue_depth_peak\":{},\"latency\":{{",
        snap.protocol_errors,
        snap.admission_rejects,
        snap.drain_rejects,
        snap.cells_admitted,
        snap.cells_evaluated,
        snap.cache_hits,
        snap.cache_misses,
        snap.cache_hit_rate(),
        snap.approx_answered,
        snap.queue_depth,
        snap.queue_depth_peak,
    );
    for (i, kind) in SERVE_FRAME_KINDS.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let p50 = snap.latency_quantile_ms(i, 0.5);
        let p99 = snap.latency_quantile_ms(i, 0.99);
        let _ = write!(
            out,
            "\"{kind}\":{{\"samples\":{},\"p50_ms\":{},\"p99_ms\":{}}}",
            snap.latency_ms[i].samples(),
            p50.map_or("null".to_string(), |v| v.to_string()),
            p99.map_or("null".to_string(), |v| v.to_string()),
        );
    }
    out.push_str("}}");
    out
}

/// A bound daemon, ready to [`run`](Server::run).
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    config: ServeConfig,
}

impl Server {
    /// Binds the listen socket (resolving port 0 to a concrete port).
    ///
    /// # Errors
    ///
    /// [`CcsError::Protocol`] when the address cannot be bound.
    pub fn bind(config: ServeConfig) -> Result<Server, CcsError> {
        let listener = TcpListener::bind(&config.addr).map_err(|e| CcsError::Protocol {
            message: format!("bind {}: {e}", config.addr),
        })?;
        let local_addr = listener.local_addr().map_err(|e| CcsError::Protocol {
            message: format!("local_addr: {e}"),
        })?;
        Ok(Server {
            listener,
            local_addr,
            config,
        })
    }

    /// The bound address (concrete even when the config said port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Serves until a `drain` frame completes: accepts connections,
    /// evaluates admitted cells, then drains and returns.
    ///
    /// # Errors
    ///
    /// [`CcsError::Checkpoint`] when the journal cannot be created;
    /// [`CcsError::Protocol`] when the listener breaks.
    pub fn run(self) -> Result<(), CcsError> {
        let Server {
            listener,
            local_addr,
            config,
        } = self;
        let journal = match &config.journal {
            Some(path) => Some(Journal::create(
                path,
                &local_addr.to_string(),
                config.workers,
                config.queue_capacity,
            )?),
            None => None,
        };
        let shared = Shared {
            queue: BoundedQueue::new(config.queue_capacity.max(1)),
            cache: ResultCache::new(config.cache_capacity),
            traces: match config.trace_capacity {
                Some(cap) => TraceStore::bounded(cap),
                None => TraceStore::new(),
            },
            metrics: ServeMetrics::new(),
            journal,
            resilience: config.resilience,
            workers: config.workers.max(1),
            outstanding: AtomicU64::new(0),
            draining: AtomicBool::new(false),
            stop: AtomicBool::new(false),
        };
        listener
            .set_nonblocking(true)
            .map_err(|e| CcsError::Protocol {
                message: format!("set_nonblocking: {e}"),
            })?;

        std::thread::scope(|scope| {
            for _ in 0..shared.workers {
                scope.spawn(|| worker_loop(&shared));
            }
            loop {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        let shared = &shared;
                        scope.spawn(move || handle_connection(shared, stream));
                    }
                    Err(e)
                        if e.kind() == ErrorKind::WouldBlock
                            || e.kind() == ErrorKind::TimedOut =>
                    {
                        if shared.draining.load(Ordering::SeqCst)
                            && shared.outstanding.load(Ordering::SeqCst) == 0
                        {
                            break;
                        }
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(e) => {
                        // A broken listener is fatal; stop everything.
                        shared.draining.store(true, Ordering::SeqCst);
                        shared.queue.close();
                        shared.stop.store(true, Ordering::SeqCst);
                        panic!("accept failed: {e}");
                    }
                }
            }
            // Drained: stop workers (pop → None) and handlers (next
            // read-timeout poll observes the stop flag).
            shared.queue.close();
            shared.stop.store(true, Ordering::SeqCst);
            if let Some(j) = &shared.journal {
                j.append(JournalEvent::Drained { seq: 0 });
            }
        });
        Ok(())
    }
}

/// One worker: pop a job, resolve it (cache or evaluation), fan the
/// record out to the submission that asked, and retire the cell.
fn worker_loop(shared: &Shared) {
    while let Some(job) = shared.queue.pop() {
        // A racing submission may have filled the cache while this job
        // sat queued; reuse its result rather than re-simulating. This
        // second consultation counts as a hit so the daemon's hit tally
        // agrees with the number of `cached` records clients receive.
        let (record, cached) = match shared.cache.get(&job.key) {
            Some(record) => {
                shared.metrics.record_cache_hit();
                (record, true)
            }
            None => {
                let results = run_cells(
                    std::slice::from_ref(&job.spec),
                    1,
                    &shared.resilience,
                    |_, spec, cancel| {
                        let trace =
                            shared
                                .traces
                                .get(spec.benchmark, spec.sample_seed, spec.len);
                        let policy_config =
                            spec.policy_config.unwrap_or_else(|| spec.policy.config());
                        run_custom_cancellable(
                            &spec.config,
                            &trace,
                            policy_config,
                            spec.policy,
                            &spec.options,
                            cancel,
                        )
                    },
                    |_, _| {},
                );
                let record = CheckpointRecord::from_result(&results[0]);
                shared.cache.put(&record);
                (record, false)
            }
        };
        if let Some(j) = &shared.journal {
            j.append(JournalEvent::CellDone {
                seq: 0,
                key: record.key.clone(),
                status: record.status.clone(),
            });
        }
        // Account the evaluation before replying, so a client that sees
        // its grid finish also sees the daemon's counters agree.
        shared.metrics.record_evaluated();
        // The handler may have died with its client; a failed send must
        // not kill the worker (the cell is still journaled and cached).
        let _ = job.reply.send((job.indices, record, cached));
        shared.outstanding.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Tallies for a `grid_done` reply.
#[derive(Default)]
struct GridTally {
    ok: usize,
    failed: usize,
    timed_out: usize,
    cached: usize,
}

impl GridTally {
    fn add(&mut self, record: &WireCellRecord) {
        match record.status.as_str() {
            "ok" => self.ok += 1,
            "TIMEOUT" => self.timed_out += 1,
            _ => self.failed += 1,
        }
        if record.cached {
            self.cached += 1;
        }
    }
}

/// Serves one client connection until it closes, desynchronizes, or the
/// daemon stops.
fn handle_connection(shared: &Shared, mut stream: TcpStream) {
    // The read timeout doubles as the stop-flag poll interval; the
    // FrameReader preserves partial frames across timeouts.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let _ = stream.set_nodelay(true);
    let mut reader = FrameReader::new();
    loop {
        match reader.poll(&mut stream) {
            Ok(Poll::Frame(payload)) => {
                if !handle_frame(shared, &mut stream, &payload) {
                    break;
                }
            }
            Ok(Poll::Pending) => {
                if shared.stop.load(Ordering::SeqCst) {
                    break;
                }
            }
            Ok(Poll::Closed) => break,
            Err(err) => {
                // Framing is lost (bad magic, oversized prefix, hard IO
                // error): tell the peer what happened if the socket
                // still works, then hang up.
                shared.metrics.record_protocol_error();
                let reply = Response::Error {
                    message: err.to_string(),
                };
                let _ = write_frame(&mut stream, &reply.encode());
                break;
            }
        }
    }
}

/// Decodes and answers one frame. Returns `false` when the connection
/// should close.
fn handle_frame(shared: &Shared, stream: &mut TcpStream, payload: &str) -> bool {
    let started = Instant::now();
    let request = match Request::decode(payload) {
        Ok(req) => req,
        Err(err) => {
            // Framing survived; the payload did not. Answer the error
            // and keep the connection.
            shared.metrics.record_protocol_error();
            let reply = Response::Error {
                message: err.to_string(),
            };
            return write_frame(stream, &reply.encode()).is_ok();
        }
    };
    let kind = request.kind();
    shared.metrics.record_frame(kind);
    let keep = match request {
        Request::SubmitCell { id, cell, approx } => {
            handle_submission(shared, stream, id, vec![cell], false, approx)
        }
        Request::SubmitGrid { id, cells } => {
            handle_submission(shared, stream, id, cells, true, false)
        }
        Request::Status => {
            let reply = Response::Status(shared.status());
            write_frame(stream, &reply.encode()).is_ok()
        }
        Request::Metrics => {
            let reply = Response::Metrics {
                json: render_metrics(&shared.metrics.snapshot()),
            };
            write_frame(stream, &reply.encode()).is_ok()
        }
        Request::Drain => {
            let pending = shared.outstanding.load(Ordering::SeqCst);
            shared.draining.store(true, Ordering::SeqCst);
            if let Some(j) = &shared.journal {
                j.append(JournalEvent::DrainRequested { seq: 0, pending });
            }
            let reply = Response::Draining { pending };
            write_frame(stream, &reply.encode()).is_ok()
        }
    };
    shared
        .metrics
        .record_latency_ms(kind, started.elapsed().as_millis() as u64);
    keep
}

/// Admits and answers one submission (a single cell or a grid).
///
/// Reply sequence on admission: one `cell` frame per submitted index in
/// completion order (cache hits first), then — for grids — a
/// `grid_done` tally. On rejection: exactly one `busy` or `rejected`
/// frame and nothing else (admission is all-or-nothing, so the client
/// never untangles a half-answered grid).
///
/// With `approx` set the submission never reaches the queue: cached
/// cells are answered exactly (an envelope is never a downgrade from a
/// result already in hand), everything else gets an `approx` frame
/// carrying `ccs-predict`'s analytic envelope. Envelopes are never
/// cached — the cache holds only simulated results.
fn handle_submission(
    shared: &Shared,
    stream: &mut TcpStream,
    id: u64,
    cells: Vec<crate::protocol::WireCellSpec>,
    grid: bool,
    approx: bool,
) -> bool {
    if shared.draining.load(Ordering::SeqCst) {
        shared.metrics.record_drain_reject();
        if let Some(j) = &shared.journal {
            j.append(JournalEvent::RejectedEvent {
                seq: 0,
                id,
                reason: "draining".into(),
            });
        }
        let reply = Response::Rejected {
            reason: "draining".into(),
        };
        return write_frame(stream, &reply.encode()).is_ok();
    }

    // Resolve the wire cells to specs before touching any shared state;
    // an unparseable cell rejects the whole submission.
    let mut specs = Vec::with_capacity(cells.len());
    for (index, wire) in cells.iter().enumerate() {
        match wire.to_cell() {
            Ok(spec) => specs.push(spec),
            Err(err) => {
                shared.metrics.record_protocol_error();
                let reply = Response::Rejected {
                    reason: format!("cell {index}: {err}"),
                };
                return write_frame(stream, &reply.encode()).is_ok();
            }
        }
    }

    if approx {
        return handle_approx(shared, stream, id, &specs);
    }

    // Partition into cache hits (answered immediately) and unique-key
    // jobs (queued once per key, fanned out to every index).
    let (reply_tx, reply_rx) = mpsc::channel();
    let mut hits: Vec<(usize, CheckpointRecord)> = Vec::new();
    let mut pending: HashMap<String, (CellSpec, Vec<usize>)> = HashMap::new();
    let mut order: Vec<String> = Vec::new();
    for (index, spec) in specs.iter().enumerate() {
        let key = cell_key(spec);
        if let Some(record) = shared.cache.get(&key) {
            shared.metrics.record_cache_hit();
            hits.push((index, record));
            continue;
        }
        shared.metrics.record_cache_miss();
        match pending.get_mut(&key) {
            Some((_, indices)) => indices.push(index),
            None => {
                order.push(key.clone());
                pending.insert(key, (*spec, vec![index]));
            }
        }
    }
    let jobs: Vec<Job> = order
        .into_iter()
        .map(|key| {
            let (spec, indices) = pending.remove(&key).expect("ordered key is pending");
            Job {
                spec,
                key,
                indices,
                reply: reply_tx.clone(),
            }
        })
        .collect();
    drop(reply_tx);

    let job_count = jobs.len();
    // Publish the outstanding count *before* admission so the drain
    // handshake can never observe admitted-but-uncounted cells.
    shared
        .outstanding
        .fetch_add(job_count as u64, Ordering::SeqCst);
    match shared.queue.admit(jobs) {
        Admission::Admitted { .. } => {}
        Admission::Busy { retry_after_hint } => {
            shared
                .outstanding
                .fetch_sub(job_count as u64, Ordering::SeqCst);
            shared.metrics.record_admission_reject();
            if let Some(j) = &shared.journal {
                j.append(JournalEvent::RejectedEvent {
                    seq: 0,
                    id,
                    reason: "busy".into(),
                });
            }
            let reply = Response::Busy {
                retry_after_ms: retry_after_hint.as_millis() as u64,
            };
            return write_frame(stream, &reply.encode()).is_ok();
        }
    }
    shared.metrics.record_admitted(job_count as u64);
    if let Some(j) = &shared.journal {
        j.append(JournalEvent::Admitted {
            seq: 0,
            id,
            cells: cells.len() as u64,
            cached: hits.len() as u64,
        });
    }

    // Stream the answers. A write failure means the client is gone; the
    // admitted jobs still run (workers ignore the dead channel), so the
    // daemon's accounting stays intact either way.
    let mut tally = GridTally::default();
    let mut write_ok = true;
    for (index, record) in &hits {
        let wire = WireCellRecord::from_checkpoint(*index, record, true);
        tally.add(&wire);
        if write_ok {
            let reply = Response::Cell {
                id,
                record: wire,
            };
            write_ok = write_frame(stream, &reply.encode()).is_ok();
        }
    }
    for _ in 0..job_count {
        let Ok((indices, record, cached)) = reply_rx.recv() else {
            // Workers died (queue closed mid-flight); nothing more
            // will arrive for this submission.
            break;
        };
        for index in indices {
            let wire = WireCellRecord::from_checkpoint(index, &record, cached);
            tally.add(&wire);
            if write_ok {
                let reply = Response::Cell {
                    id,
                    record: wire,
                };
                write_ok = write_frame(stream, &reply.encode()).is_ok();
            }
        }
    }
    if grid && write_ok {
        let reply = Response::GridDone {
            id,
            cells: cells.len(),
            ok: tally.ok,
            failed: tally.failed,
            timed_out: tally.timed_out,
            cached: tally.cached,
        };
        write_ok = write_frame(stream, &reply.encode()).is_ok();
    }
    write_ok
}

/// Answers an approximate submission without touching the worker queue.
///
/// Cache hits still return the exact simulated record (marked
/// `cached`); misses return the analytic envelope and count toward
/// `approx_answered`. The client escalates by re-submitting without the
/// `approx` flag — the envelope never enters the result cache, so the
/// escalated run is a plain first-class evaluation.
fn handle_approx(
    shared: &Shared,
    stream: &mut TcpStream,
    id: u64,
    specs: &[CellSpec],
) -> bool {
    let mut write_ok = true;
    for (index, spec) in specs.iter().enumerate() {
        let key = cell_key(spec);
        let reply = match shared.cache.get(&key) {
            Some(record) => {
                shared.metrics.record_cache_hit();
                Response::Cell {
                    id,
                    record: WireCellRecord::from_checkpoint(index, &record, true),
                }
            }
            None => {
                shared.metrics.record_cache_miss();
                let trace = shared
                    .traces
                    .get(spec.benchmark, spec.sample_seed, spec.len);
                let p = ccs_predict::predict(&spec.config, &trace)
                    .with_cycle_budget(spec.options.cycle_budget);
                shared.metrics.record_approx();
                if let Some(j) = &shared.journal {
                    j.append(JournalEvent::ApproxServed {
                        seq: 0,
                        key: key.clone(),
                    });
                }
                Response::Approx {
                    id,
                    key,
                    cycles_lo: p.cycles_lo,
                    cycles_hi: p.cycles_hi,
                    ipc_hi_bits: p.ipc_hi.to_bits(),
                    confidence: p.confidence.name().to_string(),
                }
            }
        };
        if write_ok {
            write_ok = write_frame(stream, &reply.encode()).is_ok();
        }
    }
    write_ok
}
