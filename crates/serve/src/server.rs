//! The daemon: accept loop, connection handlers, worker pool, and the
//! graceful drain handshake.
//!
//! Threading model (all scoped — no detached threads, so shutdown is a
//! join, not a prayer):
//!
//! ```text
//! acceptor ──spawns──► connection handler (one per client)
//!                        │ decode frame → admit / reject / answer
//!                        │ admitted jobs ──► BoundedQueue
//!                        ◄── per-submission mpsc ── worker pool (N)
//! ```
//!
//! A connection handler serves one submission at a time: it admits the
//! whole grid (all-or-nothing), streams each cell reply as workers
//! finish (completion order), then a `grid_done` tally. Workers reuse
//! the same resilient executor as the batch harness —
//! [`run_cells`] with panic isolation and watchdog — so a poisoned cell
//! becomes a `FAILED` record, never a dead daemon.
//!
//! Drain: the `drain` frame sets a flag; new submissions are refused
//! with a typed reject while in-flight cells finish. When the
//! outstanding count reaches zero the acceptor closes the queue (worker
//! pop sees `None`), raises the stop flag (handlers exit at their next
//! read-timeout poll), journals `drained`, and [`Server::run`] returns.

use crate::cache::ResultCache;
use crate::journal::{Journal, JournalEvent};
use crate::protocol::{Request, Response, StatusReply, WireCellRecord, PROTOCOL_VERSION};
use crate::wire::{write_frame, FrameReader, Poll};
use ccs_core::checkpoint::{cell_key, CheckpointRecord};
use ccs_core::grid::run_cells;
use ccs_core::{run_custom_cancellable, CcsError, CellSpec, Resilience};
use ccs_core::{Admission, BoundedQueue};
use ccs_obs::{ServeMetrics, ServeSnapshot, SERVE_FRAME_KINDS};
use ccs_trace::TraceStore;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// How long a peer that failed a cache lookup stays circuit-broken
/// (skipped without connecting) before being probed again. Keeps a dead
/// peer from adding a connect timeout to every cache miss.
const PEER_DOWN_COOLDOWN: Duration = Duration::from_secs(2);

/// Everything a daemon needs to know at bind time.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address (use port 0 to let the OS pick).
    pub addr: String,
    /// Worker threads evaluating cells.
    pub workers: usize,
    /// Admission-queue capacity (cells, not submissions).
    pub queue_capacity: usize,
    /// Result-cache capacity (finished cells).
    pub cache_capacity: usize,
    /// Trace-store LRU bound; `None` keeps every generated trace.
    pub trace_capacity: Option<usize>,
    /// Request-journal path; `None` disables journaling.
    pub journal: Option<PathBuf>,
    /// Replay an existing journal at startup instead of truncating it:
    /// finished cells become cache entries again (crash recovery).
    /// Ignored when `journal` is `None`.
    pub recover: bool,
    /// Sibling shard addresses consulted (local cache only, via
    /// `cache_lookup`) on a local cache miss before simulating. Empty
    /// disables peering.
    pub peers: Vec<String>,
    /// Connect/read deadline for one peer cache lookup.
    pub peer_timeout: Duration,
    /// How long a connection may sit on a *partial* frame before the
    /// daemon replies with a typed timeout and hangs up (slow-loris
    /// defense). Also the per-write deadline on replies, so a half-dead
    /// client cannot pin a handler in `write`. Idle connections with an
    /// empty buffer are unaffected.
    pub frame_timeout: Duration,
    /// Retry/watchdog policy for cell evaluation.
    pub resilience: Resilience,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_capacity: 256,
            cache_capacity: 4096,
            trace_capacity: None,
            journal: None,
            recover: false,
            peers: Vec::new(),
            peer_timeout: Duration::from_millis(250),
            frame_timeout: Duration::from_secs(10),
            resilience: Resilience::default(),
        }
    }
}

/// A clonable handle that makes a running [`Server`] die *abruptly*:
/// pending queue entries are dropped, no `drained` marker is journaled,
/// in-flight grids never receive their `grid_done`. This is the chaos
/// harness's kill -9 equivalent for in-process shards — the journal is
/// left exactly as a crash would leave it, so recovery paths get
/// exercised against the real artifact.
#[derive(Clone)]
pub struct KillSwitch {
    flag: Arc<AtomicBool>,
}

impl KillSwitch {
    /// Trips the switch. Idempotent; takes effect at the acceptor's
    /// next poll (≤ ~20 ms).
    pub fn kill(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Whether the switch has been tripped.
    pub fn is_killed(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// One unit of worker work: a unique cell plus every submission index
/// that asked for it (within-submission dedup fans one evaluation back
/// out to all of them).
struct Job {
    spec: CellSpec,
    key: String,
    indices: Vec<usize>,
    reply: mpsc::Sender<(Vec<usize>, CheckpointRecord, bool)>,
}

/// State shared by the acceptor, every connection handler, and every
/// worker.
struct Shared {
    queue: BoundedQueue<Job>,
    cache: ResultCache,
    traces: TraceStore,
    metrics: ServeMetrics,
    journal: Option<Journal>,
    resilience: Resilience,
    workers: usize,
    /// Sibling shards consulted on a local cache miss (empty: no
    /// peering).
    peers: Vec<String>,
    /// Per-lookup connect/read deadline for peering.
    peer_timeout: Duration,
    /// Circuit breaker: peers that recently failed, with the instant
    /// their cooldown expires.
    peer_down: Mutex<HashMap<String, Instant>>,
    /// Partial-frame / reply-write deadline.
    frame_timeout: Duration,
    /// Cells admitted but not yet answered. The drain handshake waits
    /// on this reaching zero.
    outstanding: AtomicU64,
    /// Set by a `drain` frame: refuse new submissions.
    draining: AtomicBool,
    /// Set by the acceptor once drained: handlers exit at their next
    /// poll.
    stop: AtomicBool,
    /// Tripped by a [`KillSwitch`]: die abruptly, crash semantics.
    killed: Arc<AtomicBool>,
}

impl Shared {
    fn status(&self) -> StatusReply {
        let snap = self.metrics.snapshot();
        StatusReply {
            protocol: PROTOCOL_VERSION,
            draining: self.draining.load(Ordering::SeqCst),
            queue_depth: snap.queue_depth,
            queue_capacity: self.queue.capacity() as u64,
            workers: self.workers as u64,
            cache_len: self.cache.len() as u64,
            cache_capacity: self.cache.capacity() as u64,
            cache_hits: snap.cache_hits,
            cache_misses: snap.cache_misses,
            cells_admitted: snap.cells_admitted,
            cells_evaluated: snap.cells_evaluated,
            admission_rejects: snap.admission_rejects,
            protocol_errors: snap.protocol_errors,
            approx_answered: snap.approx_answered,
            recovered: snap.recovered,
            peer_hits: snap.peer_hits,
        }
    }

    /// Whether a peer is currently circuit-broken. Expired cooldowns
    /// are pruned on the way.
    fn peer_is_down(&self, peer: &str) -> bool {
        let mut down = self.peer_down.lock().unwrap_or_else(PoisonError::into_inner);
        match down.get(peer) {
            Some(&until) if Instant::now() < until => true,
            Some(_) => {
                down.remove(peer);
                false
            }
            None => false,
        }
    }

    fn mark_peer_down(&self, peer: &str) {
        self.peer_down
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(peer.to_string(), Instant::now() + PEER_DOWN_COOLDOWN);
    }
}

/// Renders a [`ServeSnapshot`] as the JSON body of a `metrics` reply.
pub fn render_metrics(snap: &ServeSnapshot) -> String {
    let mut out = String::with_capacity(256);
    out.push_str("{\"frames\":{");
    for (i, kind) in SERVE_FRAME_KINDS.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{kind}\":{}", snap.frames[i]);
    }
    let _ = write!(
        out,
        "}},\"protocol_errors\":{},\"admission_rejects\":{},\"drain_rejects\":{},\
         \"cells_admitted\":{},\"cells_evaluated\":{},\"cache_hits\":{},\"cache_misses\":{},\
         \"cache_hit_rate\":{:.6},\"approx_answered\":{},\"peer_hits\":{},\"peer_misses\":{},\
         \"recovered\":{},\"queue_depth\":{},\"queue_depth_peak\":{},\"latency\":{{",
        snap.protocol_errors,
        snap.admission_rejects,
        snap.drain_rejects,
        snap.cells_admitted,
        snap.cells_evaluated,
        snap.cache_hits,
        snap.cache_misses,
        snap.cache_hit_rate(),
        snap.approx_answered,
        snap.peer_hits,
        snap.peer_misses,
        snap.recovered,
        snap.queue_depth,
        snap.queue_depth_peak,
    );
    for (i, kind) in SERVE_FRAME_KINDS.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let p50 = snap.latency_quantile_ms(i, 0.5);
        let p99 = snap.latency_quantile_ms(i, 0.99);
        let _ = write!(
            out,
            "\"{kind}\":{{\"samples\":{},\"p50_ms\":{},\"p99_ms\":{}}}",
            snap.latency_ms[i].samples(),
            p50.map_or("null".to_string(), |v| v.to_string()),
            p99.map_or("null".to_string(), |v| v.to_string()),
        );
    }
    out.push_str("}}");
    out
}

/// A bound daemon, ready to [`run`](Server::run).
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    config: ServeConfig,
    killed: Arc<AtomicBool>,
}

impl Server {
    /// Binds the listen socket (resolving port 0 to a concrete port).
    ///
    /// # Errors
    ///
    /// [`CcsError::Protocol`] when the address cannot be bound.
    pub fn bind(config: ServeConfig) -> Result<Server, CcsError> {
        let listener = TcpListener::bind(&config.addr).map_err(|e| CcsError::Protocol {
            message: format!("bind {}: {e}", config.addr),
        })?;
        let local_addr = listener.local_addr().map_err(|e| CcsError::Protocol {
            message: format!("local_addr: {e}"),
        })?;
        Ok(Server {
            listener,
            local_addr,
            config,
            killed: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (concrete even when the config said port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A handle that can crash this daemon from another thread (chaos
    /// testing). Grab it before [`run`](Server::run) consumes `self`.
    pub fn kill_switch(&self) -> KillSwitch {
        KillSwitch {
            flag: Arc::clone(&self.killed),
        }
    }

    /// Serves until a `drain` frame completes: accepts connections,
    /// evaluates admitted cells, then drains and returns.
    ///
    /// # Errors
    ///
    /// [`CcsError::Checkpoint`] when the journal cannot be created;
    /// [`CcsError::Protocol`] when the listener breaks.
    pub fn run(self) -> Result<(), CcsError> {
        let Server {
            listener,
            local_addr,
            config,
            killed,
        } = self;
        let mut replayed: Vec<CheckpointRecord> = Vec::new();
        let journal = match &config.journal {
            Some(path) if config.recover => {
                let (journal, state) = Journal::recover(
                    path,
                    &local_addr.to_string(),
                    config.workers,
                    config.queue_capacity,
                )?;
                replayed = state.records;
                Some(journal)
            }
            Some(path) => Some(Journal::create(
                path,
                &local_addr.to_string(),
                config.workers,
                config.queue_capacity,
            )?),
            None => None,
        };
        let shared = Shared {
            queue: BoundedQueue::new(config.queue_capacity.max(1)),
            cache: ResultCache::new(config.cache_capacity),
            traces: match config.trace_capacity {
                Some(cap) => TraceStore::bounded(cap),
                None => TraceStore::new(),
            },
            metrics: ServeMetrics::new(),
            journal,
            resilience: config.resilience,
            workers: config.workers.max(1),
            peers: config.peers.clone(),
            peer_timeout: config.peer_timeout,
            peer_down: Mutex::new(HashMap::new()),
            frame_timeout: config.frame_timeout,
            outstanding: AtomicU64::new(0),
            draining: AtomicBool::new(false),
            stop: AtomicBool::new(false),
            killed,
        };
        // Replayed results become cache entries before the first accept,
        // so the recovered shard answers its journaled cells as hits
        // from the very first submission (the put ignores non-"ok"
        // records, exactly like the live path).
        let mut recovered = 0u64;
        for record in &replayed {
            if record.status == "ok" {
                shared.cache.put(record);
                recovered += 1;
            }
        }
        if recovered > 0 {
            shared.metrics.record_recovered(recovered);
        }
        listener
            .set_nonblocking(true)
            .map_err(|e| CcsError::Protocol {
                message: format!("set_nonblocking: {e}"),
            })?;

        std::thread::scope(|scope| {
            for _ in 0..shared.workers {
                scope.spawn(|| worker_loop(&shared));
            }
            loop {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        let shared = &shared;
                        scope.spawn(move || handle_connection(shared, stream));
                    }
                    Err(e)
                        if e.kind() == ErrorKind::WouldBlock
                            || e.kind() == ErrorKind::TimedOut =>
                    {
                        if shared.killed.load(Ordering::SeqCst) {
                            break;
                        }
                        if shared.draining.load(Ordering::SeqCst)
                            && shared.outstanding.load(Ordering::SeqCst) == 0
                        {
                            break;
                        }
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(e) => {
                        // A broken listener is fatal; stop everything.
                        shared.draining.store(true, Ordering::SeqCst);
                        shared.queue.close();
                        shared.stop.store(true, Ordering::SeqCst);
                        panic!("accept failed: {e}");
                    }
                }
            }
            if shared.killed.load(Ordering::SeqCst) {
                // Crash semantics: drop the backlog on the floor, no
                // `drained` marker — the journal must look exactly as
                // kill -9 would leave it, mid-sentence. (Dropping the
                // queued jobs drops their reply senders, so handlers
                // unblock; the stop flag then suppresses `grid_done`.)
                shared.stop.store(true, Ordering::SeqCst);
                shared.queue.close_now();
            } else {
                // Drained: stop workers (pop → None) and handlers (next
                // read-timeout poll observes the stop flag).
                shared.queue.close();
                shared.stop.store(true, Ordering::SeqCst);
                if let Some(j) = &shared.journal {
                    j.append(JournalEvent::Drained { seq: 0 });
                }
            }
        });
        Ok(())
    }
}

/// One worker: pop a job, resolve it (cache or evaluation), fan the
/// record out to the submission that asked, and retire the cell.
fn worker_loop(shared: &Shared) {
    while let Some(job) = shared.queue.pop() {
        // A racing submission may have filled the cache while this job
        // sat queued; reuse its result rather than re-simulating. This
        // second consultation counts as a hit so the daemon's hit tally
        // agrees with the number of `cached` records clients receive.
        let mut from_peer = false;
        let peered = match shared.cache.get(&job.key) {
            Some(record) => {
                shared.metrics.record_cache_hit();
                Some(record)
            }
            // A sibling shard may already hold this cell (it owned the
            // key before a failover re-placed it, or recovered it from
            // its journal). Results are deterministic, so a peer's
            // record is bit-identical to what a local evaluation would
            // produce — install it and answer as a cache hit.
            None => match peer_lookup(shared, &job.key) {
                Some(record) => {
                    shared.cache.put(&record);
                    shared.metrics.record_peer_hit();
                    from_peer = true;
                    Some(record)
                }
                None => None,
            },
        };
        let (record, cached) = match peered {
            Some(record) => (record, true),
            None => {
                let results = run_cells(
                    std::slice::from_ref(&job.spec),
                    1,
                    &shared.resilience,
                    |_, spec, cancel| {
                        let trace = ccs_core::fetch_cell_trace(&shared.traces, spec);
                        let policy_config =
                            spec.policy_config.unwrap_or_else(|| spec.policy.config());
                        run_custom_cancellable(
                            &spec.config,
                            &trace,
                            policy_config,
                            spec.policy,
                            &spec.options,
                            cancel,
                        )
                    },
                    |_, _| {},
                );
                let record = CheckpointRecord::from_result(&results[0]);
                shared.cache.put(&record);
                (record, false)
            }
        };
        if let Some(j) = &shared.journal {
            j.append(JournalEvent::CellDone {
                seq: 0,
                key: record.key.clone(),
                status: record.status.clone(),
                attempts: record.attempts as u64,
                cycles: record.cycles,
                cpi_bits: record.cpi_bits,
                digest: record.digest,
                error: record.error.clone(),
            });
        }
        // Account the evaluation before replying, so a client that sees
        // its grid finish also sees the daemon's counters agree. A
        // peer-answered cell already left the queue via
        // `record_peer_hit`, and counting it as evaluated would claim
        // work this shard never did.
        if !from_peer {
            shared.metrics.record_evaluated();
        }
        // The handler may have died with its client; a failed send must
        // not kill the worker (the cell is still journaled and cached).
        let _ = job.reply.send((job.indices, record, cached));
        shared.outstanding.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Asks each configured peer shard (skipping circuit-broken ones) for
/// `key` from its *local* cache. First hit wins. Every socket operation
/// is bounded by `peer_timeout`, and a peer that fails transport-wise
/// is circuit-broken for [`PEER_DOWN_COOLDOWN`] so a dead shard cannot
/// tax every subsequent miss with a connect timeout.
fn peer_lookup(shared: &Shared, key: &str) -> Option<CheckpointRecord> {
    if shared.peers.is_empty() {
        return None;
    }
    for peer in &shared.peers {
        if shared.peer_is_down(peer) {
            continue;
        }
        match peer_lookup_one(peer, key, shared.peer_timeout) {
            Ok(Some(record)) => return Some(record),
            Ok(None) => {}
            Err(_) => shared.mark_peer_down(peer),
        }
    }
    shared.metrics.record_peer_miss();
    None
}

/// One bounded cache-lookup round trip against one peer.
fn peer_lookup_one(
    peer: &str,
    key: &str,
    timeout: Duration,
) -> Result<Option<CheckpointRecord>, CcsError> {
    use crate::protocol::ServeError;
    let addr: SocketAddr = peer.parse().map_err(|_| CcsError::Protocol {
        message: format!("peer address {peer:?} is not host:port"),
    })?;
    let mut stream = TcpStream::connect_timeout(&addr, timeout).map_err(ServeError::from)?;
    stream.set_nodelay(true).ok();
    stream
        .set_read_timeout(Some(timeout.min(Duration::from_millis(50)).max(Duration::from_millis(1))))
        .map_err(ServeError::from)?;
    stream.set_write_timeout(Some(timeout)).map_err(ServeError::from)?;
    let request = Request::CacheLookup {
        key: key.to_string(),
    };
    write_frame(&mut stream, &request.encode())?;
    let deadline = Instant::now() + timeout;
    let mut reader = FrameReader::new();
    loop {
        match reader.poll(&mut stream) {
            Ok(Poll::Frame(payload)) => {
                return match Response::decode(&payload)? {
                    Response::Cell { record, .. } => Ok(Some(record.to_checkpoint())),
                    Response::NotFound { .. } => Ok(None),
                    other => Err(CcsError::Protocol {
                        message: format!("unexpected cache_lookup reply: {other:?}"),
                    }),
                };
            }
            Ok(Poll::Pending) => {
                if Instant::now() >= deadline {
                    return Err(CcsError::Timeout {
                        what: format!("cache_lookup reply from {peer}"),
                    });
                }
            }
            Ok(Poll::Closed) => {
                return Err(CcsError::Protocol {
                    message: format!("peer {peer} closed during cache_lookup"),
                })
            }
            Err(e) => return Err(e.into()),
        }
    }
}

/// Tallies for a `grid_done` reply.
#[derive(Default)]
struct GridTally {
    ok: usize,
    failed: usize,
    timed_out: usize,
    cached: usize,
}

impl GridTally {
    fn add(&mut self, record: &WireCellRecord) {
        match record.status.as_str() {
            "ok" => self.ok += 1,
            "TIMEOUT" => self.timed_out += 1,
            _ => self.failed += 1,
        }
        if record.cached {
            self.cached += 1;
        }
    }
}

/// Serves one client connection until it closes, desynchronizes, or the
/// daemon stops.
fn handle_connection(shared: &Shared, mut stream: TcpStream) {
    // The read timeout doubles as the stop-flag poll interval; the
    // FrameReader preserves partial frames across timeouts. The write
    // timeout bounds every reply, so a client that stops reading cannot
    // pin this handler (or the drain path) in `write`.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let _ = stream.set_write_timeout(Some(shared.frame_timeout));
    let _ = stream.set_nodelay(true);
    let mut reader = FrameReader::new();
    // Slow-loris defense: the clock starts when a partial frame appears
    // and resets when the buffer empties. An idle connection (empty
    // buffer) may sit forever; a half-sent frame may not.
    let mut partial_since: Option<Instant> = None;
    loop {
        match reader.poll(&mut stream) {
            Ok(Poll::Frame(payload)) => {
                partial_since = None;
                if !handle_frame(shared, &mut stream, &payload) {
                    break;
                }
            }
            Ok(Poll::Pending) => {
                if shared.stop.load(Ordering::SeqCst) {
                    break;
                }
                if reader.buffered() == 0 {
                    partial_since = None;
                } else {
                    let since = *partial_since.get_or_insert_with(Instant::now);
                    if since.elapsed() >= shared.frame_timeout {
                        shared.metrics.record_protocol_error();
                        let reply = Response::Error {
                            message: format!(
                                "timeout: partial frame stalled longer than {} ms",
                                shared.frame_timeout.as_millis()
                            ),
                        };
                        let _ = write_frame(&mut stream, &reply.encode());
                        break;
                    }
                }
            }
            Ok(Poll::Closed) => break,
            Err(err) => {
                // Framing is lost (bad magic, oversized prefix, hard IO
                // error): tell the peer what happened if the socket
                // still works, then hang up.
                shared.metrics.record_protocol_error();
                let reply = Response::Error {
                    message: err.to_string(),
                };
                let _ = write_frame(&mut stream, &reply.encode());
                break;
            }
        }
    }
}

/// Decodes and answers one frame. Returns `false` when the connection
/// should close.
fn handle_frame(shared: &Shared, stream: &mut TcpStream, payload: &str) -> bool {
    let started = Instant::now();
    let request = match Request::decode(payload) {
        Ok(req) => req,
        Err(err) => {
            // Framing survived; the payload did not. Answer the error
            // and keep the connection.
            shared.metrics.record_protocol_error();
            let reply = Response::Error {
                message: err.to_string(),
            };
            return write_frame(stream, &reply.encode()).is_ok();
        }
    };
    let kind = request.kind();
    shared.metrics.record_frame(kind);
    let keep = match request {
        Request::SubmitCell { id, cell, approx } => {
            handle_submission(shared, stream, id, vec![cell], false, approx)
        }
        Request::SubmitGrid { id, cells } => {
            handle_submission(shared, stream, id, cells, true, false)
        }
        Request::Status => {
            let reply = Response::Status(shared.status());
            write_frame(stream, &reply.encode()).is_ok()
        }
        Request::Metrics => {
            let reply = Response::Metrics {
                json: render_metrics(&shared.metrics.snapshot()),
            };
            write_frame(stream, &reply.encode()).is_ok()
        }
        Request::CacheLookup { key } => {
            // Answered from the *local* cache only — never queued, never
            // forwarded — so peering lookups cannot recurse or generate
            // work on the queried shard.
            let reply = match shared.cache.get(&key) {
                Some(record) => Response::Cell {
                    id: 0,
                    record: WireCellRecord::from_checkpoint(0, &record, true),
                },
                None => Response::NotFound { key },
            };
            write_frame(stream, &reply.encode()).is_ok()
        }
        Request::Drain => {
            let pending = shared.outstanding.load(Ordering::SeqCst);
            shared.draining.store(true, Ordering::SeqCst);
            if let Some(j) = &shared.journal {
                j.append(JournalEvent::DrainRequested { seq: 0, pending });
            }
            let reply = Response::Draining { pending };
            write_frame(stream, &reply.encode()).is_ok()
        }
    };
    shared
        .metrics
        .record_latency_ms(kind, crate::saturating_millis(started.elapsed()));
    keep
}

/// Admits and answers one submission (a single cell or a grid).
///
/// Reply sequence on admission: one `cell` frame per submitted index in
/// completion order (cache hits first), then — for grids — a
/// `grid_done` tally. On rejection: exactly one `busy` or `rejected`
/// frame and nothing else (admission is all-or-nothing, so the client
/// never untangles a half-answered grid).
///
/// With `approx` set the submission never reaches the queue: cached
/// cells are answered exactly (an envelope is never a downgrade from a
/// result already in hand), everything else gets an `approx` frame
/// carrying `ccs-predict`'s analytic envelope. Envelopes are never
/// cached — the cache holds only simulated results.
fn handle_submission(
    shared: &Shared,
    stream: &mut TcpStream,
    id: u64,
    cells: Vec<crate::protocol::WireCellSpec>,
    grid: bool,
    approx: bool,
) -> bool {
    if shared.draining.load(Ordering::SeqCst) {
        shared.metrics.record_drain_reject();
        if let Some(j) = &shared.journal {
            j.append(JournalEvent::RejectedEvent {
                seq: 0,
                id,
                reason: "draining".into(),
            });
        }
        let reply = Response::Rejected {
            reason: "draining".into(),
        };
        return write_frame(stream, &reply.encode()).is_ok();
    }

    // Resolve the wire cells to specs before touching any shared state;
    // an unparseable cell rejects the whole submission.
    let mut specs = Vec::with_capacity(cells.len());
    for (index, wire) in cells.iter().enumerate() {
        match wire.to_cell() {
            Ok(spec) => specs.push(spec),
            Err(err) => {
                shared.metrics.record_protocol_error();
                let reply = Response::Rejected {
                    reason: format!("cell {index}: {err}"),
                };
                return write_frame(stream, &reply.encode()).is_ok();
            }
        }
    }

    if approx {
        return handle_approx(shared, stream, id, &specs);
    }

    // Partition into cache hits (answered immediately) and unique-key
    // jobs (queued once per key, fanned out to every index).
    let (reply_tx, reply_rx) = mpsc::channel();
    let mut hits: Vec<(usize, CheckpointRecord)> = Vec::new();
    let mut pending: HashMap<String, (CellSpec, Vec<usize>)> = HashMap::new();
    let mut order: Vec<String> = Vec::new();
    for (index, spec) in specs.iter().enumerate() {
        let key = cell_key(spec);
        if let Some(record) = shared.cache.get(&key) {
            shared.metrics.record_cache_hit();
            hits.push((index, record));
            continue;
        }
        shared.metrics.record_cache_miss();
        match pending.get_mut(&key) {
            Some((_, indices)) => indices.push(index),
            None => {
                order.push(key.clone());
                pending.insert(key, (*spec, vec![index]));
            }
        }
    }
    let jobs: Vec<Job> = order
        .into_iter()
        .map(|key| {
            let (spec, indices) = pending.remove(&key).expect("ordered key is pending");
            Job {
                spec,
                key,
                indices,
                reply: reply_tx.clone(),
            }
        })
        .collect();
    drop(reply_tx);

    let job_count = jobs.len();
    // Publish the outstanding count *before* admission so the drain
    // handshake can never observe admitted-but-uncounted cells.
    shared
        .outstanding
        .fetch_add(job_count as u64, Ordering::SeqCst);
    match shared.queue.admit(jobs) {
        Admission::Admitted { .. } => {}
        Admission::Busy { retry_after_hint } => {
            shared
                .outstanding
                .fetch_sub(job_count as u64, Ordering::SeqCst);
            shared.metrics.record_admission_reject();
            if let Some(j) = &shared.journal {
                j.append(JournalEvent::RejectedEvent {
                    seq: 0,
                    id,
                    reason: "busy".into(),
                });
            }
            let reply = Response::Busy {
                retry_after_ms: crate::saturating_millis(retry_after_hint),
            };
            return write_frame(stream, &reply.encode()).is_ok();
        }
    }
    shared.metrics.record_admitted(job_count as u64);
    if let Some(j) = &shared.journal {
        j.append(JournalEvent::Admitted {
            seq: 0,
            id,
            cells: cells.len() as u64,
            cached: hits.len() as u64,
        });
    }

    // Stream the answers. A write failure means the client is gone; the
    // admitted jobs still run (workers ignore the dead channel), so the
    // daemon's accounting stays intact either way.
    let mut tally = GridTally::default();
    let mut write_ok = true;
    for (index, record) in &hits {
        let wire = WireCellRecord::from_checkpoint(*index, record, true);
        tally.add(&wire);
        if write_ok {
            let reply = Response::Cell {
                id,
                record: wire,
            };
            write_ok = write_frame(stream, &reply.encode()).is_ok();
        }
    }
    for _ in 0..job_count {
        let Ok((indices, record, cached)) = reply_rx.recv() else {
            // Workers died (queue closed mid-flight); nothing more
            // will arrive for this submission.
            break;
        };
        for index in indices {
            let wire = WireCellRecord::from_checkpoint(index, &record, cached);
            tally.add(&wire);
            if write_ok {
                let reply = Response::Cell {
                    id,
                    record: wire,
                };
                write_ok = write_frame(stream, &reply.encode()).is_ok();
            }
        }
    }
    // A killed shard must look *crashed*, not finished: suppressing
    // `grid_done` here means the client sees an incomplete grid and
    // fails the unanswered cells over to the next ring successor.
    if grid && write_ok && !shared.killed.load(Ordering::SeqCst) {
        let reply = Response::GridDone {
            id,
            cells: cells.len(),
            ok: tally.ok,
            failed: tally.failed,
            timed_out: tally.timed_out,
            cached: tally.cached,
        };
        write_ok = write_frame(stream, &reply.encode()).is_ok();
    }
    write_ok
}

/// Answers an approximate submission without touching the worker queue.
///
/// Cache hits still return the exact simulated record (marked
/// `cached`); misses return the analytic envelope and count toward
/// `approx_answered`. The client escalates by re-submitting without the
/// `approx` flag — the envelope never enters the result cache, so the
/// escalated run is a plain first-class evaluation.
fn handle_approx(
    shared: &Shared,
    stream: &mut TcpStream,
    id: u64,
    specs: &[CellSpec],
) -> bool {
    let mut write_ok = true;
    for (index, spec) in specs.iter().enumerate() {
        let key = cell_key(spec);
        let reply = match shared.cache.get(&key) {
            Some(record) => {
                shared.metrics.record_cache_hit();
                Response::Cell {
                    id,
                    record: WireCellRecord::from_checkpoint(index, &record, true),
                }
            }
            None => {
                shared.metrics.record_cache_miss();
                let trace = ccs_core::fetch_cell_trace(&shared.traces, spec);
                let mut p = ccs_predict::predict(&spec.config, &trace)
                    .with_cycle_budget(spec.options.cycle_budget);
                // The envelope is sound for any policy, but its
                // tightness tag is calibrated on the static ladder;
                // dynamic policies get the tag demoted one step.
                if spec.policy.is_dynamic() {
                    p = p.demoted();
                }
                shared.metrics.record_approx();
                if let Some(j) = &shared.journal {
                    j.append(JournalEvent::ApproxServed {
                        seq: 0,
                        key: key.clone(),
                    });
                }
                Response::Approx {
                    id,
                    key,
                    cycles_lo: p.cycles_lo,
                    cycles_hi: p.cycles_hi,
                    ipc_hi_bits: p.ipc_hi.to_bits(),
                    confidence: p.confidence.name().to_string(),
                }
            }
        };
        if write_ok {
            write_ok = write_frame(stream, &reply.encode()).is_ok();
        }
    }
    write_ok
}
