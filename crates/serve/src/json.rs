//! Minimal hand-rolled JSON helpers for the wire protocol.
//!
//! The workspace deliberately carries no JSON dependency (the vendored
//! `serde` is an offline stub), so the protocol layer renders and
//! parses its flat payloads with the same style of field scanners the
//! checkpoint manifest uses — extended with a balanced-bracket array
//! splitter for the one nested shape we need (`"cells":[{...},...]`).
//!
//! These are *scanners*, not a general JSON parser: a field lookup
//! returns the first occurrence of `"name":` anywhere in the payload,
//! so every payload shape keeps its field names unique across nesting
//! levels (the protocol module upholds this). Malformed input yields
//! `None`, never a panic — the fuzz suite leans on that.

use std::fmt::Write as _;

/// Escapes `s` into `out` as JSON string contents (no surrounding
/// quotes).
pub fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// `s` as a quoted JSON string.
pub fn quoted(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    escape_into(s, &mut out);
    out.push('"');
    out
}

/// Reverses [`escape_into`]. Lenient: a malformed escape is passed
/// through rather than failing, matching the manifest parser.
pub fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                if let Some(c) = u32::from_str_radix(&hex, 16).ok().and_then(char::from_u32) {
                    out.push(c);
                }
            }
            Some(other) => out.push(other),
            None => {}
        }
    }
    out
}

/// The raw (still escaped) contents of the first `"name":"..."`, or
/// `None`.
fn raw_str_field<'a>(obj: &'a str, name: &str) -> Option<&'a str> {
    let tag = format!("\"{name}\":\"");
    let start = obj.find(&tag)? + tag.len();
    let rest = &obj[start..];
    let bytes = rest.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return Some(&rest[..i]),
            _ => i += 1,
        }
    }
    None
}

/// The first `"name":"..."` string field, unescaped.
pub fn str_field(obj: &str, name: &str) -> Option<String> {
    raw_str_field(obj, name).map(unescape)
}

/// The first `"name":...` string-or-null field: `Some(None)` for an
/// explicit `null`.
pub fn opt_str_field(obj: &str, name: &str) -> Option<Option<String>> {
    if obj.contains(&format!("\"{name}\":null")) {
        return Some(None);
    }
    str_field(obj, name).map(Some)
}

/// The first `"name":<digits>` field.
pub fn u64_field(obj: &str, name: &str) -> Option<u64> {
    let tag = format!("\"{name}\":");
    let start = obj.find(&tag)? + tag.len();
    let digits = &obj[start..];
    let end = digits
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(digits.len());
    if end == 0 {
        return None;
    }
    digits[..end].parse().ok()
}

/// The first `"name":<digits|null>` field: `Some(None)` for `null`.
pub fn opt_u64_field(obj: &str, name: &str) -> Option<Option<u64>> {
    if obj.contains(&format!("\"{name}\":null")) {
        return Some(None);
    }
    u64_field(obj, name).map(Some)
}

/// The first `"name":true|false` field.
pub fn bool_field(obj: &str, name: &str) -> Option<bool> {
    let tag = format!("\"{name}\":");
    let start = obj.find(&tag)? + tag.len();
    let rest = &obj[start..];
    if rest.starts_with("true") {
        Some(true)
    } else if rest.starts_with("false") {
        Some(false)
    } else {
        None
    }
}

/// Splits the first `"name":[...]` array into its top-level elements,
/// respecting nested objects/arrays and strings. Returns `None` when
/// the field is missing or the brackets never balance (truncated
/// payload); an empty array yields an empty vector.
pub fn array_field<'a>(obj: &'a str, name: &str) -> Option<Vec<&'a str>> {
    let tag = format!("\"{name}\":[");
    let start = obj.find(&tag)? + tag.len();
    let rest = &obj[start..];
    let bytes = rest.as_bytes();
    let mut elements = Vec::new();
    let mut depth = 0usize; // nesting below the array itself
    let mut elem_start = 0usize;
    let mut in_string = false;
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if in_string {
            match b {
                b'\\' => i += 1, // skip the escaped byte
                b'"' => in_string = false,
                _ => {}
            }
        } else {
            match b {
                b'"' => in_string = true,
                b'{' | b'[' => depth += 1,
                b'}' | b']' if depth > 0 => depth -= 1,
                b',' if depth == 0 => {
                    elements.push(rest[elem_start..i].trim());
                    elem_start = i + 1;
                }
                b']' => {
                    // depth == 0: the array closes.
                    let last = rest[elem_start..i].trim();
                    if !last.is_empty() {
                        elements.push(last);
                    }
                    return Some(elements);
                }
                _ => {}
            }
        }
        i += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_fields_scan() {
        let obj = r#"{"v":1,"type":"status","id":42,"ok":true,"err":null,"msg":"a\"b"}"#;
        assert_eq!(u64_field(obj, "v"), Some(1));
        assert_eq!(u64_field(obj, "id"), Some(42));
        assert_eq!(str_field(obj, "type").as_deref(), Some("status"));
        assert_eq!(bool_field(obj, "ok"), Some(true));
        assert_eq!(opt_str_field(obj, "err"), Some(None));
        assert_eq!(str_field(obj, "msg").as_deref(), Some("a\"b"));
        assert_eq!(u64_field(obj, "missing"), None);
        assert_eq!(u64_field(obj, "type"), None, "string is not a number");
    }

    #[test]
    fn quoting_round_trips() {
        let nasty = "line\nquote\" slash\\ tab\t\u{1}end";
        let q = quoted(nasty);
        let obj = format!("{{\"m\":{q}}}");
        assert_eq!(str_field(&obj, "m").as_deref(), Some(nasty));
    }

    #[test]
    fn arrays_split_on_top_level_commas_only() {
        let obj = r#"{"cells":[{"a":1,"s":"x,y"},{"a":2,"n":[1,2]},{"a":3}],"id":9}"#;
        let cells = array_field(obj, "cells").unwrap();
        assert_eq!(cells.len(), 3);
        assert_eq!(u64_field(cells[0], "a"), Some(1));
        assert_eq!(str_field(cells[0], "s").as_deref(), Some("x,y"));
        assert_eq!(u64_field(cells[1], "a"), Some(2));
        assert_eq!(u64_field(cells[2], "a"), Some(3));
        assert_eq!(array_field(obj, "nope"), None);
        assert_eq!(array_field(r#"{"cells":[]}"#, "cells").unwrap().len(), 0);
    }

    #[test]
    fn truncated_arrays_and_strings_yield_none() {
        assert_eq!(array_field(r#"{"cells":[{"a":1},{"a""#, "cells"), None);
        assert_eq!(str_field(r#"{"m":"never closed"#, "m"), None);
    }
}
