//! Length-prefixed framing over a byte stream.
//!
//! Every frame is `b"CCS1"` (4 magic bytes) + a `u32` little-endian
//! payload length + that many bytes of UTF-8 JSON. The magic catches
//! peers speaking the wrong protocol (or a desynchronized stream)
//! immediately instead of interpreting garbage as a length; the length
//! is validated against [`MAX_FRAME_LEN`] *before* any payload
//! allocation, so a hostile prefix cannot make the process reserve
//! gigabytes.
//!
//! [`FrameReader`] accumulates bytes across reads: a frame split over
//! many TCP segments — or interrupted by a read timeout — is resumed,
//! not dropped. That matters for the daemon's drain loop, which polls
//! with short read timeouts and must not lose a client's half-arrived
//! request.

use crate::protocol::{ServeError, MAX_FRAME_LEN};
use std::io::{ErrorKind, Read, Write};

/// The 4-byte frame magic.
pub const MAGIC: [u8; 4] = *b"CCS1";

/// Header size: magic + length prefix.
const HEADER_LEN: usize = 8;

/// Renders `payload` as one frame.
pub fn frame_bytes(payload: &str) -> Vec<u8> {
    let body = payload.as_bytes();
    let mut out = Vec::with_capacity(HEADER_LEN + body.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(body);
    out
}

/// Writes one frame to `w` and flushes it.
///
/// # Errors
///
/// [`ServeError::Io`] on transport failure.
pub fn write_frame<W: Write>(w: &mut W, payload: &str) -> Result<(), ServeError> {
    w.write_all(&frame_bytes(payload))?;
    w.flush()?;
    Ok(())
}

/// What one [`FrameReader::poll`] call produced.
#[derive(Debug, PartialEq, Eq)]
pub enum Poll {
    /// A complete frame's payload.
    Frame(String),
    /// No complete frame yet; call again (the read hit a timeout /
    /// would-block, or the frame is still arriving).
    Pending,
    /// The peer shut down cleanly on a frame boundary.
    Closed,
}

/// An incremental frame decoder over any [`Read`].
///
/// Owns a buffer that survives short reads, timeouts, and frames that
/// arrive one byte at a time. Errors about the *stream* (bad magic,
/// oversized length, mid-frame EOF) are unrecoverable — the framing is
/// lost; errors about the *payload* are the protocol layer's business.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
}

impl FrameReader {
    /// A reader with an empty buffer.
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// Bytes buffered but not yet consumed (for tests and diagnostics).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Validates whatever header bytes have arrived so far, and returns
    /// the declared payload length once the full header is present.
    fn header_check(&self) -> Result<Option<usize>, ServeError> {
        let have = self.buf.len().min(MAGIC.len());
        if self.buf[..have] != MAGIC[..have] {
            return Err(ServeError::Frame {
                message: format!(
                    "bad magic {:02x?} (expected {:02x?})",
                    &self.buf[..have],
                    &MAGIC[..have]
                ),
            });
        }
        if self.buf.len() < HEADER_LEN {
            return Ok(None);
        }
        let len = u32::from_le_bytes([self.buf[4], self.buf[5], self.buf[6], self.buf[7]]);
        if len as usize > MAX_FRAME_LEN {
            return Err(ServeError::Oversized {
                declared: u64::from(len),
                limit: MAX_FRAME_LEN,
            });
        }
        Ok(Some(len as usize))
    }

    /// Extracts a complete frame from the buffer, if one has fully
    /// arrived.
    fn take_frame(&mut self) -> Result<Option<String>, ServeError> {
        let Some(len) = self.header_check()? else {
            return Ok(None);
        };
        if self.buf.len() < HEADER_LEN + len {
            return Ok(None);
        }
        let rest = self.buf.split_off(HEADER_LEN + len);
        let frame = std::mem::replace(&mut self.buf, rest);
        match String::from_utf8(frame[HEADER_LEN..].to_vec()) {
            Ok(s) => Ok(Some(s)),
            Err(_) => Err(ServeError::Frame {
                message: "payload is not UTF-8".into(),
            }),
        }
    }

    /// Feeds bytes by hand (for tests and fuzzing, where there is no
    /// socket) and returns every frame completed by them.
    ///
    /// # Errors
    ///
    /// As for [`poll`](Self::poll), minus transport errors.
    pub fn feed(&mut self, bytes: &[u8]) -> Result<Vec<String>, ServeError> {
        self.buf.extend_from_slice(bytes);
        let mut frames = Vec::new();
        while let Some(f) = self.take_frame()? {
            frames.push(f);
        }
        Ok(frames)
    }

    /// Reads from `r` until a full frame is available, the read would
    /// block, or the stream ends.
    ///
    /// A `WouldBlock`/`TimedOut` read error is *not* an error here — it
    /// yields [`Poll::Pending`] with all partial bytes retained, which
    /// is what lets the daemon poll sockets with read timeouts during
    /// drain without corrupting half-read frames.
    ///
    /// # Errors
    ///
    /// [`ServeError::Frame`] / [`ServeError::Oversized`] when the
    /// stream desynchronizes, [`ServeError::Io`] on hard transport
    /// errors.
    pub fn poll<R: Read>(&mut self, r: &mut R) -> Result<Poll, ServeError> {
        loop {
            if let Some(frame) = self.take_frame()? {
                return Ok(Poll::Frame(frame));
            }
            let mut chunk = [0u8; 4096];
            match r.read(&mut chunk) {
                Ok(0) => {
                    return if self.buf.is_empty() {
                        Ok(Poll::Closed)
                    } else {
                        Err(ServeError::Frame {
                            message: format!("eof mid-frame with {} bytes buffered", self.buf.len()),
                        })
                    };
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    return Ok(Poll::Pending);
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(ServeError::Io(e)),
            }
        }
    }

    /// Blocks until a full frame arrives or the stream ends cleanly.
    ///
    /// # Errors
    ///
    /// [`ServeError::Closed`] on a clean close; otherwise as for
    /// [`poll`](Self::poll). `Pending` polls simply loop, so with a
    /// read timeout configured this still blocks (use `poll` directly
    /// when the timeout matters).
    pub fn read_frame<R: Read>(&mut self, r: &mut R) -> Result<String, ServeError> {
        loop {
            match self.poll(r)? {
                Poll::Frame(f) => return Ok(f),
                Poll::Pending => continue,
                Poll::Closed => return Err(ServeError::Closed),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A reader that yields its script one slice at a time, then
    /// `WouldBlock` once, then the rest.
    struct Dribble {
        chunks: Vec<Vec<u8>>,
        blocked: bool,
    }

    impl Read for Dribble {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.chunks.is_empty() {
                return Ok(0);
            }
            if !self.blocked {
                self.blocked = true;
                return Err(std::io::Error::new(ErrorKind::WouldBlock, "not yet"));
            }
            self.blocked = false;
            let chunk = self.chunks.remove(0);
            buf[..chunk.len()].copy_from_slice(&chunk);
            Ok(chunk.len())
        }
    }

    #[test]
    fn frames_survive_byte_at_a_time_arrival_with_timeouts() {
        let bytes = frame_bytes("{\"v\":1}");
        let mut src = Dribble {
            chunks: bytes.iter().map(|b| vec![*b]).collect(),
            blocked: false,
        };
        let mut reader = FrameReader::new();
        let mut pendings = 0;
        let frame = loop {
            match reader.poll(&mut src).unwrap() {
                Poll::Frame(f) => break f,
                Poll::Pending => pendings += 1,
                Poll::Closed => panic!("closed early"),
            }
        };
        assert_eq!(frame, "{\"v\":1}");
        assert!(pendings >= bytes.len(), "every byte cost one WouldBlock");
        assert_eq!(reader.buffered(), 0);
    }

    #[test]
    fn back_to_back_frames_split_correctly() {
        let mut bytes = frame_bytes("first");
        bytes.extend_from_slice(&frame_bytes("second"));
        let mut reader = FrameReader::new();
        let frames = reader.feed(&bytes).unwrap();
        assert_eq!(frames, vec!["first".to_string(), "second".to_string()]);
    }

    #[test]
    fn bad_magic_is_detected_from_the_first_wrong_byte() {
        let mut reader = FrameReader::new();
        let err = reader.feed(b"HTTP/1.1 200 OK").unwrap_err();
        assert!(matches!(err, ServeError::Frame { .. }), "{err}");
    }

    #[test]
    fn oversized_length_is_rejected_before_any_payload() {
        let mut bytes = MAGIC.to_vec();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut reader = FrameReader::new();
        let err = reader.feed(&bytes).unwrap_err();
        match err {
            ServeError::Oversized { declared, limit } => {
                assert_eq!(declared, u64::from(u32::MAX));
                assert_eq!(limit, MAX_FRAME_LEN);
            }
            other => panic!("expected Oversized, got {other}"),
        }
    }

    #[test]
    fn limit_sized_frame_is_accepted() {
        let payload = "x".repeat(MAX_FRAME_LEN);
        let mut reader = FrameReader::new();
        let frames = reader.feed(&frame_bytes(&payload)).unwrap();
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].len(), MAX_FRAME_LEN);
    }

    #[test]
    fn eof_mid_frame_is_a_frame_error() {
        let bytes = frame_bytes("truncated payload");
        let mut src = &bytes[..bytes.len() - 3];
        let mut reader = FrameReader::new();
        // feed() won't error (more bytes could come); a stream EOF does.
        assert_eq!(reader.feed(&bytes[..5]).unwrap(), Vec::<String>::new());
        let mut reader = FrameReader::new();
        let err = loop {
            match reader.poll(&mut src) {
                Ok(Poll::Frame(_)) => panic!("frame from truncated bytes"),
                Ok(Poll::Pending) => continue,
                Ok(Poll::Closed) => panic!("clean close mid-frame"),
                Err(e) => break e,
            }
        };
        assert!(matches!(err, ServeError::Frame { .. }), "{err}");
    }

    #[test]
    fn clean_close_between_frames_is_closed() {
        let bytes = frame_bytes("only");
        let mut src = &bytes[..];
        let mut reader = FrameReader::new();
        assert_eq!(reader.poll(&mut src).unwrap(), Poll::Frame("only".into()));
        assert_eq!(reader.poll(&mut src).unwrap(), Poll::Closed);
    }

    #[test]
    fn non_utf8_payload_is_a_frame_error() {
        let mut bytes = MAGIC.to_vec();
        bytes.extend_from_slice(&2u32.to_le_bytes());
        bytes.extend_from_slice(&[0xff, 0xfe]);
        let mut reader = FrameReader::new();
        assert!(reader.feed(&bytes).is_err());
    }
}
