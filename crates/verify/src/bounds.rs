//! Bounds oracle: every simulated result must lie inside its analytic
//! envelope.
//!
//! `ccs-predict` derives, from the trace and machine configuration
//! alone, a sound `[cycles_lo, cycles_hi]` envelope and an IPC ceiling
//! that hold for *every* legal schedule — independent of steering
//! policy, training state, and epoch count. That makes each prediction
//! a free oracle over the entire existing test surface: a simulated
//! result outside its envelope is a bug in either the engine or the
//! bound model, and both are worth a loud failure. [`check_bounds`]
//! runs inside every differential-campaign case
//! ([`crate::campaign::run_case`]) and across the golden corpus
//! (`tests/predict_bounds.rs`), and the seeded perturbations in
//! [`crate::faultinject`] (`ALL_BOUND_MUTATIONS`) prove each rule here
//! is non-vacuous.

use ccs_isa::MachineConfig;
use ccs_predict::Prediction;
use ccs_sim::SimResult;
use ccs_trace::Trace;

/// One violated bound rule, with a readable explanation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundViolation {
    /// Stable rule name (`cycles-under-lo`, `cycles-over-hi`,
    /// `ipc-over-hi`) — what the mutation tests key on.
    pub rule: &'static str,
    /// Human-readable account of the violation.
    pub message: String,
}

impl std::fmt::Display for BoundViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.rule, self.message)
    }
}

/// Checks `result` against the analytic envelope freshly predicted for
/// (`config`, `trace`). Empty means the result respects every bound.
///
/// No cycle budget is applied to the upper edge here: the result being
/// checked already exists, so the engine's own progress limit is the
/// honest ceiling.
pub fn check_bounds(config: &MachineConfig, trace: &Trace, result: &SimResult) -> Vec<BoundViolation> {
    check_bounds_against(&ccs_predict::predict(config, trace), result)
}

/// Checks `result` against an already-computed `prediction`.
///
/// Three rules, each independently useful and each proven non-vacuous
/// by a seeded perturbation in [`crate::faultinject`]:
///
/// * `cycles-under-lo` — the run claims to beat a sound lower bound:
///   a dependence chain or a width/port/fetch/commit counting argument
///   says this cycle count is impossible.
/// * `cycles-over-hi` — the run exceeds the progress-limit ceiling a
///   successful simulation can never report.
/// * `ipc-over-hi` — achieved IPC above `n / cycles_lo`. IEEE division
///   is monotonic in the denominator, so this is exactly equivalent to
///   the first rule for matching `n` — kept separate because IPC is the
///   quantity the paper's figures (and the serve envelope) expose, and
///   a perturbed prediction can violate it alone.
pub fn check_bounds_against(prediction: &Prediction, result: &SimResult) -> Vec<BoundViolation> {
    let mut violations = Vec::new();
    if result.cycles < prediction.cycles_lo {
        violations.push(BoundViolation {
            rule: "cycles-under-lo",
            message: format!(
                "simulated {} cycles, below the analytic lower bound {} \
                 (components: {:?})",
                result.cycles, prediction.cycles_lo, prediction.components
            ),
        });
    }
    if result.cycles > prediction.cycles_hi {
        violations.push(BoundViolation {
            rule: "cycles-over-hi",
            message: format!(
                "simulated {} cycles, above the {}-cycle ceiling a successful run can report",
                result.cycles, prediction.cycles_hi
            ),
        });
    }
    if result.cycles > 0 {
        let achieved = result.records.len() as f64 / result.cycles as f64;
        if achieved > prediction.ipc_hi {
            violations.push(BoundViolation {
                rule: "ipc-over-hi",
                message: format!(
                    "achieved IPC {achieved} exceeds the analytic ceiling {}",
                    prediction.ipc_hi
                ),
            });
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::random_trace;
    use ccs_core::{LocMode, PaperPolicy, PolicyKind, PredictorBank};
    use ccs_isa::ClusterLayout;
    use ccs_trace::Benchmark;

    fn simulate(config: &MachineConfig, trace: &Trace) -> SimResult {
        let bank = PredictorBank::new(LocMode::Quantized16, 0xC1A5);
        let mut policy =
            PaperPolicy::from_config(PolicyKind::Focused.config(), bank, "Focused");
        ccs_sim::simulate(config, trace, &mut policy).expect("simulation succeeds")
    }

    #[test]
    fn engine_results_respect_their_envelopes() {
        for (layout, trace) in [
            (ClusterLayout::C1x8w, Benchmark::Gcc.generate(3, 1_200)),
            (ClusterLayout::C4x2w, random_trace(11, 700)),
            (ClusterLayout::C8x1w, Benchmark::Mcf.generate(5, 900)),
        ] {
            let config = MachineConfig::micro05_baseline().with_layout(layout);
            let result = simulate(&config, &trace);
            let violations = check_bounds(&config, &trace, &result);
            assert!(
                violations.is_empty(),
                "{layout}: {}",
                violations
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join("; ")
            );
        }
    }

    #[test]
    fn each_rule_fires_on_an_out_of_envelope_result() {
        let trace = Benchmark::Gzip.generate(2, 600);
        let config = MachineConfig::micro05_baseline();
        let result = simulate(&config, &trace);
        let p = ccs_predict::predict(&config, &trace);

        let mut fast = result.clone();
        fast.cycles = p.cycles_lo - 1;
        let v = check_bounds_against(&p, &fast);
        // An impossibly fast run trips the cycle floor and (same
        // arithmetic through the division) the IPC ceiling.
        assert!(v.iter().any(|v| v.rule == "cycles-under-lo"), "{v:?}");
        assert!(v.iter().any(|v| v.rule == "ipc-over-hi"), "{v:?}");

        let mut slow = result.clone();
        slow.cycles = p.cycles_hi + 1;
        let v = check_bounds_against(&p, &slow);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "cycles-over-hi");
    }

    #[test]
    fn violations_render_readably() {
        let v = BoundViolation {
            rule: "cycles-under-lo",
            message: "simulated 10 cycles, below 17".into(),
        };
        assert_eq!(format!("{v}"), "[cycles-under-lo] simulated 10 cycles, below 17");
    }
}
