//! Deterministic fault injection for the resilience machinery.
//!
//! The grid executor promises that a panicking, diverging or hanging
//! cell never takes the campaign down with it — but that promise is
//! only worth something if it is *exercised*. This module injects
//! failures on purpose, in three places:
//!
//! * **Cell faults** ([`FaultPlan`], [`run_grid_with_faults`]): a seeded,
//!   reproducible selection of grid cells is made to panic, exhaust a
//!   tiny cycle budget (a deterministic stand-in for a hang) or spin
//!   until the wall-clock watchdog cancels it. The surrounding cells
//!   must complete bit-identically to a clean run.
//! * **Trace corruption** ([`corrupt_trace`]): structurally invalid
//!   traces (forward dependences, dangling register links) that
//!   [`Trace::validate`] must reject — proving the validation layer is
//!   not vacuous.
//! * **Schedule mutations** ([`ALL_MUTATIONS`]): targeted perturbations
//!   of a finished [`SimResult`], one per invariant-checker rule, each
//!   of which must trip its rule. A checker rule that no mutation can
//!   trigger is a rule that silently checks nothing.
//! * **Bound perturbations** ([`ALL_BOUND_MUTATIONS`]): targeted
//!   corruptions of a `ccs-predict` analytic envelope (an inflated
//!   dependence chain, a deflated width/IPC ceiling, a deflated
//!   progress ceiling), each of which must trip exactly its intended
//!   [`crate::bounds::check_bounds_against`] rule — proving the bounds
//!   oracle is not vacuously satisfied.
//!
//! Everything here is deterministic: a fault plan is a pure function of
//! its seed, corruption picks the first eligible site, and mutations are
//! fixed transformations. A CI failure reproduces locally by seed.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ccs_core::grid::{evaluate_cell, run_cells, CellResult, CellSpec, Resilience};
use ccs_core::CcsError;
use ccs_sim::{Cycle, ReadyBound, SimError, SimResult};
use ccs_trace::{DynIdx, Trace};
use rand::{rngs::StdRng, RngExt, SeedableRng};

// ---------------------------------------------------------------------------
// Cell faults
// ---------------------------------------------------------------------------

/// A failure mode injected into one grid cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellFault {
    /// The cell panics on every attempt. The executor must isolate the
    /// unwind and report the cell as `Failed`.
    Panic,
    /// The cell runs with this tiny cycle budget, so the engine bails
    /// out with [`SimError::BudgetExhausted`] — a *deterministic* hang
    /// that the executor must classify as `TimedOut`.
    CycleBomb {
        /// The sabotaged cycle budget (pick well under the trace's
        /// natural cycle count).
        budget: Cycle,
    },
    /// The cell spins until the wall-clock watchdog raises its cancel
    /// flag. Only meaningful under a [`Resilience`] with a deadline;
    /// without one the cell panics instead of hanging the test suite.
    Hang,
}

/// A deterministic assignment of [`CellFault`]s to grid-cell indices.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    faults: BTreeMap<usize, CellFault>,
}

impl FaultPlan {
    /// An empty plan (no cell is sabotaged).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one fault at a fixed cell index.
    pub fn with_fault(mut self, cell: usize, fault: CellFault) -> Self {
        self.faults.insert(cell, fault);
        self
    }

    /// Seeds a plan over a grid of `n_cells`: `panics` distinct cells
    /// panic and `bombs` further distinct cells get a [`CellFault::CycleBomb`]
    /// with a budget of 10 cycles. The selection is a pure function of
    /// `seed`, so a failing campaign reproduces exactly.
    pub fn seeded(seed: u64, n_cells: usize, panics: usize, bombs: usize) -> Self {
        assert!(
            panics + bombs <= n_cells,
            "cannot fault {} cells of {n_cells}",
            panics + bombs
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut faults = BTreeMap::new();
        let mut pick = |faults: &BTreeMap<usize, CellFault>| loop {
            let i = rng.random_range(0..n_cells as u64) as usize;
            if !faults.contains_key(&i) {
                return i;
            }
        };
        for _ in 0..panics {
            let i = pick(&faults);
            faults.insert(i, CellFault::Panic);
        }
        for _ in 0..bombs {
            let i = pick(&faults);
            faults.insert(i, CellFault::CycleBomb { budget: 10 });
        }
        FaultPlan { faults }
    }

    /// The fault assigned to `cell`, if any.
    pub fn fault_for(&self, cell: usize) -> Option<CellFault> {
        self.faults.get(&cell).copied()
    }

    /// Iterates the sabotaged cell indices in increasing order.
    pub fn faulted_cells(&self) -> impl Iterator<Item = usize> + '_ {
        self.faults.keys().copied()
    }

    /// Number of sabotaged cells.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the plan faults no cell at all.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

/// Runs a grid like [`ccs_core::run_grid_resilient`], but with the
/// cells named by `plan` sabotaged per their [`CellFault`]. Cells not
/// in the plan evaluate normally and must produce results bit-identical
/// to a clean run — the executor's isolation guarantee under test.
pub fn run_grid_with_faults(
    specs: &[CellSpec],
    threads: usize,
    res: &Resilience,
    plan: &FaultPlan,
) -> Vec<CellResult> {
    run_cells(
        specs,
        threads,
        res,
        |i, spec, cancel| match plan.fault_for(i) {
            Some(CellFault::Panic) => panic!("injected fault: cell {i} panics"),
            Some(CellFault::CycleBomb { budget }) => {
                let mut sabotaged = *spec;
                sabotaged.options = sabotaged.options.with_cycle_budget(budget);
                evaluate_cell(&sabotaged, cancel)
            }
            Some(CellFault::Hang) => hang_until_cancelled(i, spec, cancel),
            None => evaluate_cell(spec, cancel),
        },
        |_, _| {},
    )
}

/// Spins (sleeping in 1 ms slices) until the watchdog cancels the cell,
/// then reports the cancellation the way the engine would.
fn hang_until_cancelled(
    cell: usize,
    spec: &CellSpec,
    cancel: Option<Arc<AtomicBool>>,
) -> Result<ccs_core::CellOutcome, CcsError> {
    let Some(cancel) = cancel else {
        // A real hang with no watchdog would wedge the test suite;
        // surface the misconfiguration loudly instead.
        panic!("injected fault: cell {cell} would hang but no deadline is configured");
    };
    while !cancel.load(Ordering::Relaxed) {
        std::thread::sleep(Duration::from_millis(1));
    }
    Err(CcsError::Sim(SimError::Cancelled {
        cycle: 0,
        committed: 0,
        total: spec.len,
    }))
}

// ---------------------------------------------------------------------------
// Trace corruption
// ---------------------------------------------------------------------------

/// A structural defect injected into a trace, targeting one rule of
/// [`Trace::validate`] each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceCorruption {
    /// A dependence pointing at the instruction itself (forward/self
    /// reference).
    ForwardDep,
    /// A dependence pointing at an earlier instruction that produces no
    /// register value.
    NonProducerDep,
    /// A dependence pointing at a producer whose destination register
    /// differs from the consumer's source.
    RegisterMismatch,
    /// A dependence present in a slot whose source register is absent.
    MissingSource,
}

/// Every corruption kind, for exhaustive negative tests.
pub const ALL_CORRUPTIONS: [TraceCorruption; 4] = [
    TraceCorruption::ForwardDep,
    TraceCorruption::NonProducerDep,
    TraceCorruption::RegisterMismatch,
    TraceCorruption::MissingSource,
];

/// Returns a copy of `trace` with `kind` injected at the first eligible
/// site, or `None` if the trace has no such site (tiny or degenerate
/// traces). The result must fail [`Trace::validate`].
pub fn corrupt_trace(trace: &Trace, kind: TraceCorruption) -> Option<Trace> {
    let mut insts = trace.as_slice().to_vec();
    match kind {
        TraceCorruption::ForwardDep => {
            let (i, k) = first_dep_slot(&insts)?;
            insts[i].deps[k] = Some(DynIdx::new(i as u32));
        }
        TraceCorruption::NonProducerDep => {
            let j = insts.iter().position(|inst| inst.inst.dst.is_none())?;
            let (i, k) = insts
                .iter()
                .enumerate()
                .skip(j + 1)
                .find_map(|(i, inst)| Some((i, dep_slot(inst)?)))?;
            insts[i].deps[k] = Some(DynIdx::new(j as u32));
        }
        TraceCorruption::RegisterMismatch => {
            let (i, k, j) = insts.iter().enumerate().find_map(|(i, inst)| {
                let k = dep_slot(inst)?;
                let src = inst.inst.srcs[k]?;
                let j = insts[..i]
                    .iter()
                    .position(|p| p.inst.dst.is_some_and(|d| d != src))?;
                Some((i, k, j))
            })?;
            insts[i].deps[k] = Some(DynIdx::new(j as u32));
        }
        TraceCorruption::MissingSource => {
            let (i, k) = first_dep_slot(&insts)?;
            insts[i].inst.srcs[k] = None;
        }
    }
    Some(Trace::from_insts(insts))
}

fn dep_slot(inst: &ccs_trace::DynInst) -> Option<usize> {
    inst.deps.iter().position(Option::is_some)
}

fn first_dep_slot(insts: &[ccs_trace::DynInst]) -> Option<(usize, usize)> {
    insts
        .iter()
        .enumerate()
        .find_map(|(i, inst)| Some((i, dep_slot(inst)?)))
}

// ---------------------------------------------------------------------------
// Schedule mutations
// ---------------------------------------------------------------------------

/// A targeted perturbation of a finished schedule, designed to trip one
/// specific [`ccs_sim::check_invariants`] rule.
///
/// `apply` mutates the result in place and returns `false` when the
/// baseline schedule has no eligible site (the exhaustiveness test
/// treats that as a failure — the baseline workload is chosen so every
/// mutation applies). Mutations may incidentally trip *other* rules
/// too; the contract is only that a violation containing `expect`
/// appears.
pub struct ScheduleMutation {
    /// Short kebab-case name, for test diagnostics.
    pub name: &'static str,
    /// A substring that must appear in at least one violation message.
    pub expect: &'static str,
    /// Applies the perturbation; `false` if no eligible site exists.
    pub apply: fn(&mut SimResult, &Trace) -> bool,
}

/// One mutation per checker rule. The negative-test suite iterates this
/// table and asserts every entry applies and fires — no rule is
/// vacuous.
pub const ALL_MUTATIONS: &[ScheduleMutation] = &[
    ScheduleMutation {
        name: "out-of-range-cluster",
        expect: "steered to cluster",
        apply: |res, _| {
            res.records[0].cluster = 250;
            true
        },
    },
    ScheduleMutation {
        name: "dispatch-inside-front-end",
        expect: "before clearing the",
        apply: |res, _| {
            let r = &mut res.records[0];
            if res.config.front_end.depth_to_dispatch == 0 {
                return false;
            }
            r.dispatch = r.fetch;
            true
        },
    },
    ScheduleMutation {
        name: "ready-under-dispatch-floor",
        expect: "under the dispatch floor",
        apply: |res, _| {
            let r = &mut res.records[0];
            r.ready = r.dispatch;
            true
        },
    },
    ScheduleMutation {
        name: "issue-before-ready",
        expect: "before ready at",
        apply: |res, _| {
            let r = &mut res.records[0];
            r.issue = r.ready - 1;
            true
        },
    },
    ScheduleMutation {
        name: "wrong-execution-latency",
        expect: "completed after",
        apply: |res, _| {
            res.records[0].complete += 1;
            true
        },
    },
    ScheduleMutation {
        name: "phantom-memory-penalty",
        expect: "extra memory cycles without an L1 miss",
        apply: |res, _| {
            let Some(r) = res.records.iter_mut().find(|r| !r.l1_miss) else {
                return false;
            };
            r.mem_extra += 5;
            true
        },
    },
    ScheduleMutation {
        name: "commit-before-complete",
        expect: "but completed at",
        apply: |res, _| {
            let r = &mut res.records[0];
            r.commit = r.complete;
            true
        },
    },
    ScheduleMutation {
        name: "fetch-out-of-program-order",
        expect: "precedes the previous instruction's",
        apply: |res, _| {
            let Some(i) = (1..res.records.len()).find(|&i| res.records[i - 1].fetch > 0) else {
                return false;
            };
            res.records[i].fetch = res.records[i - 1].fetch - 1;
            true
        },
    },
    ScheduleMutation {
        name: "ready-before-operand-visible",
        expect: "before operand from inst",
        apply: |res, trace| {
            // Find a consumer whose binding operand becomes visible
            // strictly after the dispatch floor, then claim readiness at
            // the floor anyway.
            let insts = trace.as_slice();
            for (i, inst) in insts.iter().enumerate() {
                let r = res.records[i];
                let floor = r.dispatch + 1;
                let late = inst.deps.iter().flatten().any(|p| {
                    let pr = &res.records[p.index()];
                    let fwd = res
                        .config
                        .forwarding_between(pr.cluster as usize, r.cluster as usize)
                        as Cycle;
                    pr.complete + fwd > floor
                });
                if late {
                    res.records[i].ready = floor;
                    return true;
                }
            }
            false
        },
    },
    ScheduleMutation {
        name: "ready-off-analytic-bound",
        expect: "imply exactly",
        apply: |res, _| {
            if res.config.forward_bandwidth.is_some() {
                return false; // the exact-readiness rule only holds with unlimited bypass
            }
            res.records[0].ready += 1;
            true
        },
    },
    ScheduleMutation {
        name: "ready-bound-names-non-dependence",
        expect: "not a dependence",
        apply: |res, trace| {
            // An instruction with no register deps and no memory operand
            // cannot legitimately blame producer 0 for its readiness.
            let insts = trace.as_slice();
            let Some(i) = (1..insts.len()).find(|&i| {
                insts[i].deps.iter().all(Option::is_none) && insts[i].mem_addr.is_none()
            }) else {
                return false;
            };
            res.records[i].ready_bound = ReadyBound::Operand {
                slot: 0,
                producer: DynIdx::new(0),
                fwd: 0,
            };
            true
        },
    },
    ScheduleMutation {
        name: "issue-bandwidth-overflow",
        expect: "against its",
        apply: |res, _| {
            // Issue bandwidth is per (cycle, cluster): pile the overflow
            // onto a single cluster.
            let cap = res.config.cluster.issue_width;
            let t = res.cycles + 1_000;
            let picked = pick_in_cluster(res, 0, cap + 1);
            if picked.len() < cap + 1 {
                return false;
            }
            for i in picked {
                res.records[i].issue = t;
            }
            true
        },
    },
    ScheduleMutation {
        name: "commit-bandwidth-overflow",
        expect: "against a commit width",
        apply: |res, _| {
            let cap = res.config.commit_width;
            move_times_to_common_cycle(res, cap + 1, |r| &mut r.commit)
        },
    },
    ScheduleMutation {
        name: "fetch-bandwidth-overflow",
        expect: "against a fetch width",
        apply: |res, _| {
            let cap = res.config.front_end.fetch_width;
            move_times_to_common_cycle(res, cap + 1, |r| &mut r.fetch)
        },
    },
    ScheduleMutation {
        name: "window-occupancy-overflow",
        expect: "window holds",
        apply: |res, _| {
            // Make window_entries + 1 cluster-0 instructions co-resident
            // far past the end of the schedule.
            let cap = res.config.cluster.window_entries;
            let t = res.cycles + 1_000;
            let picked = pick_in_cluster(res, 0, cap + 1);
            if picked.len() < cap + 1 {
                return false;
            }
            for i in picked {
                res.records[i].dispatch = t;
                res.records[i].issue = t + 5;
            }
            true
        },
    },
    ScheduleMutation {
        name: "rob-occupancy-overflow",
        expect: "ROB holds",
        apply: |res, _| {
            let cap = res.config.rob_entries;
            if res.records.len() <= cap {
                return false;
            }
            let t = res.cycles + 1_000;
            for r in res.records.iter_mut().take(cap + 1) {
                r.dispatch = t;
                r.commit = t + 100;
            }
            true
        },
    },
    ScheduleMutation {
        name: "predictor-outcome-flipped",
        expect: "gshare replay says",
        apply: |res, trace| {
            let insts = trace.as_slice();
            let Some(i) = (0..insts.len()).find(|&i| is_conditional(&insts[i])) else {
                return false;
            };
            res.records[i].mispredicted = !res.records[i].mispredicted;
            true
        },
    },
    ScheduleMutation {
        name: "mispredict-on-non-conditional",
        expect: "non-conditional",
        apply: |res, trace| {
            let insts = trace.as_slice();
            let Some(i) = (0..insts.len()).find(|&i| !is_conditional(&insts[i])) else {
                return false;
            };
            res.records[i].mispredicted = true;
            true
        },
    },
    ScheduleMutation {
        name: "cycle-total-drift",
        expect: "but the last commit is at",
        apply: |res, _| {
            res.cycles += 1;
            true
        },
    },
    ScheduleMutation {
        name: "l1-access-count-drift",
        expect: "L1 accesses counted",
        apply: |res, _| {
            res.l1_accesses += 1;
            true
        },
    },
    ScheduleMutation {
        name: "l1-miss-count-drift",
        expect: "records carry the miss flag",
        apply: |res, _| {
            res.l1_misses += 1;
            true
        },
    },
    ScheduleMutation {
        name: "conditional-count-drift",
        expect: "conditional branches in the trace",
        apply: |res, _| {
            res.conditional_branches += 1;
            true
        },
    },
    ScheduleMutation {
        name: "mispredict-count-drift",
        expect: "result counts",
        apply: |res, _| {
            res.mispredicts += 1;
            true
        },
    },
];

// ---------------------------------------------------------------------------
// Bound perturbations
// ---------------------------------------------------------------------------

/// A targeted corruption of an analytic envelope
/// ([`ccs_predict::Prediction`]), designed to trip exactly one
/// [`crate::bounds::check_bounds_against`] rule against a clean result.
///
/// Where [`ScheduleMutation`] corrupts the *result* to prove the
/// invariant checker fires, these corrupt the *prediction* to prove the
/// bounds oracle fires: a `check_bounds` pass that no perturbation can
/// trip would be a pass that silently checks nothing.
pub struct BoundMutation {
    /// Short kebab-case name, for test diagnostics.
    pub name: &'static str,
    /// The exact rule name the perturbation must trip — and the only
    /// one (stronger than the substring contract of
    /// [`ScheduleMutation`]: these are surgical by construction).
    pub expect: &'static str,
    /// Corrupts the envelope relative to `result`; `false` if the
    /// result offers no eligible site (e.g. a zero-cycle run).
    pub apply: fn(&mut ccs_predict::Prediction, &SimResult) -> bool,
}

/// One perturbation per bounds rule. The negative-test suite asserts
/// every entry applies to the baseline result and trips exactly its
/// intended rule.
pub const ALL_BOUND_MUTATIONS: &[BoundMutation] = &[
    BoundMutation {
        // An over-long dependence chain claims the run finished
        // impossibly fast: only the cycle floor fires (the IPC ceiling
        // is left untouched, keeping the perturbation surgical).
        name: "inflated-latency-chain",
        expect: "cycles-under-lo",
        apply: |p, res| {
            p.components.chain = res.cycles + 1;
            p.cycles_lo = res.cycles + 1;
            true
        },
    },
    BoundMutation {
        // A deflated width bound halves the IPC ceiling below what the
        // run achieved — as if an issue/port width were under-counted.
        name: "deflated-width-bound",
        expect: "ipc-over-hi",
        apply: |p, res| {
            if res.cycles == 0 || res.records.is_empty() {
                return false;
            }
            p.ipc_hi = res.records.len() as f64 / res.cycles as f64 / 2.0;
            true
        },
    },
    BoundMutation {
        // A deflated progress ceiling claims the run overran the
        // cycle budget a successful simulation can report.
        name: "deflated-progress-ceiling",
        expect: "cycles-over-hi",
        apply: |p, res| {
            if res.cycles == 0 {
                return false;
            }
            p.cycles_hi = res.cycles - 1;
            true
        },
    },
];

fn is_conditional(inst: &ccs_trace::DynInst) -> bool {
    inst.branch
        .is_some_and(|b| b.class == ccs_isa::BranchClass::Conditional)
}

/// Sets the event time selected by `field` to one common cycle on `n`
/// instructions, so the per-cycle bandwidth replay overflows. Returns
/// `false` if the schedule has fewer than `n` instructions.
fn move_times_to_common_cycle(
    res: &mut SimResult,
    n: usize,
    field: fn(&mut ccs_sim::InstRecord) -> &mut Cycle,
) -> bool {
    if res.records.len() < n {
        return false;
    }
    let t = res.cycles + 1_000;
    for r in res.records.iter_mut().take(n) {
        *field(r) = t;
    }
    true
}

/// The first `n` record indices steered to `cluster`.
fn pick_in_cluster(res: &SimResult, cluster: u8, n: usize) -> Vec<usize> {
    res.records
        .iter()
        .enumerate()
        .filter(|(_, r)| r.cluster == cluster)
        .map(|(i, _)| i)
        .take(n)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diff_results;
    use ccs_core::grid::CellStatus;
    use ccs_core::{PolicyKind, RunOptions};
    use ccs_isa::{ClusterLayout, MachineConfig};
    use ccs_sim::policies::LeastLoaded;
    use ccs_sim::{check_invariants, simulate, IlpCensus};
    use ccs_trace::Benchmark;

    fn baseline() -> (MachineConfig, Trace, SimResult) {
        let cfg = MachineConfig::micro05_baseline().with_layout(ClusterLayout::C2x4w);
        let trace = Benchmark::Gcc.generate(7, 2_000);
        let result = simulate(&cfg, &trace, &mut LeastLoaded).expect("baseline simulates");
        (cfg, trace, result)
    }

    fn small_specs(n: usize) -> Vec<CellSpec> {
        let cfg = MachineConfig::micro05_baseline().with_layout(ClusterLayout::C2x4w);
        (0..n)
            .map(|i| {
                CellSpec::new(
                    cfg,
                    Benchmark::Gzip,
                    40 + i as u64,
                    300,
                    PolicyKind::Dependence,
                    RunOptions::default(),
                )
            })
            .collect()
    }

    #[test]
    fn the_baseline_schedule_is_clean() {
        let (cfg, trace, result) = baseline();
        let violations = check_invariants(&cfg, &trace, &result);
        assert!(violations.is_empty(), "baseline violates: {:?}", violations);
    }

    #[test]
    fn every_mutation_applies_and_trips_its_rule() {
        let (cfg, trace, clean) = baseline();
        for m in ALL_MUTATIONS {
            let mut mutated = clean.clone();
            assert!(
                (m.apply)(&mut mutated, &trace),
                "mutation `{}` found no eligible site in the baseline schedule",
                m.name
            );
            let violations = check_invariants(&cfg, &trace, &mutated);
            assert!(
                violations.iter().any(|v| v.message.contains(m.expect)),
                "mutation `{}` expected a violation containing {:?}, got: {:?}",
                m.name,
                m.expect,
                violations
            );
        }
    }

    #[test]
    fn every_bound_mutation_applies_and_trips_exactly_its_rule() {
        let (cfg, trace, clean) = baseline();
        let envelope = ccs_predict::predict(&cfg, &trace);
        assert!(
            crate::bounds::check_bounds_against(&envelope, &clean).is_empty(),
            "baseline result must sit inside its clean envelope"
        );
        for m in ALL_BOUND_MUTATIONS {
            let mut corrupted = envelope;
            assert!(
                (m.apply)(&mut corrupted, &clean),
                "bound mutation `{}` found no eligible site",
                m.name
            );
            let violations = crate::bounds::check_bounds_against(&corrupted, &clean);
            assert_eq!(
                violations.len(),
                1,
                "bound mutation `{}` must trip exactly one rule, got: {violations:?}",
                m.name
            );
            assert_eq!(
                violations[0].rule, m.expect,
                "bound mutation `{}` tripped the wrong rule",
                m.name
            );
        }
    }

    #[test]
    fn bound_mutation_names_and_rules_are_distinct() {
        let mut names: Vec<_> = ALL_BOUND_MUTATIONS.iter().map(|m| m.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(
            names.len(),
            ALL_BOUND_MUTATIONS.len(),
            "duplicate bound-mutation names"
        );
        let mut rules: Vec<_> = ALL_BOUND_MUTATIONS.iter().map(|m| m.expect).collect();
        rules.sort_unstable();
        rules.dedup();
        assert_eq!(
            rules.len(),
            ALL_BOUND_MUTATIONS.len(),
            "every bounds rule needs its own perturbation"
        );
    }

    #[test]
    fn mutation_names_and_rules_are_distinct() {
        let mut names: Vec<_> = ALL_MUTATIONS.iter().map(|m| m.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ALL_MUTATIONS.len(), "duplicate mutation names");
    }

    #[test]
    fn an_empty_trace_must_take_zero_cycles() {
        let cfg = MachineConfig::micro05_baseline();
        let trace = Trace::from_insts(Vec::new());
        let result = SimResult {
            config: cfg,
            cycles: 1,
            records: Vec::new(),
            mispredicts: 0,
            conditional_branches: 0,
            l1_misses: 0,
            l1_accesses: 0,
            global_values: 0,
            ilp: IlpCensus::default(),
            steer_stall_cycles: 0,
        };
        let violations = check_invariants(&cfg, &trace, &result);
        assert!(violations
            .iter()
            .any(|v| v.message.contains("empty trace must take zero cycles")));
    }

    #[test]
    fn every_corruption_kind_is_rejected_by_validate() {
        let trace = Benchmark::Gcc.generate(3, 500);
        trace.validate().expect("generator output validates");
        for kind in ALL_CORRUPTIONS {
            let corrupted = corrupt_trace(&trace, kind)
                .unwrap_or_else(|| panic!("{kind:?} found no site in a 500-inst trace"));
            let err = corrupted
                .validate()
                .expect_err(&format!("{kind:?} slipped past validation"));
            let rendered = err.to_string();
            assert!(
                rendered.contains("malformed trace"),
                "{kind:?} rendered oddly: {rendered}"
            );
        }
    }

    #[test]
    fn diff_results_detects_every_perturbation_class() {
        let (_, _, clean) = baseline();
        assert!(diff_results(&clean, &clean).is_empty());
        type Perturbation = (&'static str, fn(&mut SimResult));
        let perturbations: &[Perturbation] = &[
            ("cycles", |r| r.cycles += 1),
            ("mispredicts", |r| r.mispredicts += 1),
            ("conditional_branches", |r| r.conditional_branches += 1),
            ("l1_misses", |r| r.l1_misses += 1),
            ("l1_accesses", |r| r.l1_accesses += 1),
            ("global_values", |r| r.global_values += 1),
            ("steer_stall_cycles", |r| r.steer_stall_cycles += 1),
            ("ilp", |r| r.ilp.record(63, 1)),
            ("record issue", |r| r.records[0].issue += 1),
            ("record cluster", |r| r.records[0].cluster ^= 1),
            ("record l1_miss", |r| r.records[0].l1_miss = !r.records[0].l1_miss),
            ("record count", |r| {
                r.records.truncate(r.records.len() - 1)
            }),
        ];
        for (what, perturb) in perturbations {
            let mut engine = clean.clone();
            perturb(&mut engine);
            assert!(
                !diff_results(&engine, &clean).is_empty(),
                "diff_results missed a {what} perturbation"
            );
        }
    }

    #[test]
    fn seeded_plans_are_pure_functions_of_their_seed() {
        let a = FaultPlan::seeded(42, 100, 10, 2);
        let b = FaultPlan::seeded(42, 100, 10, 2);
        assert_eq!(a.len(), 12);
        assert!(a.faulted_cells().eq(b.faulted_cells()));
        assert!(a.faulted_cells().all(|i| i < 100));
        let panics = a
            .faulted_cells()
            .filter(|&i| a.fault_for(i) == Some(CellFault::Panic))
            .count();
        assert_eq!(panics, 10);
        let c = FaultPlan::seeded(43, 100, 10, 2);
        assert!(
            !a.faulted_cells().eq(c.faulted_cells()),
            "different seeds chose identical cells"
        );
    }

    #[test]
    fn faulted_cells_are_isolated_and_the_rest_match_a_clean_run() {
        let specs = small_specs(5);
        let plan = FaultPlan::new()
            .with_fault(1, CellFault::Panic)
            .with_fault(3, CellFault::CycleBomb { budget: 5 });
        let clean = ccs_core::run_grid_resilient(&specs, 2, &Resilience::default());
        let faulted = run_grid_with_faults(&specs, 2, &Resilience::default(), &plan);
        assert_eq!(faulted.len(), 5);
        for (i, (c, f)) in clean.iter().zip(&faulted).enumerate() {
            match i {
                1 => {
                    assert!(matches!(f.status, CellStatus::Failed { .. }), "cell 1: {:?}", f.status);
                    let msg = f.status.error().expect("failed cell has an error").to_string();
                    assert!(msg.contains("injected fault"), "unexpected error: {msg}");
                }
                3 => assert!(f.status.is_timed_out(), "cell 3: {:?}", f.status),
                _ => {
                    let (co, fo) = (c.expect_outcome(), f.expect_outcome());
                    assert_eq!(
                        format!("{:?}", co.result),
                        format!("{:?}", fo.result),
                        "clean cell {i} diverged from the unfaulted run"
                    );
                }
            }
        }
    }

    #[test]
    fn a_hanging_cell_is_cancelled_by_the_watchdog() {
        let specs = small_specs(1);
        let plan = FaultPlan::new().with_fault(0, CellFault::Hang);
        let res = Resilience::default().with_deadline(Duration::from_millis(40));
        let results = run_grid_with_faults(&specs, 1, &res, &plan);
        assert!(
            results[0].status.is_timed_out(),
            "hang was not cancelled: {:?}",
            results[0].status
        );
    }
}
