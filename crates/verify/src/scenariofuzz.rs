//! Seeded scenario-manifest fuzzing: random *valid* `ccs-scenario`
//! workloads driven through the manifest round-trip, the trace
//! validator, and the full engine-vs-oracle differential pipeline.
//!
//! The scenario DSL multiplies the workload space the simulator can
//! see: arbitrary emitter mixes, phase sequences and SMT interleavings
//! that no hand-written benchmark model exercises. This campaign is the
//! matching verification surface. Case `i` deterministically maps to a
//! scenario (so CI failures reproduce locally by id) and each case
//! checks, in order:
//!
//! 1. the generated scenario passes [`Scenario::validate`];
//! 2. its canonical manifest **round-trips**:
//!    `from_manifest(to_manifest(s)) == s`, and rendering is a fixed
//!    point;
//! 3. the generated trace passes `Trace::validate`;
//! 4. the trace agrees end to end under
//!    [`run_trace_case`](crate::campaign::run_trace_case) — engine vs
//!    reference oracle, schedule invariants, critical-path cycle
//!    conservation, and the analytic bounds envelope.
//!
//! The case budget lives in the integration suite
//! (`tests/scenario_fuzz.rs`, tunable via `CCS_SCENARIO_CASES`).

use crate::campaign::{run_trace_case, CaseOutcome, ALL_POLICIES};
use ccs_isa::{ClusterLayout, MachineConfig};
use ccs_scenario::{
    AddrSpec, BranchSpec, EmitterKind, InterleaveMode, OpSpec, Phase, Scenario, PHASE_REG_BUDGET,
};
use rand::{rngs::StdRng, RngExt, SeedableRng};

/// Branch-taken probabilities drawn by the fuzzer. A fixed menu (rather
/// than arbitrary floats) keeps every manifest value exactly
/// representable, so round-trip equality is a hard check instead of an
/// epsilon comparison.
const PROBS: [f64; 8] = [0.0, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0];

fn random_branch(rng: &mut StdRng) -> BranchSpec {
    match rng.random_range(0u32..6) {
        0 => BranchSpec::Bernoulli(PROBS[rng.random_range(0usize..PROBS.len())]),
        1 => BranchSpec::LoopExit(rng.random_range(1u32..65)),
        2 => BranchSpec::Always,
        3 => BranchSpec::Never,
        4 => BranchSpec::Alternating,
        _ => {
            let len = rng.random_range(1u8..9);
            let bits = rng.random_range(0u32..(1 << len));
            BranchSpec::Pattern { bits, len }
        }
    }
}

fn random_addrs(rng: &mut StdRng) -> AddrSpec {
    let base = 0x10_0000 + 0x1000 * rng.random_range(0u64..256);
    match rng.random_range(0u32..3) {
        0 => AddrSpec::Stream {
            base,
            stride: [4, 8, 64][rng.random_range(0usize..3)],
            len: 1 << rng.random_range(10u32..21),
        },
        1 => AddrSpec::RandomIn {
            base,
            len: 1 << rng.random_range(10u32..22),
        },
        _ => AddrSpec::Fixed { addr: base },
    }
}

/// Draws one emitter kind whose register cost fits `budget`. Falls back
/// to a plain chain (cost 1) when the draw is too expensive — the
/// greedy fill mirrors how a user would pack a phase, and keeps every
/// generated scenario inside [`PHASE_REG_BUDGET`] by construction.
fn random_kind(rng: &mut StdRng, budget: usize) -> EmitterKind {
    let candidate = match rng.random_range(0u32..10) {
        0 => EmitterKind::Chain {
            len: rng.random_range(1u32..9),
        },
        1 => EmitterKind::Hammock {
            arm: rng.random_range(1u32..5),
            branch: random_branch(rng),
            region: 1 << rng.random_range(10u32..23),
        },
        2 => EmitterKind::SpineRibs {
            spine: rng.random_range(1u32..5),
            rib: rng.random_range(1u32..5),
            branch: random_branch(rng),
            trip: rng.random_range(2u32..65),
        },
        3 => EmitterKind::Divergent {
            exit_prob: PROBS[rng.random_range(0usize..PROBS.len())],
            trip: rng.random_range(1u32..33),
            region: 1 << rng.random_range(10u32..19),
        },
        4 => EmitterKind::Chase {
            region: 1 << rng.random_range(12u32..25),
            trip: rng.random_range(2u32..65),
        },
        5 => {
            let op = [
                OpSpec::IntAlu,
                OpSpec::IntMul,
                OpSpec::FpAdd,
                OpSpec::FpMul,
                OpSpec::FpDiv,
                OpSpec::Load,
            ][rng.random_range(0usize..6)];
            EmitterKind::Chains {
                width: rng.random_range(1u32..7),
                op,
                addrs: op.is_mem().then(|| random_addrs(rng)),
            }
        }
        6 => EmitterKind::Tree {
            width: rng.random_range(2u32..9),
        },
        7 => EmitterKind::Branchy {
            units: rng.random_range(1u32..6),
            behaviors: (0..rng.random_range(1usize..5))
                .map(|_| random_branch(rng))
                .collect(),
        },
        8 => EmitterKind::Store {
            addrs: random_addrs(rng),
        },
        _ => EmitterKind::BackEdge {
            trip: rng.random_range(2u32..129),
        },
    };
    if candidate.reg_cost() <= budget {
        candidate
    } else {
        EmitterKind::Chain {
            len: rng.random_range(1u32..9),
        }
    }
}

fn random_phase(rng: &mut StdRng, thread: u32) -> Phase {
    let mut phase = Phase::new()
        .with_salt(rng.random_range(0u64..u64::MAX))
        .with_weight(rng.random_range(1u32..4))
        .with_thread(thread);
    let emitters = rng.random_range(1usize..5);
    let mut budget = PHASE_REG_BUDGET;
    let mut ids = Vec::with_capacity(emitters);
    for k in 0..emitters {
        let kind = random_kind(rng, budget);
        budget -= kind.reg_cost();
        let id = format!("e{k}");
        phase = phase.with_emitter(&id, 0x1000 * (u64::from(thread) + 1) + 0x100 * k as u64, kind);
        ids.push(id);
    }
    // Every emitter is scheduled at least once so none is dead weight,
    // then a few extra random steps vary the mix ratios.
    for id in &ids {
        phase = phase.with_step(id, rng.random_range(1u32..5));
    }
    for _ in 0..rng.random_range(0usize..4) {
        let id = &ids[rng.random_range(0usize..ids.len())];
        phase = phase.with_step(id, rng.random_range(1u32..9));
    }
    phase
}

/// The deterministic random scenario for fuzz case `id`: 1–3 phases of
/// 1–4 emitters each, occasionally split across two SMT threads with a
/// random interleaving discipline. Valid by construction (asserted by
/// the campaign before anything else runs).
pub fn fuzz_scenario(id: usize) -> Scenario {
    let mut rng = StdRng::seed_from_u64(
        0x5CE0_4A22_u64
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(id as u64),
    );
    let threads: u32 = if rng.random_bool(0.25) { 2 } else { 1 };
    let mut s = Scenario::new(&format!("fuzz_{id:04}"));
    if threads == 2 {
        s = match rng.random_range(0u32..3) {
            0 => s.with_interleave(InterleaveMode::RoundRobin, 1),
            1 => s.with_interleave(InterleaveMode::Block, rng.random_range(2u32..65)),
            _ => s, // default interleaving (round-robin, quantum 1)
        };
    }
    let phases = rng.random_range(threads as usize..4);
    for k in 0..phases {
        // `k % threads` keeps thread ids contiguous from 0, which the
        // validator requires.
        s = s.with_phase(random_phase(&mut rng, k as u32 % threads));
    }
    s
}

/// Runs fuzz case `id` end to end: generate → validate → manifest
/// round-trip → trace validation → full differential pipeline. The
/// machine axes (layout, policy, epochs, trace length) derive from the
/// id with coprime periods, so any run of ≥ 28 consecutive cases covers
/// every layout × policy pair.
///
/// # Errors
///
/// Returns `Err` on infrastructure failures (a simulator hitting its
/// cycle limit), as distinct from a checked divergence.
pub fn run_scenario_case(id: usize) -> Result<CaseOutcome, String> {
    let scenario = fuzz_scenario(id);
    let mut problems: Vec<String> = Vec::new();

    if let Err(e) = scenario.validate() {
        // The generator only emits valid scenarios; a validation error
        // here is a fuzzer bug, not a DSL bug — still report it.
        problems.push(format!("generated scenario failed validation: {e}"));
    }
    let text = scenario.to_manifest();
    match Scenario::from_manifest(&text) {
        Ok(back) => {
            if back != scenario {
                problems.push("manifest round-trip changed the scenario".to_string());
            } else if back.to_manifest() != text {
                problems.push("canonical rendering is not a fixed point".to_string());
            }
        }
        Err(e) => problems.push(format!("canonical manifest failed to parse: {e}")),
    }

    let layout = ClusterLayout::ALL[id % 4];
    let policy = ALL_POLICIES[(id / 4) % ALL_POLICIES.len()];
    let epochs = 1 + (id % 2) as u32;
    let len = 400 + 37 * (id % 12);
    let seed = 1 + (id / 7) as u64;
    let describe = format!(
        "scenario fuzz case {id}: {} {} {} len={len} seed={seed} epochs={epochs}",
        scenario.name,
        layout,
        policy.name(),
    );

    let trace = match scenario.try_generate(seed, len) {
        Ok(t) => t,
        Err(e) => {
            problems.push(format!("trace generation failed: {e}"));
            return Ok(CaseOutcome::Diverged(
                std::iter::once(describe).chain(problems).collect(),
            ));
        }
    };
    if let Err(e) = trace.validate() {
        problems.push(format!("generated trace failed validation: {e}"));
    }

    let config = MachineConfig::micro05_baseline().with_layout(layout);
    match run_trace_case(&trace, &config, policy, epochs, &describe)? {
        CaseOutcome::Agreed => {}
        CaseOutcome::Diverged(lines) => problems.extend(lines.into_iter().skip(1)),
    }

    if problems.is_empty() {
        Ok(CaseOutcome::Agreed)
    } else {
        Ok(CaseOutcome::Diverged(
            std::iter::once(describe).chain(problems).collect(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fuzz_scenarios_are_deterministic_and_valid() {
        for id in 0..40 {
            let a = fuzz_scenario(id);
            let b = fuzz_scenario(id);
            assert_eq!(a, b, "case {id} must be deterministic");
            a.validate()
                .unwrap_or_else(|e| panic!("case {id} generated an invalid scenario: {e}"));
        }
    }

    #[test]
    fn fuzz_cases_cover_both_smt_and_single_thread_shapes() {
        let scenarios: Vec<Scenario> = (0..40).map(fuzz_scenario).collect();
        assert!(scenarios.iter().any(|s| s.thread_count() == 1));
        assert!(scenarios.iter().any(|s| s.thread_count() == 2));
        assert!(scenarios.iter().any(|s| s.interleave.is_some()));
        assert!(scenarios.iter().any(|s| s.phases.len() > 1));
    }

    #[test]
    fn a_single_fuzz_case_agrees_end_to_end() {
        match run_scenario_case(0).unwrap() {
            CaseOutcome::Agreed => {}
            CaseOutcome::Diverged(lines) => panic!("{}", lines.join("\n  ")),
        }
    }
}
