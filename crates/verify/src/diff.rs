//! Structured comparison of two simulation results.

use ccs_sim::SimResult;

/// How many mismatch lines to report before truncating. A differential
/// failure needs enough context to localize the divergence, not a dump
/// of every downstream consequence.
const MAX_REPORTED: usize = 8;

/// Compares an engine result against an oracle result field by field and
/// returns one human-readable line per mismatch (empty = identical).
///
/// Every timing-relevant quantity is compared: total cycles, the
/// aggregate counters, the ILP census, and the per-instruction event
/// times, placements and flags. The engine's binding-constraint
/// diagnostics (`dispatch_bound`, `ready_bound`, `commit_bound`) are
/// *not* compared — the oracle deliberately does not reconstruct
/// attribution, only timing.
pub fn diff_results(engine: &SimResult, oracle: &SimResult) -> Vec<String> {
    let mut out = Vec::new();
    let mut mismatch = |line: String| {
        if out.len() < MAX_REPORTED {
            out.push(line);
        } else if out.len() == MAX_REPORTED {
            out.push("... further mismatches suppressed".to_string());
        }
    };

    macro_rules! cmp {
        ($field:ident) => {
            if engine.$field != oracle.$field {
                mismatch(format!(
                    concat!(stringify!($field), ": engine {:?} vs oracle {:?}"),
                    engine.$field, oracle.$field
                ));
            }
        };
    }
    cmp!(cycles);
    cmp!(mispredicts);
    cmp!(conditional_branches);
    cmp!(l1_misses);
    cmp!(l1_accesses);
    cmp!(global_values);
    cmp!(steer_stall_cycles);

    if engine.ilp != oracle.ilp {
        let summarize = |ilp: &ccs_sim::IlpCensus| {
            let (mut cycles, mut issued) = (0u64, 0.0f64);
            for (_, c, mean) in ilp.series() {
                cycles += c;
                issued += mean * c as f64;
            }
            (cycles, issued.round() as u64, ilp.max_available())
        };
        let (ec, ei, em) = summarize(&engine.ilp);
        let (oc, oi, om) = summarize(&oracle.ilp);
        mismatch(format!(
            "ilp census: engine (cycles {ec}, issued {ei}, max avail {em}) \
             vs oracle (cycles {oc}, issued {oi}, max avail {om})",
        ));
    }

    if engine.records.len() != oracle.records.len() {
        mismatch(format!(
            "record count: engine {} vs oracle {}",
            engine.records.len(),
            oracle.records.len()
        ));
        return out;
    }
    for (i, (e, o)) in engine.records.iter().zip(&oracle.records).enumerate() {
        let mut fields = Vec::new();
        macro_rules! rcmp {
            ($field:ident) => {
                if e.$field != o.$field {
                    fields.push(format!(
                        concat!(stringify!($field), " {:?} vs {:?}"),
                        e.$field, o.$field
                    ));
                }
            };
        }
        rcmp!(fetch);
        rcmp!(dispatch);
        rcmp!(ready);
        rcmp!(issue);
        rcmp!(complete);
        rcmp!(commit);
        rcmp!(cluster);
        rcmp!(mispredicted);
        rcmp!(l1_miss);
        rcmp!(mem_extra);
        rcmp!(steer_cause);
        rcmp!(predicted_critical);
        if e.loc.to_bits() != o.loc.to_bits() {
            fields.push(format!("loc {:?} vs {:?}", e.loc, o.loc));
        }
        if !fields.is_empty() {
            mismatch(format!("inst {i}: {}", fields.join(", ")));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_sim::policies::LeastLoaded;
    use ccs_trace::Benchmark;

    #[test]
    fn identical_results_diff_clean() {
        let trace = Benchmark::Gzip.generate(3, 400);
        let cfg = ccs_isa::MachineConfig::micro05_baseline();
        let a = ccs_sim::simulate(&cfg, &trace, &mut LeastLoaded).unwrap();
        let b = ccs_sim::simulate(&cfg, &trace, &mut LeastLoaded).unwrap();
        assert!(diff_results(&a, &b).is_empty());
    }

    #[test]
    fn tampering_is_reported_and_truncated() {
        let trace = Benchmark::Gzip.generate(3, 400);
        let cfg = ccs_isa::MachineConfig::micro05_baseline();
        let a = ccs_sim::simulate(&cfg, &trace, &mut LeastLoaded).unwrap();
        let mut b = a.clone();
        b.cycles += 1;
        for r in &mut b.records {
            r.issue += 1;
        }
        let diff = diff_results(&a, &b);
        assert!(diff[0].starts_with("cycles:"), "{diff:?}");
        assert_eq!(diff.len(), MAX_REPORTED + 1);
        assert_eq!(diff.last().unwrap(), "... further mismatches suppressed");
    }
}
