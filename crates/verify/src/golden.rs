//! The golden regression corpus.
//!
//! A committed snapshot of the simulator's observable behaviour across
//! the full benchmark × layout × policy grid at a fixed (small) scale:
//! cycles, CPI, the aggregate event counters and the eight-way
//! critical-path breakdown of every cell, plus one rendered schedule
//! window. Snapshot tests compare freshly computed values against the
//! committed files and fail with a readable first-difference report, so
//! any change to simulator timing — intended or not — shows up in review
//! as a diff of `results/golden/`.
//!
//! Every golden cell runs in *checked* mode, so regenerating or
//! verifying the corpus also audits ~340 schedules against the
//! structural invariant checker.
//!
//! Regenerate after an intended behaviour change with:
//!
//! ```text
//! cargo run --release -p ccs-verify --bin regen_golden
//! ```

use ccs_core::{GridRequest, RunOptions};
use ccs_critpath::CostCategory;
use ccs_isa::{ClusterLayout, MachineConfig};
use ccs_trace::Benchmark;
use std::fmt::Write as _;
use std::path::PathBuf;

/// Dynamic instructions per golden trace. Small enough that verifying
/// the whole corpus stays inside the CI budget on one core, large
/// enough that every pipeline mechanism (mispredicts, cache misses,
/// steering stalls, window pressure) is exercised in every cell.
pub const GOLDEN_LEN: usize = 2_000;
/// Workload generation seed of the corpus.
pub const GOLDEN_SEED: u64 = 1;
/// Training + measurement epochs per cell.
pub const GOLDEN_EPOCHS: u32 = 2;

/// The steering policies covered by the corpus: the five-rung ladder
/// plus the two dynamic policies of the adaptive tier.
pub const GOLDEN_POLICIES: [ccs_core::PolicyKind; 7] = crate::campaign::ALL_POLICIES;

/// The committed location of the corpus: `results/golden/` at the
/// repository root.
pub fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results/golden")
}

/// The evaluation options every golden cell uses.
pub fn golden_options() -> RunOptions {
    RunOptions::default()
        .with_epochs(GOLDEN_EPOCHS)
        .with_checked(true)
}

/// Computes the whole corpus: one `(file name, contents)` pair per
/// benchmark plus the rendered-schedule snapshot. Deterministic and
/// thread-count invariant; `threads` only changes wall-clock time.
///
/// # Panics
///
/// Panics if any cell fails to simulate (a checked-mode invariant
/// violation or a cycle-limit deadlock — both fatal for the corpus).
pub fn corpus_files(threads: usize) -> Vec<(String, String)> {
    let results = GridRequest::new(MachineConfig::micro05_baseline(), GOLDEN_LEN)
        .benchmarks(Benchmark::ALL)
        .layouts(ClusterLayout::ALL)
        .policies(GOLDEN_POLICIES)
        .sample_seeds([GOLDEN_SEED])
        .options(golden_options())
        .run(threads);

    let per_bench = ClusterLayout::ALL.len() * GOLDEN_POLICIES.len();
    let mut files = Vec::new();
    for (bench, cells) in Benchmark::ALL.iter().zip(results.chunks(per_bench)) {
        let mut out = String::new();
        let _ = writeln!(out, "# golden snapshot: {}", bench.name());
        let _ = writeln!(
            out,
            "# micro05 baseline machine; seed {GOLDEN_SEED}, {GOLDEN_LEN} instructions, \
             {GOLDEN_EPOCHS} epochs, checked mode"
        );
        let _ = writeln!(
            out,
            "# layout policy cycles cpi mispredicts cond_branches l1_misses l1_accesses \
             global_values steer_stalls | fwd contention execute window fetch memlat \
             brmispredict commit | schedule_digest cpi_bits"
        );
        for cell in cells {
            let o = cell.expect_outcome();
            let r = &o.result;
            let _ = write!(
                out,
                "{} {} {} {:.6} {} {} {} {} {} {} |",
                cell.spec.config.layout,
                cell.spec.policy.name(),
                r.cycles,
                r.cpi(),
                r.mispredicts,
                r.conditional_branches,
                r.l1_misses,
                r.l1_accesses,
                r.global_values,
                r.steer_stall_cycles,
            );
            for cat in CostCategory::ALL {
                let _ = write!(out, " {}", o.analysis.breakdown.get(cat));
            }
            let _ = write!(
                out,
                " | {:016x} {:016x}",
                schedule_digest(&r.records),
                r.cpi().to_bits()
            );
            out.push('\n');
        }
        files.push((format!("{}.txt", bench.name()), out));
    }
    files.push(("viz_schedule.txt".to_string(), viz_snapshot()));
    files
}

/// FNV-1a digest over the `Debug` rendering of every instruction
/// record. The six-decimal CPI and aggregate counters in the snapshot
/// line can stay unchanged while an individual instruction's schedule
/// (stage cycles, cluster assignment, bound attribution, memory
/// latency) silently shifts; the digest folds **every field of every
/// record** into one value, so any per-record drift fails the corpus
/// comparison even when the aggregates happen to agree.
pub fn schedule_digest(records: &[ccs_sim::InstRecord]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut buf = String::new();
    for r in records {
        buf.clear();
        let _ = write!(buf, "{r:?}");
        for &b in buf.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

/// The rendered-schedule snapshot: a fixed window of a small
/// deterministic run, pinning the exact output format of
/// [`ccs_sim::viz::render_schedule`].
pub fn viz_snapshot() -> String {
    let trace = Benchmark::Gap.generate(1, 120);
    let config = MachineConfig::micro05_baseline().with_layout(ClusterLayout::C4x2w);
    let result = ccs_sim::simulate(&config, &trace, &mut ccs_sim::policies::LeastLoaded)
        .expect("viz snapshot run cannot deadlock");
    let mut header = format!(
        "# golden snapshot: render_schedule, gap seed 1 len 120, C4x2w, least-loaded\n\
         # cycles {}\n",
        result.cycles
    );
    header.push_str(&ccs_sim::viz::render_schedule(&result, 0, 60, |i| {
        format!("{}", i.raw())
    }));
    header
}

/// Compares a computed snapshot against a committed one and reports the
/// first few differing lines (empty = identical).
pub fn diff_lines(name: &str, committed: &str, computed: &str) -> Vec<String> {
    let mut out = Vec::new();
    let a: Vec<&str> = committed.lines().collect();
    let b: Vec<&str> = computed.lines().collect();
    for i in 0..a.len().max(b.len()) {
        if a.get(i) != b.get(i) {
            out.push(format!(
                "{name}:{}: committed {:?} vs computed {:?}",
                i + 1,
                a.get(i).copied().unwrap_or("<missing>"),
                b.get(i).copied().unwrap_or("<missing>"),
            ));
            if out.len() >= 5 {
                out.push(format!("{name}: ... further differences suppressed"));
                break;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn viz_snapshot_is_deterministic_and_shaped() {
        let a = viz_snapshot();
        assert_eq!(a, viz_snapshot());
        assert!(a.contains("cl0"));
        assert!(a.contains("cl3"));
        assert!(a.lines().count() > 10);
    }

    #[test]
    fn schedule_digest_sees_single_field_drift() {
        let trace = Benchmark::Gap.generate(1, 200);
        let config = MachineConfig::micro05_baseline();
        let result = ccs_sim::simulate(&config, &trace, &mut ccs_sim::policies::LeastLoaded)
            .expect("digest run cannot deadlock");
        let base = schedule_digest(&result.records);
        assert_eq!(base, schedule_digest(&result.records), "digest is pure");
        let mut drifted = result.records.clone();
        drifted[137].issue += 1;
        assert_ne!(
            base,
            schedule_digest(&drifted),
            "a one-cycle shift in one record must change the digest"
        );
    }

    #[test]
    fn diff_lines_reports_first_divergence() {
        assert!(diff_lines("x", "a\nb\n", "a\nb\n").is_empty());
        let d = diff_lines("x", "a\nb\n", "a\nc\n");
        assert_eq!(d.len(), 1);
        assert!(d[0].contains("x:2"), "{d:?}");
        let d = diff_lines("x", "a\n", "a\nb\n");
        assert!(d[0].contains("<missing>"), "{d:?}");
    }
}
