//! Service-level chaos: seeded connection faults for the serve layer.
//!
//! The protocol fuzzer ([`crate::protocol`]) breaks *frames*; this
//! module breaks *service behavior* — the failure shapes a sharded
//! campaign must survive: a shard that dies mid-grid, an accept loop
//! that hangs without answering, a connection cut after a few bytes of
//! reply, a reply that arrives late enough to probe client timeouts.
//!
//! Two pieces:
//!
//! * [`ServeFaultPlan`] — a seeded, pure function from
//!   accepted-connection index to [`ServeFault`]. Every run with the
//!   same seed injects the same faults at the same connections, so a CI
//!   chaos failure reproduces locally by naming its seed — the same
//!   discipline as [`crate::faultinject`].
//! * [`ChaosProxy`] — a byte-level TCP proxy that sits between a client
//!   and a live daemon and applies the plan per accepted connection.
//!   Deliberately **no `ccs-serve` dependency**: it never parses
//!   frames, so it cannot drift from the wire contract and it injects
//!   exactly what a broken network injects — byte streams that stop,
//!   stall, or lag.
//!
//! The remaining fault shape — a shard process dying mid-campaign with
//! work admitted and journaled — cannot be staged from outside the
//! socket. The serve crate exposes `KillSwitch` for that; integration
//! tests combine it with this module (kill one shard of a cluster via
//! the switch, degrade another's connections via the proxy) to prove
//! failover and journal-replay recovery end to end.

use rand::{rngs::StdRng, RngExt, SeedableRng};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// One way a connection through the proxy can misbehave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeFault {
    /// Pass bytes through untouched.
    None,
    /// Accept the connection, then never forward anything in either
    /// direction: a daemon whose accept thread is alive but wedged.
    /// Clients without a reply deadline hang forever on this.
    HangAccept,
    /// Forward the first `bytes` daemon→client bytes, then sever the
    /// connection: a shard crashing mid-reply, after framing has
    /// started. The client sees a torn stream, not a clean refusal.
    DropAfterBytes {
        /// Daemon→client bytes allowed through before the cut.
        bytes: usize,
    },
    /// Stall each daemon→client read by `millis` before forwarding: a
    /// saturated or GC-pausing shard. Probes reply-deadline handling
    /// without killing anything.
    DelayReply {
        /// Added latency per forwarded chunk.
        millis: u64,
    },
}

/// A deterministic schedule of [`ServeFault`]s by accepted-connection
/// index.
#[derive(Debug, Clone)]
pub struct ServeFaultPlan {
    scripted: Vec<ServeFault>,
    seed: u64,
    /// Faults drawn (seeded) for connections past the script; `None`
    /// in the menu makes seeded chaos intermittent rather than total.
    menu: Vec<ServeFault>,
}

impl ServeFaultPlan {
    /// A plan that injects nothing, ever — the control arm.
    pub fn clean() -> Self {
        ServeFaultPlan {
            scripted: Vec::new(),
            seed: 0,
            menu: vec![ServeFault::None],
        }
    }

    /// An explicit per-connection script; connections past the end are
    /// clean. `scripted[i]` hits accepted connection `i`.
    pub fn scripted(faults: Vec<ServeFault>) -> Self {
        ServeFaultPlan {
            scripted: faults,
            seed: 0,
            menu: vec![ServeFault::None],
        }
    }

    /// Seeded chaos: every connection draws uniformly from `menu`
    /// (deterministically in `seed` and the connection index).
    pub fn seeded(seed: u64, menu: Vec<ServeFault>) -> Self {
        let menu = if menu.is_empty() {
            vec![ServeFault::None]
        } else {
            menu
        };
        ServeFaultPlan {
            scripted: Vec::new(),
            seed,
            menu,
        }
    }

    /// The fault for accepted connection `index` — a pure function, so
    /// callers can predict (and tests can assert) the schedule without
    /// running it.
    pub fn fault_for(&self, index: usize) -> ServeFault {
        if let Some(&fault) = self.scripted.get(index) {
            return fault;
        }
        if self.menu.len() == 1 {
            return self.menu[0];
        }
        // Mix the index into the seed so each connection draws an
        // independent value while the whole schedule stays replayable.
        let mut rng = StdRng::seed_from_u64(
            self.seed ^ (index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        );
        self.menu[rng.random_range(0..self.menu.len() as u64) as usize]
    }
}

/// A fault-injecting TCP proxy in front of one daemon.
///
/// Listens on an ephemeral local port; every accepted connection `i`
/// opens its own upstream connection and pumps bytes both ways, shaped
/// by `plan.fault_for(i)`. Dropping the proxy stops the accept loop
/// and severs the connections it spawned.
#[derive(Debug)]
pub struct ChaosProxy {
    local: SocketAddr,
    stop: Arc<AtomicBool>,
    accepted: Arc<AtomicUsize>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Starts a proxy for `upstream` (e.g. `"127.0.0.1:7405"`) on an
    /// ephemeral `127.0.0.1` port.
    ///
    /// # Errors
    ///
    /// `std::io::Error` when the listening socket cannot be bound.
    pub fn start(upstream: &str, plan: ServeFaultPlan) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let accepted = Arc::new(AtomicUsize::new(0));
        let upstream = upstream.to_string();
        let accept_thread = {
            let stop = Arc::clone(&stop);
            let accepted = Arc::clone(&accepted);
            std::thread::spawn(move || {
                accept_loop(&listener, &upstream, &plan, &stop, &accepted);
            })
        };
        Ok(ChaosProxy {
            local,
            stop,
            accepted,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address clients should connect to instead of the daemon's.
    pub fn addr(&self) -> String {
        self.local.to_string()
    }

    /// Connections accepted so far — `fault_for(accepted())` is the
    /// fault the *next* connection will draw.
    pub fn accepted(&self) -> usize {
        self.accepted.load(Ordering::SeqCst)
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    upstream: &str,
    plan: &ServeFaultPlan,
    stop: &Arc<AtomicBool>,
    accepted: &Arc<AtomicUsize>,
) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((client, _)) => {
                let index = accepted.fetch_add(1, Ordering::SeqCst);
                let fault = plan.fault_for(index);
                let upstream = upstream.to_string();
                let stop = Arc::clone(stop);
                handlers.push(std::thread::spawn(move || {
                    handle_connection(client, &upstream, fault, &stop);
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
    // Handlers watch the same stop flag; sever their sockets by letting
    // them observe it rather than leaking threads past drop.
    for handle in handlers {
        let _ = handle.join();
    }
}

fn handle_connection(client: TcpStream, upstream: &str, fault: ServeFault, stop: &Arc<AtomicBool>) {
    if fault == ServeFault::HangAccept {
        // Hold the socket open, forward nothing, and release it only
        // when the proxy stops — the client's reply deadline is what
        // breaks this stalemate.
        while !stop.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(10));
        }
        return;
    }
    let Ok(server) = TcpStream::connect(upstream) else {
        return;
    };
    let _ = client.set_nodelay(true);
    let _ = server.set_nodelay(true);
    let (c2s_limit, s2c_limit, delay) = match fault {
        ServeFault::None => (usize::MAX, usize::MAX, Duration::ZERO),
        // The request side flows; the fault shapes the reply side.
        ServeFault::DropAfterBytes { bytes } => (usize::MAX, bytes, Duration::ZERO),
        ServeFault::DelayReply { millis } => {
            (usize::MAX, usize::MAX, Duration::from_millis(millis))
        }
        ServeFault::HangAccept => unreachable!("handled above"),
    };
    let c2s = {
        let (client, server) = (client.try_clone(), server.try_clone());
        let stop = Arc::clone(stop);
        std::thread::spawn(move || {
            if let (Ok(client), Ok(server)) = (client, server) {
                pump(client, server, c2s_limit, Duration::ZERO, &stop);
            }
        })
    };
    pump(server, client, s2c_limit, delay, stop);
    let _ = c2s.join();
}

/// Copies bytes `from` → `to` until EOF, error, the byte `limit`, or
/// proxy stop; reaching the limit severs *both* directions by dropping
/// the sockets.
fn pump(mut from: TcpStream, mut to: TcpStream, limit: usize, delay: Duration, stop: &AtomicBool) {
    let _ = from.set_read_timeout(Some(Duration::from_millis(50)));
    let mut remaining = limit;
    let mut buf = [0u8; 4096];
    while !stop.load(Ordering::SeqCst) && remaining > 0 {
        match from.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                }
                let n = n.min(remaining);
                if to.write_all(&buf[..n]).is_err() {
                    break;
                }
                remaining -= n;
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        }
    }
    let _ = from.shutdown(std::net::Shutdown::Both);
    let _ = to.shutdown(std::net::Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A single-connection echo upstream for proxy tests.
    fn echo_upstream() -> (String, JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || {
            // Serve exactly one connection, then exit with the test
            // (joining a multi-connection loop would block on accept).
            let Ok((mut conn, _)) = listener.accept() else {
                return;
            };
            let _ = conn.set_read_timeout(Some(Duration::from_secs(2)));
            let mut buf = [0u8; 1024];
            while let Ok(n) = conn.read(&mut buf) {
                if n == 0 || conn.write_all(&buf[..n]).is_err() {
                    break;
                }
            }
        });
        (addr, handle)
    }

    #[test]
    fn plans_are_deterministic_and_scriptable() {
        let script = ServeFaultPlan::scripted(vec![
            ServeFault::HangAccept,
            ServeFault::DropAfterBytes { bytes: 3 },
        ]);
        assert_eq!(script.fault_for(0), ServeFault::HangAccept);
        assert_eq!(script.fault_for(1), ServeFault::DropAfterBytes { bytes: 3 });
        assert_eq!(script.fault_for(2), ServeFault::None, "past the script: clean");

        let menu = vec![
            ServeFault::None,
            ServeFault::HangAccept,
            ServeFault::DelayReply { millis: 5 },
        ];
        let a = ServeFaultPlan::seeded(42, menu.clone());
        let b = ServeFaultPlan::seeded(42, menu.clone());
        let c = ServeFaultPlan::seeded(43, menu.clone());
        let draw = |p: &ServeFaultPlan| (0..64).map(|i| p.fault_for(i)).collect::<Vec<_>>();
        assert_eq!(draw(&a), draw(&b), "same seed, same schedule");
        assert_ne!(draw(&a), draw(&c), "different seed, different schedule");
        for fault in draw(&a) {
            assert!(menu.contains(&fault), "draws come from the menu");
        }
    }

    #[test]
    fn clean_proxy_passes_bytes_through() {
        let (upstream, server) = echo_upstream();
        let proxy = ChaosProxy::start(&upstream, ServeFaultPlan::clean()).unwrap();
        let mut conn = TcpStream::connect(proxy.addr()).unwrap();
        conn.write_all(b"ping").unwrap();
        let mut buf = [0u8; 4];
        conn.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
        assert_eq!(proxy.accepted(), 1);
        drop(conn);
        drop(proxy);
        let _ = server.join();
    }

    #[test]
    fn drop_after_bytes_severs_the_reply_mid_stream() {
        let (upstream, server) = echo_upstream();
        let plan = ServeFaultPlan::scripted(vec![ServeFault::DropAfterBytes { bytes: 2 }]);
        let proxy = ChaosProxy::start(&upstream, plan).unwrap();
        let mut conn = TcpStream::connect(proxy.addr()).unwrap();
        let _ = conn.set_read_timeout(Some(Duration::from_secs(5)));
        conn.write_all(b"ping").unwrap();
        let mut got = Vec::new();
        let mut buf = [0u8; 16];
        loop {
            match conn.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => got.extend_from_slice(&buf[..n]),
            }
        }
        assert_eq!(got, b"pi", "exactly the allowed bytes, then a cut");
        drop(conn);
        drop(proxy);
        let _ = server.join();
    }

    #[test]
    fn hang_accept_answers_nothing() {
        let (upstream, server) = echo_upstream();
        let plan = ServeFaultPlan::scripted(vec![ServeFault::HangAccept]);
        let proxy = ChaosProxy::start(&upstream, plan).unwrap();
        let mut conn = TcpStream::connect(proxy.addr()).unwrap();
        conn.write_all(b"ping").unwrap();
        let _ = conn.set_read_timeout(Some(Duration::from_millis(200)));
        let mut buf = [0u8; 4];
        let got = conn.read(&mut buf);
        assert!(
            matches!(got, Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock
                || e.kind() == std::io::ErrorKind::TimedOut),
            "a wedged accept never replies: {got:?}"
        );
        drop(conn);
        drop(proxy);
        drop(server); // the echo server never saw this connection
    }

    #[test]
    fn delay_reply_adds_latency_but_loses_nothing() {
        let (upstream, server) = echo_upstream();
        let plan = ServeFaultPlan::scripted(vec![ServeFault::DelayReply { millis: 120 }]);
        let proxy = ChaosProxy::start(&upstream, plan).unwrap();
        let mut conn = TcpStream::connect(proxy.addr()).unwrap();
        let _ = conn.set_read_timeout(Some(Duration::from_secs(5)));
        let started = std::time::Instant::now();
        conn.write_all(b"ping").unwrap();
        let mut buf = [0u8; 4];
        conn.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
        assert!(
            started.elapsed() >= Duration::from_millis(100),
            "the injected stall is observable"
        );
        drop(conn);
        drop(proxy);
        let _ = server.join();
    }
}
