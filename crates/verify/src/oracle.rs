//! The reference oracle: a naive, obviously-correct re-implementation of
//! the machine semantics in `ccs-sim`.
//!
//! [`reference_simulate`] models exactly the machine of
//! [`ccs_sim::simulate`] — same stage order (commit, issue per cluster in
//! ascending order, dispatch/steer, fetch), same issue-width and port
//! caps, same forwarding and broadcast-bandwidth model, same perfect
//! memory disambiguation, same gshare/L1/L2 behaviour — but with none of
//! the engine's optimizations:
//!
//! * readiness is recomputed from scratch every cycle instead of cached
//!   in window entries;
//! * memory dependences come from a plain `HashMap` sweep;
//! * completion and broadcast times are `Option<Cycle>` instead of a
//!   `Cycle::MAX` sentinel;
//! * cross-cluster deliveries are tracked in a boolean matrix instead of
//!   a bitmask;
//! * no scratch-buffer reuse, no broadcast-table pruning.
//!
//! Every helper is a small function over plain data, structured for
//! auditability: the intended reading order is top to bottom, one
//! pipeline stage per function. Differential tests drive random traces,
//! layouts and policies through both simulators and require cycle-exact
//! agreement (see `ccs_verify::campaign`).

use ccs_isa::{BranchClass, MachineConfig, OpClass, PortKind};
use ccs_sim::{
    CommitBound, Cycle, DispatchBound, InstRecord, ProducerInfo, ReadyBound, SimError, SimResult,
    SteerCause, SteerDecision, SteerView, SteeringPolicy,
};
use ccs_trace::{DynIdx, Trace};
use ccs_uarch::{BranchPredictor, Gshare, SetAssocCache};
use std::collections::{HashMap, VecDeque};

/// A dispatched, not-yet-issued instruction in a cluster window.
#[derive(Debug, Clone, Copy)]
struct Pending {
    inst: usize,
    priority: i64,
}

/// The full simulation state, one field per architectural structure.
struct Machine<'a> {
    config: &'a MachineConfig,
    trace: &'a Trace,
    /// True memory dependence of each load, from the reference sweep.
    mem_dep: Vec<Option<u32>>,
    records: Vec<InstRecord>,
    /// Completion cycle of each issued instruction.
    complete: Vec<Option<Cycle>>,
    /// Cycle each issued instruction's value enters the bypass network.
    broadcast: Vec<Option<Cycle>>,
    /// `delivered[p][c]`: producer `p`'s value already delivered to
    /// cluster `c` (for the global-values count).
    delivered: Vec<[bool; 8]>,
    /// Per-cluster scheduling windows.
    windows: Vec<Vec<Pending>>,
    /// Fetched instructions waiting to dispatch (front of the queue is
    /// the dispatch head).
    fe_queue: VecDeque<usize>,
    branch_predictor: Gshare,
    l1: SetAssocCache,
    l2: Option<SetAssocCache>,
    /// Broadcast slots consumed per cluster per cycle, for machines with
    /// a finite broadcast bandwidth.
    bcast_used: Vec<HashMap<Cycle, u32>>,
    next_fetch: usize,
    next_commit: usize,
    dispatched: usize,
    /// The mispredicted branch fetch is waiting on, if any.
    fetch_blocked_on: Option<usize>,
    /// First cycle fetch may run again after a redirect.
    fetch_resume: Cycle,
    mispredicts: u64,
    conditional_branches: u64,
    global_values: u64,
    steer_stall_cycles: u64,
    ilp: ccs_sim::IlpCensus,
}

/// Runs `trace` through the reference model of the machine described by
/// `config` under `policy`. The result is cycle-exact against
/// [`ccs_sim::simulate`] for any deterministic policy driven through the
/// identical call sequence (steer and priority at dispatch, on-commit in
/// retirement order).
///
/// # Errors
///
/// Returns [`SimError::CycleLimitExceeded`] under the same cycle budget
/// as the engine (`64·n + 100 000`).
pub fn reference_simulate(
    config: &MachineConfig,
    trace: &Trace,
    policy: &mut dyn SteeringPolicy,
) -> Result<SimResult, SimError> {
    let n = trace.len();
    let clusters = config.cluster_count();
    let mut m = Machine {
        config,
        trace,
        mem_dep: reference_memory_deps(trace),
        records: vec![blank_record(); n],
        complete: vec![None; n],
        broadcast: vec![None; n],
        delivered: vec![[false; 8]; n],
        windows: vec![Vec::new(); clusters],
        fe_queue: VecDeque::new(),
        branch_predictor: Gshare::new(config.front_end.gshare_history_bits),
        l1: SetAssocCache::from_config(&config.memory),
        l2: config
            .memory
            .l2
            .map(|c| SetAssocCache::new(c.bytes, c.ways, c.line_bytes)),
        bcast_used: vec![HashMap::new(); clusters],
        next_fetch: 0,
        next_commit: 0,
        dispatched: 0,
        fetch_blocked_on: None,
        fetch_resume: 0,
        mispredicts: 0,
        conditional_branches: 0,
        global_values: 0,
        steer_stall_cycles: 0,
        ilp: ccs_sim::IlpCensus::default(),
    };

    let limit: Cycle = 64 * n as Cycle + 100_000;
    let mut t: Cycle = 0;
    while m.next_commit < n {
        if t > limit {
            return Err(SimError::CycleLimitExceeded {
                cycle: t,
                committed: m.next_commit,
                total: n,
            });
        }
        m.commit_stage(t, policy);
        m.issue_stage(t);
        m.dispatch_stage(t, policy);
        m.fetch_stage(t);
        t += 1;
    }

    Ok(SimResult {
        config: *config,
        cycles: t,
        records: m.records,
        mispredicts: m.mispredicts,
        conditional_branches: m.conditional_branches,
        l1_misses: m.l1.misses(),
        l1_accesses: m.l1.accesses(),
        global_values: m.global_values,
        ilp: m.ilp,
        steer_stall_cycles: m.steer_stall_cycles,
    })
}

impl Machine<'_> {
    /// In-order commit: up to `commit_width` instructions whose execution
    /// completed on an *earlier* cycle retire, oldest first.
    fn commit_stage(&mut self, t: Cycle, policy: &mut dyn SteeringPolicy) {
        let mut committed_this_cycle = 0;
        while self.next_commit < self.dispatched
            && committed_this_cycle < self.config.commit_width
            && self.complete[self.next_commit].is_some_and(|c| c < t)
        {
            let i = self.next_commit;
            self.records[i].commit = t;
            let record = self.records[i];
            policy.on_commit(DynIdx::new(i as u32), &self.trace.as_slice()[i], &record);
            self.next_commit += 1;
            committed_this_cycle += 1;
        }
    }

    /// The cycle an operand of `consumer` (placed on `cluster`) becomes
    /// usable, or `None` while its producer has not issued. A local
    /// producer bypasses directly at completion; a remote one is seen
    /// after its broadcast plus the forwarding latency.
    fn operand_visible(&self, producer: usize, cluster: usize) -> Option<Cycle> {
        let complete = self.complete[producer]?;
        let producer_cluster = self.records[producer].cluster as usize;
        let fwd = self.config.forwarding_between(producer_cluster, cluster);
        if fwd == 0 {
            Some(complete)
        } else {
            Some(self.broadcast[producer]? + fwd as Cycle)
        }
    }

    /// All dependences of instruction `i`: the register operands plus the
    /// true memory dependence.
    fn dependences(&self, i: usize) -> impl Iterator<Item = usize> + '_ {
        self.trace.as_slice()[i]
            .deps
            .iter()
            .filter_map(|d| d.map(|p| p.index()))
            .chain(self.mem_dep[i].map(|s| s as usize))
    }

    /// The cycle window entry `i` (on `cluster`) is ready to issue, or
    /// `None` while some dependence has not issued. Recomputed from
    /// scratch every cycle: readiness is a pure function of the
    /// producers' completion times, so no caching is needed.
    fn ready_cycle(&self, i: usize, cluster: usize) -> Option<Cycle> {
        let dispatch_floor = self.records[i].dispatch + 1;
        let mut ready = dispatch_floor;
        for p in self.dependences(i) {
            ready = ready.max(self.operand_visible(p, cluster)?);
        }
        Some(ready)
    }

    /// Per-cluster select and execute, clusters in ascending order.
    /// Within a cluster, ready entries issue in priority order (ties
    /// oldest first) until the issue width or a port class runs out;
    /// a full port skips the instruction without stopping younger ones.
    fn issue_stage(&mut self, t: Cycle) {
        let mut available_total = 0;
        let mut issued_total = 0;
        let mut any_in_window = false;
        for cluster in 0..self.config.cluster_count() {
            if self.windows[cluster].is_empty() {
                continue;
            }
            any_in_window = true;
            let mut candidates: Vec<Pending> = self.windows[cluster]
                .iter()
                .filter(|e| self.ready_cycle(e.inst, cluster).is_some_and(|r| r <= t))
                .copied()
                .collect();
            available_total += candidates.len();
            candidates.sort_by_key(|e| (std::cmp::Reverse(e.priority), e.inst));

            let mut width_used = 0;
            let mut port_used = [0usize; 3]; // int, fp, mem
            let mut issued: Vec<usize> = Vec::new();
            for e in candidates {
                if width_used >= self.config.cluster.issue_width {
                    break;
                }
                let port = match self.trace.as_slice()[e.inst].op().port() {
                    PortKind::Int => 0,
                    PortKind::Fp => 1,
                    PortKind::Mem => 2,
                };
                let cap = [
                    self.config.cluster.int_ports,
                    self.config.cluster.fp_ports,
                    self.config.cluster.mem_ports,
                ][port];
                if port_used[port] >= cap {
                    continue;
                }
                port_used[port] += 1;
                width_used += 1;
                self.execute(e.inst, cluster, t);
                issued.push(e.inst);
            }
            issued_total += issued.len();
            self.windows[cluster].retain(|e| !issued.contains(&e.inst));
        }
        if any_in_window {
            self.ilp.record(available_total, issued_total);
        }
    }

    /// Executes instruction `i` on `cluster` starting at cycle `t`:
    /// accesses the cache hierarchy for memory ops, fixes the completion
    /// time, schedules the broadcast, and counts cross-cluster
    /// deliveries of its register operands.
    fn execute(&mut self, i: usize, cluster: usize, t: Cycle) {
        let inst = &self.trace.as_slice()[i];
        let mut latency = inst.op().latency() as Cycle;
        if let Some(addr) = inst.mem_addr {
            if !self.l1.access(addr) {
                self.records[i].l1_miss = true;
                let mut extra = self.config.memory.l2_latency;
                if let (Some(l2), Some(l2cfg)) = (self.l2.as_mut(), self.config.memory.l2) {
                    if !l2.access(addr) {
                        extra += l2cfg.memory_latency;
                    }
                }
                self.records[i].mem_extra = extra;
                latency += extra as Cycle;
            }
        }
        self.records[i].issue = t;
        // Stamp the ready time for the record stream; by now every
        // dependence has issued, so it is fully determined.
        self.records[i].ready = self
            .ready_cycle(i, cluster)
            .expect("an issuing instruction has all operands determined");
        self.records[i].complete = t + latency;
        self.complete[i] = Some(t + latency);
        self.broadcast[i] = Some(self.broadcast_slot(cluster, t + latency));

        for dep in inst.producers() {
            let producer_cluster = self.records[dep.index()].cluster as usize;
            if producer_cluster != cluster && !self.delivered[dep.index()][cluster] {
                self.delivered[dep.index()][cluster] = true;
                self.global_values += 1;
            }
        }
    }

    /// When the value completing at `complete` actually enters the
    /// bypass network: immediately with unlimited bandwidth, else at the
    /// first cycle with a free egress slot on its cluster.
    fn broadcast_slot(&mut self, cluster: usize, complete: Cycle) -> Cycle {
        match self.config.forward_bandwidth {
            None => complete,
            Some(limit) => {
                let mut slot = complete;
                loop {
                    let used = self.bcast_used[cluster].entry(slot).or_insert(0);
                    if *used < limit {
                        *used += 1;
                        return slot;
                    }
                    slot += 1;
                }
            }
        }
    }

    /// In-order dispatch: up to `fetch_width` instructions leave the
    /// front-end queue, each steered by the policy; a stall (or a full
    /// target window) holds the head and everything behind it.
    fn dispatch_stage(&mut self, t: Cycle, policy: &mut dyn SteeringPolicy) {
        let depth = self.config.front_end.depth_to_dispatch as Cycle;
        let win_cap = self.config.cluster.window_entries;
        let mut dispatched_this_cycle = 0;
        while dispatched_this_cycle < self.config.front_end.fetch_width {
            let Some(&head) = self.fe_queue.front() else { break };
            if self.records[head].fetch + depth > t {
                break; // still inside the front-end pipe
            }
            if self.dispatched - self.next_commit >= self.config.rob_entries {
                break; // ROB full
            }
            let inst = &self.trace.as_slice()[head];
            let mut producers = [None, None];
            for (slot, dep) in inst.deps.iter().enumerate() {
                if let Some(p) = dep {
                    producers[slot] = Some(ProducerInfo {
                        idx: *p,
                        pc: self.trace.as_slice()[p.index()].pc(),
                        cluster: self.records[p.index()].cluster as usize,
                        completed: self.globally_visible(p.index(), t),
                    });
                }
            }
            let occupancy: Vec<usize> = self.windows.iter().map(Vec::len).collect();
            let view = SteerView {
                inst,
                idx: DynIdx::new(head as u32),
                now: t,
                occupancy: &occupancy,
                capacity: win_cap,
                producers,
            };
            let outcome = policy.steer(&view);
            let (cluster, cause) = match outcome.decision {
                SteerDecision::To { cluster, cause } if occupancy[cluster] < win_cap => {
                    (cluster, cause)
                }
                _ => {
                    self.steer_stall_cycles += 1;
                    break;
                }
            };
            let record = &mut self.records[head];
            record.dispatch = t;
            record.cluster = cluster as u8;
            record.steer_cause = cause;
            record.predicted_critical = outcome.predicted_critical;
            record.loc = outcome.loc;
            let priority = policy.priority(DynIdx::new(head as u32), inst);
            self.windows[cluster].push(Pending { inst: head, priority });
            self.fe_queue.pop_front();
            self.dispatched += 1;
            dispatched_this_cycle += 1;
        }
    }

    /// Whether producer `p`'s value is visible to *every* cluster at `t`
    /// (what [`ProducerInfo::completed`] reports to steering policies).
    fn globally_visible(&self, p: usize, t: Cycle) -> bool {
        self.complete[p].is_some()
            && self.broadcast[p].is_some_and(|b| b + self.config.forward_latency as Cycle <= t)
    }

    /// Fetch: blocked entirely while a mispredicted branch is in flight;
    /// resumes the cycle after it completes. Otherwise fetches up to
    /// `fetch_width` instructions into the skid buffer, predicting each
    /// conditional branch as it goes; a mispredict ends the cycle's
    /// fetch group and blocks fetch on the branch.
    fn fetch_stage(&mut self, t: Cycle) {
        if let Some(b) = self.fetch_blocked_on {
            if let Some(complete) = self.complete[b] {
                self.fetch_resume = complete + 1;
                self.fetch_blocked_on = None;
            }
        }
        if self.fetch_blocked_on.is_some() || t < self.fetch_resume {
            return;
        }
        let depth = self.config.front_end.depth_to_dispatch as Cycle;
        let fetch_width = self.config.front_end.fetch_width;
        let skid = self.config.front_end.skid_buffer;
        // Instructions that cleared the front-end pipe occupy skid-buffer
        // entries; those still in flight inside the pipe do not.
        let waiting = self
            .fe_queue
            .iter()
            .take_while(|&&i| self.records[i].fetch + depth <= t)
            .count();
        let in_pipe = self.fe_queue.len() - waiting;
        let mut fetched_this_cycle = 0;
        while fetched_this_cycle < fetch_width
            && self.next_fetch < self.trace.len()
            && waiting + in_pipe + fetched_this_cycle < skid + (depth as usize + 1) * fetch_width
            && waiting < skid
        {
            let i = self.next_fetch;
            let inst = &self.trace.as_slice()[i];
            self.records[i].fetch = t;
            self.fe_queue.push_back(i);
            self.next_fetch += 1;
            fetched_this_cycle += 1;

            if let Some(br) = inst.branch {
                if br.class == BranchClass::Conditional {
                    self.conditional_branches += 1;
                    let predicted = self.branch_predictor.predict(inst.pc());
                    self.branch_predictor.update(inst.pc(), br.taken);
                    if predicted != br.taken {
                        self.mispredicts += 1;
                        self.records[i].mispredicted = true;
                        self.fetch_blocked_on = Some(i);
                        break;
                    }
                }
                if br.taken && self.config.front_end.break_on_taken {
                    break;
                }
            }
        }
    }
}

/// A fresh record with every event at cycle 0 and neutral attribution.
/// The oracle fills event times and the policy-visible fields
/// (`cluster`, `steer_cause`, `predicted_critical`, `loc`, flags); the
/// binding-constraint enums are engine diagnostics the oracle does not
/// reconstruct, and differential comparison ignores them.
fn blank_record() -> InstRecord {
    InstRecord {
        fetch: 0,
        dispatch: 0,
        ready: 0,
        issue: 0,
        complete: 0,
        commit: 0,
        cluster: 0,
        mispredicted: false,
        l1_miss: false,
        mem_extra: 0,
        dispatch_bound: DispatchBound::FrontEnd,
        ready_bound: ReadyBound::Dispatch,
        commit_bound: CommitBound::Complete,
        steer_cause: SteerCause::Only,
        predicted_critical: false,
        loc: 0.0,
    }
}

/// Memory dependences the obvious way: a map from 8-byte word to the
/// latest older store, swept once over the trace.
fn reference_memory_deps(trace: &Trace) -> Vec<Option<u32>> {
    let mut last_store: HashMap<u64, u32> = HashMap::new();
    trace
        .as_slice()
        .iter()
        .enumerate()
        .map(|(i, inst)| match (inst.op(), inst.mem_addr) {
            (OpClass::Store, Some(addr)) => {
                last_store.insert(addr >> 3, i as u32);
                None
            }
            (OpClass::Load, Some(addr)) => last_store.get(&(addr >> 3)).copied(),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_isa::ClusterLayout;
    use ccs_sim::policies::LeastLoaded;
    use ccs_trace::Benchmark;

    #[test]
    fn oracle_matches_engine_on_a_baseline_run() {
        let trace = Benchmark::Vpr.generate(1, 1_200);
        for layout in ClusterLayout::ALL {
            let cfg = ccs_isa::MachineConfig::micro05_baseline().with_layout(layout);
            let engine = ccs_sim::simulate(&cfg, &trace, &mut LeastLoaded).unwrap();
            let oracle = reference_simulate(&cfg, &trace, &mut LeastLoaded).unwrap();
            assert_eq!(engine.cycles, oracle.cycles, "{layout}");
            assert_eq!(engine.global_values, oracle.global_values, "{layout}");
            assert_eq!(engine.steer_stall_cycles, oracle.steer_stall_cycles, "{layout}");
        }
    }

    #[test]
    fn empty_trace_takes_zero_cycles() {
        let trace = ccs_trace::TraceBuilder::new().finish();
        let cfg = ccs_isa::MachineConfig::micro05_baseline();
        let r = reference_simulate(&cfg, &trace, &mut LeastLoaded).unwrap();
        assert_eq!(r.cycles, 0);
        assert!(r.records.is_empty());
    }
}
