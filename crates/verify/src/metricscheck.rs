//! Cross-checks observability counters against the simulation result.
//!
//! The metrics sink ([`ccs_sim::SimMetrics`]) counts events *as the
//! engine emits them*; the result ([`SimResult`]) carries the same facts
//! as per-instruction records written by the scheduling logic itself.
//! The two paths share no code, so recounting the records and demanding
//! exact agreement catches a mis-placed hook (an `on_steer` outside the
//! success arm, an `on_issue` fired twice) the same way the reference
//! oracle catches a scheduling bug: by independent derivation.

use ccs_obs::ObsError;
use ccs_sim::{SimMetrics, SimResult};

/// Requires every recountable metrics counter to agree exactly with the
/// per-instruction records in `result`.
///
/// Checks, in order: cycle count, instruction count, committed count,
/// per-cause steering tallies against
/// [`SimResult::steer_cause_counts`], per-cluster steering placements
/// and per-cluster issue totals against
/// [`SimResult::per_cluster_counts`], cross-cluster bypass traffic
/// against [`SimResult::global_values`](SimResult), steering stall
/// cycles, occupancy sample counts (one per cluster per cycle), and the
/// commit histogram (one sample per cycle, weighted sum = instructions).
///
/// # Errors
///
/// The first disagreement as [`ObsError::CounterMismatch`].
pub fn check_metrics(metrics: &SimMetrics, result: &SimResult) -> Result<(), ObsError> {
    let expect = |what: &'static str, observed: u64, expected: u64| {
        if observed == expected {
            Ok(())
        } else {
            Err(ObsError::CounterMismatch {
                what,
                observed,
                expected,
            })
        }
    };
    let n = result.records.len() as u64;

    expect("cycles", metrics.cycles, result.cycles)?;
    expect("instructions", metrics.instructions, n)?;
    expect("committed", metrics.committed, n)?;

    const CAUSE_NAMES: [&str; 5] = [
        "steer cause: only",
        "steer cause: dependence",
        "steer cause: load-balance",
        "steer cause: no-deps",
        "steer cause: proactive",
    ];
    let causes = result.steer_cause_counts();
    for (i, name) in CAUSE_NAMES.iter().enumerate() {
        // Leak-free &'static str: the names above are literals.
        expect(name, metrics.steer_causes[i], causes[i])?;
    }

    let per_cluster = result.per_cluster_counts();
    expect(
        "cluster count",
        metrics.clusters as u64,
        per_cluster.len() as u64,
    )?;
    for (c, &count) in per_cluster.iter().enumerate() {
        expect("per-cluster steering placements", metrics.steer_placements[c], count)?;
        expect("per-cluster issue total", metrics.issued_on_cluster(c), count)?;
    }

    expect("cross-cluster bypasses", metrics.bypass_total(), result.global_values)?;
    expect(
        "steering stall cycles",
        metrics.steer_stall_cycles,
        result.steer_stall_cycles,
    )?;

    for occ in &metrics.occupancy {
        expect("occupancy samples per cluster", occ.samples(), result.cycles)?;
    }
    expect(
        "commit histogram samples",
        metrics.commit_per_cycle.samples(),
        result.cycles,
    )?;
    expect(
        "commit histogram weighted sum",
        metrics.commit_per_cycle.weighted_sum(),
        n,
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_core::{LocMode, PaperPolicy, PolicyKind, PredictorBank};
    use ccs_isa::{ClusterLayout, MachineConfig};
    use ccs_sim::{simulate_observed, RunObserver, SimBudget};
    use ccs_trace::Benchmark;

    fn observed_run() -> (SimMetrics, SimResult) {
        let config = MachineConfig::micro05_baseline().with_layout(ClusterLayout::C4x2w);
        let trace = Benchmark::Vpr.generate(11, 3_000);
        let bank = PredictorBank::new(LocMode::Quantized16, 7);
        let mut policy = PaperPolicy::new(PolicyKind::Focused, bank);
        let mut observer = RunObserver::for_machine(config.cluster_count());
        let result = simulate_observed(
            &config,
            &trace,
            &mut policy,
            &SimBudget::default(),
            &mut observer,
        )
        .expect("observed run succeeds");
        (observer.into_metrics(), result)
    }

    #[test]
    fn counters_reconcile_with_the_result_records() {
        let (metrics, result) = observed_run();
        check_metrics(&metrics, &result).expect("all counters agree");
    }

    type Mutation = Box<dyn Fn(&mut SimMetrics)>;

    #[test]
    fn perturbing_any_counter_is_caught() {
        let (metrics, result) = observed_run();
        let mutations: Vec<Mutation> = vec![
            Box::new(|m| m.cycles += 1),
            Box::new(|m| m.committed -= 1),
            Box::new(|m| m.steer_causes[1] += 1),
            Box::new(|m| m.steer_placements[0] += 1),
            Box::new(|m| m.issued_ports[2][0] += 1),
            Box::new(|m| m.steer_stall_cycles += 1),
            Box::new(|m| {
                let total = m.bypass_total();
                // Move one bypass into thin air: bump a matrix cell.
                m.bypass[1] += 1;
                assert_eq!(m.bypass_total(), total + 1);
            }),
        ];
        for (i, mutate) in mutations.iter().enumerate() {
            let mut bad = metrics.clone();
            mutate(&mut bad);
            assert!(
                check_metrics(&bad, &result).is_err(),
                "mutation {i} slipped through the cross-check"
            );
        }
    }
}
