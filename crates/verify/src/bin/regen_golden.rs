//! Regenerates the golden regression corpus under `results/golden/`.
//!
//! Run after an *intended* simulator behaviour change:
//!
//! ```text
//! cargo run --release -p ccs-verify --bin regen_golden
//! ```
//!
//! then review the `results/golden/` diff and commit it with the change.
//! Every cell runs in checked mode, so a regeneration that completes has
//! also audited the full grid against the structural invariant checker.

use ccs_verify::golden::{corpus_files, golden_dir};

fn main() {
    let threads = std::thread::available_parallelism().map_or(1, usize::from);
    let dir = golden_dir();
    std::fs::create_dir_all(&dir).expect("create results/golden");
    let files = corpus_files(threads);
    let mut changed = 0;
    for (name, contents) in &files {
        let path = dir.join(name);
        let previous = std::fs::read_to_string(&path).ok();
        if previous.as_deref() != Some(contents.as_str()) {
            changed += 1;
            println!("updated {}", path.display());
        }
        std::fs::write(&path, contents).expect("write golden file");
    }
    println!(
        "golden corpus: {} files regenerated under {} ({changed} changed)",
        files.len(),
        dir.display()
    );
}
