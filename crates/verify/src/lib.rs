//! Differential verification for the clustered-superscalar simulator.
//!
//! The production engine in `ccs-sim` is optimized: it caches readiness
//! in window entries, resolves memory dependences through an
//! open-addressed table, reuses scratch buffers, and encodes "not yet"
//! as a sentinel cycle. Each of those optimizations is a place for a
//! subtle scheduling bug to hide. This crate provides nine independent
//! lines of defence:
//!
//! 1. **A reference oracle** ([`reference_simulate`]) — a naive
//!    event-per-cycle simulator of the *same machine semantics*, written
//!    for readability, with no caching and no sentinels. Differential
//!    campaigns ([`campaign`]) drive random traces, benchmark traces,
//!    every cluster layout and every steering policy through both
//!    simulators and require cycle-exact agreement ([`diff_results`]).
//! 2. **An invariant checker** (in `ccs-sim` itself:
//!    [`ccs_sim::check_invariants`] and the `checked` run mode) that
//!    audits a finished schedule against the machine's structural rules.
//! 3. **A golden regression corpus** ([`golden`]) — committed snapshots
//!    of CPI, event counts and critical-path breakdowns across the full
//!    benchmark × layout × policy grid, regenerated with the
//!    `regen_golden` binary and compared by snapshot tests with readable
//!    diffs.
//! 4. **A fault-injection harness** ([`faultinject`]) — seeded cell
//!    faults (panics, cycle bombs, hangs) that exercise the grid
//!    executor's isolation and watchdog machinery, plus corrupted traces
//!    and mutated schedules proving the validator and every invariant
//!    rule actually fire.
//! 5. **A metrics cross-check** ([`check_metrics`]) — recounts the
//!    observability counters (`ccs-obs` sinks threaded through the
//!    engine) from the per-instruction records and requires exact
//!    agreement, so a mis-placed metrics hook cannot drift silently.
//! 6. **A bounds oracle** ([`bounds`]) — `ccs-predict`'s analytic
//!    `[cycles_lo, cycles_hi]` / IPC-ceiling envelopes, sound for every
//!    legal schedule, checked against the engine inside every
//!    differential case and across the golden corpus; seeded bound
//!    perturbations in [`faultinject`] prove each rule non-vacuous.
//! 7. **Protocol fuzzing** ([`protocol`]) — seeded byte-level mutations
//!    of serve wire frames (truncation, corrupted magic, hostile length
//!    prefixes, flipped payload bits) that the service integration
//!    suite feeds to a live `ccs-serve` daemon, asserting typed errors
//!    and a surviving process.
//! 8. **Scenario-manifest fuzzing** ([`scenariofuzz`]) — seeded random
//!    *valid* `ccs-scenario` workloads (arbitrary emitter mixes, phase
//!    sequences, SMT interleavings) checked for manifest round-trip
//!    stability and trace validity, then driven through the full
//!    differential pipeline, so the declarative workload space gets the
//!    same engine-vs-oracle guarantee as the hand-written models.
//! 9. **Service-level chaos** ([`chaos`]) — a seeded fault plan
//!    ([`ServeFaultPlan`]) and byte-level fault-injecting TCP proxy
//!    ([`ChaosProxy`]) staging shard deaths, wedged accept loops, torn
//!    replies, and injected latency, so the sharded-cluster integration
//!    suite can prove failover and journal-replay recovery keep
//!    campaign results bit-identical under failure.
//!
//! See `DESIGN.md` ("Verification subsystem") for the methodology.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod campaign;
pub mod chaos;
pub mod diff;
pub mod faultinject;
pub mod golden;
pub mod metricscheck;
pub mod oracle;
pub mod protocol;
pub mod scenariofuzz;

pub use bounds::{check_bounds, check_bounds_against, BoundViolation};
pub use campaign::{
    run_case, run_trace_case, standard_campaign, CaseOutcome, DiffCase, TraceSource,
};
pub use chaos::{ChaosProxy, ServeFault, ServeFaultPlan};
pub use diff::diff_results;
pub use faultinject::{
    corrupt_trace, run_grid_with_faults, BoundMutation, CellFault, FaultPlan, ScheduleMutation,
    TraceCorruption, ALL_BOUND_MUTATIONS, ALL_CORRUPTIONS, ALL_MUTATIONS,
};
pub use metricscheck::check_metrics;
pub use oracle::reference_simulate;
pub use protocol::{mutate_frame, FrameMutation, ALL_FRAME_MUTATIONS, FRAME_HEADER_LEN};
pub use scenariofuzz::{fuzz_scenario, run_scenario_case};
