//! Byte-level fuzzing of the serve wire protocol.
//!
//! The `ccs-serve` daemon frames every message as 4 magic bytes +
//! little-endian `u32` payload length + UTF-8 JSON. This module mutates
//! *well-formed frame bytes* into the shapes a hostile or broken client
//! produces — truncations, corrupted magic, hostile length prefixes,
//! flipped payload bytes, garbage JSON — so the protocol integration
//! suite can assert the daemon answers each with a typed error (or a
//! clean hangup) and keeps serving.
//!
//! Deliberately **byte-level with no `ccs-serve` dependency**: the
//! mutations encode only the published framing contract (magic at
//! offset 0, length at offset 4). If the serve crate's framing drifts
//! from that contract, the fuzz suite breaks loudly instead of
//! mutating stale shapes.
//!
//! Everything is seeded: [`mutate_frame`] is a pure function of
//! `(frame, mutation, seed)`, so a CI failure reproduces locally by
//! naming its seed, matching the fault-injection harness's discipline.

use rand::{rngs::StdRng, RngExt, SeedableRng};

/// Size of the frame header the mutations assume: 4 magic bytes + a
/// little-endian `u32` payload length.
pub const FRAME_HEADER_LEN: usize = 8;

/// One way to break a well-formed frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameMutation {
    /// Drop bytes from the end: a client killed mid-write. The seed
    /// picks how much survives (always at least one byte, never all).
    Truncate,
    /// Overwrite one magic byte: a peer speaking another protocol.
    CorruptMagic,
    /// Replace the length prefix with a value far above any sane frame
    /// (`u32::MAX` minus a seeded offset): a hostile allocation probe.
    OversizeLength,
    /// Declare a length *shorter* than the actual payload, making the
    /// remainder parse as the (garbage) start of a next frame.
    UnderdeclareLength,
    /// Flip one bit of one payload byte: line noise inside valid
    /// framing. Usually yields malformed JSON the payload parser must
    /// reject without panicking.
    FlipPayloadBit,
    /// Keep the framing valid but replace the payload with seeded
    /// printable garbage of the same length.
    GarbagePayload,
    /// Prepend half of another copy of the frame: a desynchronized
    /// stream resuming mid-conversation.
    PrependPartialFrame,
}

/// Every mutation, for corpus loops.
pub const ALL_FRAME_MUTATIONS: [FrameMutation; 7] = [
    FrameMutation::Truncate,
    FrameMutation::CorruptMagic,
    FrameMutation::OversizeLength,
    FrameMutation::UnderdeclareLength,
    FrameMutation::FlipPayloadBit,
    FrameMutation::GarbagePayload,
    FrameMutation::PrependPartialFrame,
];

/// Applies `mutation` to a copy of `frame` (well-formed frame bytes,
/// header included), deterministically in `seed`.
///
/// Frames shorter than the header are returned unchanged for mutations
/// that need one — the caller is fuzzing framing, not this function.
pub fn mutate_frame(frame: &[u8], mutation: FrameMutation, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut bytes = frame.to_vec();
    match mutation {
        FrameMutation::Truncate => {
            if bytes.len() > 1 {
                let keep = 1 + rng.random_range(0..bytes.len() as u64 - 1) as usize;
                bytes.truncate(keep);
            }
        }
        FrameMutation::CorruptMagic => {
            if !bytes.is_empty() {
                let i = rng.random_range(0..4.min(bytes.len() as u64)) as usize;
                bytes[i] ^= 0x20 | (rng.random_range(1..256) as u8 & 0x5f) | 1;
            }
        }
        FrameMutation::OversizeLength => {
            if bytes.len() >= FRAME_HEADER_LEN {
                let declared = u32::MAX - rng.random_range(0..1_000) as u32;
                bytes[4..8].copy_from_slice(&declared.to_le_bytes());
            }
        }
        FrameMutation::UnderdeclareLength => {
            if bytes.len() > FRAME_HEADER_LEN {
                let payload = (bytes.len() - FRAME_HEADER_LEN) as u64;
                let declared = rng.random_range(0..payload) as u32;
                bytes[4..8].copy_from_slice(&declared.to_le_bytes());
            }
        }
        FrameMutation::FlipPayloadBit => {
            if bytes.len() > FRAME_HEADER_LEN {
                let span = (bytes.len() - FRAME_HEADER_LEN) as u64;
                let i = FRAME_HEADER_LEN + rng.random_range(0..span) as usize;
                bytes[i] ^= 1 << rng.random_range(0..8);
            }
        }
        FrameMutation::GarbagePayload => {
            for b in bytes.iter_mut().skip(FRAME_HEADER_LEN) {
                // Printable, brace-free garbage: never valid JSON, never
                // invalid UTF-8, so it must fail in the payload parser
                // rather than the framing layer.
                *b = b'a' + rng.random_range(0..26) as u8;
            }
        }
        FrameMutation::PrependPartialFrame => {
            let half = frame.len() / 2;
            let mut prefixed = frame[..half].to_vec();
            prefixed.extend_from_slice(&bytes);
            bytes = prefixed;
        }
    }
    bytes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frame() -> Vec<u8> {
        let payload = br#"{"v":1,"type":"status"}"#;
        let mut f = b"CCS1".to_vec();
        f.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        f.extend_from_slice(payload);
        f
    }

    #[test]
    fn mutations_are_pure_functions_of_their_seed() {
        let frame = sample_frame();
        for mutation in ALL_FRAME_MUTATIONS {
            let a = mutate_frame(&frame, mutation, 7);
            let b = mutate_frame(&frame, mutation, 7);
            assert_eq!(a, b, "{mutation:?} not deterministic");
        }
    }

    #[test]
    fn every_mutation_changes_the_bytes() {
        let frame = sample_frame();
        for mutation in ALL_FRAME_MUTATIONS {
            let mutated = mutate_frame(&frame, mutation, 3);
            assert_ne!(mutated, frame, "{mutation:?} was a no-op");
        }
    }

    #[test]
    fn truncate_always_leaves_a_proper_prefix() {
        let frame = sample_frame();
        for seed in 0..50 {
            let t = mutate_frame(&frame, FrameMutation::Truncate, seed);
            assert!(!t.is_empty() && t.len() < frame.len());
            assert_eq!(&frame[..t.len()], &t[..]);
        }
    }

    #[test]
    fn corrupt_magic_touches_only_the_magic() {
        let frame = sample_frame();
        for seed in 0..20 {
            let m = mutate_frame(&frame, FrameMutation::CorruptMagic, seed);
            assert_eq!(m.len(), frame.len());
            assert_ne!(&m[..4], b"CCS1", "seed {seed} left the magic intact");
            assert_eq!(&m[4..], &frame[4..]);
        }
    }

    #[test]
    fn oversize_length_declares_beyond_any_real_limit() {
        let frame = sample_frame();
        let m = mutate_frame(&frame, FrameMutation::OversizeLength, 11);
        let declared = u32::from_le_bytes([m[4], m[5], m[6], m[7]]);
        assert!(declared as usize > 1 << 20);
    }

    #[test]
    fn garbage_payload_preserves_framing() {
        let frame = sample_frame();
        let m = mutate_frame(&frame, FrameMutation::GarbagePayload, 5);
        assert_eq!(&m[..FRAME_HEADER_LEN], &frame[..FRAME_HEADER_LEN]);
        assert!(m[FRAME_HEADER_LEN..].iter().all(u8::is_ascii_lowercase));
    }
}
