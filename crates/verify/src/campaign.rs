//! Differential test campaigns: deterministic fleets of randomized
//! (trace, machine, policy) cases driven through the engine and the
//! reference oracle.
//!
//! A campaign is a pure function of its case count: case `i` always maps
//! to the same trace, layout, policy, forwarding parameters and training
//! depth, so a failure reported by CI reproduces locally by id. The
//! enumeration round-robins layouts × the full policy ladder (the five
//! static rungs plus the two dynamic policies) with period 28, so any
//! campaign of at least 28 cases covers every pair.

use crate::{diff_results, reference_simulate};
use ccs_core::{CellPolicy, LocMode, PolicyKind, PredictorBank};
use ccs_critpath::analyze;
use ccs_isa::{
    ArchReg, BranchInfo, ClusterLayout, MachineConfig, OpClass, Pc, StaticInst,
};
use ccs_trace::{Benchmark, Trace, TraceBuilder};
use rand::{rngs::StdRng, RngExt, SeedableRng};

/// Every steering policy under verification: the paper's ladder (the
/// four LADDER rungs plus the plain dependence baseline) and the two
/// dynamic policies of the adaptive tier. Dynamic policies are pure
/// functions of their observed call sequence, so they differentially
/// verify exactly like the static ones — no oracle-side special-casing.
pub const ALL_POLICIES: [PolicyKind; 7] = [
    PolicyKind::Dependence,
    PolicyKind::Focused,
    PolicyKind::FocusedLoc,
    PolicyKind::StallOverSteer,
    PolicyKind::Proactive,
    PolicyKind::Adaptive,
    PolicyKind::IneffSteer,
];

/// Where a differential case's trace comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceSource {
    /// A workload-model trace (the same generators the figures use).
    Bench {
        /// The benchmark model.
        bench: Benchmark,
        /// Generator seed.
        seed: u64,
        /// Dynamic instruction count.
        len: usize,
    },
    /// An unstructured random trace from [`random_trace`] — no workload
    /// realism, maximal coverage of odd dependence/branch/memory shapes.
    Random {
        /// Generator seed.
        seed: u64,
        /// Dynamic instruction count.
        len: usize,
    },
}

impl TraceSource {
    /// Materializes the trace.
    pub fn trace(&self) -> Trace {
        match *self {
            TraceSource::Bench { bench, seed, len } => bench.generate(seed, len),
            TraceSource::Random { seed, len } => random_trace(seed, len),
        }
    }
}

/// One engine-vs-oracle differential case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiffCase {
    /// Position in the campaign (reproduces the case exactly).
    pub id: usize,
    /// Cluster layout under test.
    pub layout: ClusterLayout,
    /// Steering policy under test.
    pub policy: PolicyKind,
    /// Trace source.
    pub source: TraceSource,
    /// Inter-cluster forwarding latency (cycles).
    pub forward_latency: u32,
    /// Per-cluster broadcast bandwidth (`None` = unlimited).
    pub forward_bandwidth: Option<u32>,
    /// Training epochs before the measured (differential) run.
    pub epochs: u32,
}

impl DiffCase {
    /// The machine configuration this case simulates.
    pub fn config(&self) -> MachineConfig {
        MachineConfig::micro05_baseline()
            .with_layout(self.layout)
            .with_forward_latency(self.forward_latency)
            .with_forward_bandwidth(self.forward_bandwidth)
    }

    /// One-line description for failure reports.
    pub fn describe(&self) -> String {
        format!(
            "case {}: {} {} {:?} fwd={} bw={:?} epochs={}",
            self.id,
            self.layout,
            self.policy.name(),
            self.source,
            self.forward_latency,
            self.forward_bandwidth,
            self.epochs,
        )
    }
}

/// The outcome of one differential case.
#[derive(Debug, Clone)]
pub enum CaseOutcome {
    /// Engine and oracle agreed on every compared quantity, the engine's
    /// schedule passed the invariant checker, and the critical-path
    /// breakdown conserved the cycle count.
    Agreed,
    /// Something diverged; one readable line per problem.
    Diverged(Vec<String>),
}

/// Enumerates the first `cases` cases of the standard campaign.
///
/// Layouts and policies round-robin with coprime strides so the full
/// 4 × 7 product is covered every 28 cases; trace sources alternate
/// between the twelve workload models and unstructured random traces;
/// forwarding latency, broadcast bandwidth and training depth cycle
/// through their interesting values on their own periods.
pub fn standard_campaign(cases: usize) -> Vec<DiffCase> {
    (0..cases)
        .map(|id| {
            let source = if id % 3 == 0 {
                TraceSource::Bench {
                    bench: Benchmark::ALL[(id / 3) % Benchmark::ALL.len()],
                    seed: 1 + (id / 36) as u64,
                    len: 500 + 40 * (id % 8),
                }
            } else {
                TraceSource::Random {
                    seed: 0xD1FF_0000 ^ id as u64,
                    len: 350 + 61 * (id % 7),
                }
            };
            DiffCase {
                id,
                layout: ClusterLayout::ALL[id % 4],
                policy: ALL_POLICIES[(id / 4) % 7],
                source,
                forward_latency: [1, 2, 4][(id / 20) % 3],
                forward_bandwidth: [None, None, Some(1), Some(2)][(id / 5) % 4],
                epochs: 1 + (id % 3) as u32,
            }
        })
        .collect()
}

/// Runs one differential case end to end:
///
/// 1. train a predictor bank for `epochs - 1` epochs using the engine
///    (the paper's two-phase methodology);
/// 2. run the measured epoch through engine *and* oracle from identical
///    clones of the trained bank;
/// 3. compare everything with [`diff_results`];
/// 4. audit the engine's schedule with [`ccs_sim::check_invariants`];
/// 5. require the critical-path breakdown to conserve total cycles;
/// 6. check the engine result against its analytic envelope
///    ([`crate::bounds::check_bounds`]).
///
/// # Errors
///
/// Returns `Err` if either simulator hits its cycle limit — that is an
/// infrastructure failure distinct from a divergence.
pub fn run_case(case: &DiffCase) -> Result<CaseOutcome, String> {
    let trace = case.source.trace();
    run_trace_case(&trace, &case.config(), case.policy, case.epochs, &case.describe())
}

/// [`run_case`] for a caller-supplied trace: the same six-step
/// differential pipeline, reusable by campaigns whose traces do not
/// come from a [`TraceSource`] (the scenario-manifest fuzzer in
/// [`scenariofuzz`](crate::scenariofuzz) feeds generated scenario
/// traces through here). `describe` prefixes every reported problem so
/// a failure names its case.
///
/// # Errors
///
/// Returns `Err` if either simulator hits its cycle limit — an
/// infrastructure failure distinct from a divergence.
pub fn run_trace_case(
    trace: &Trace,
    config: &MachineConfig,
    policy_kind: PolicyKind,
    epochs: u32,
    describe: &str,
) -> Result<CaseOutcome, String> {
    let cfg = policy_kind.config();
    let name = policy_kind.name();

    let mut bank = PredictorBank::new(LocMode::Quantized16, 0xC1A5);
    for _ in 1..epochs.max(1) {
        let mut policy = CellPolicy::build(policy_kind, cfg, bank, name);
        let result = ccs_sim::simulate(config, trace, &mut policy)
            .map_err(|e| format!("{describe}: training run failed: {e}"))?;
        let analysis = analyze(trace, &result);
        bank = policy.into_bank();
        bank.train_criticality(trace, &analysis.e_critical);
    }

    let mut engine_policy = CellPolicy::build(policy_kind, cfg, bank.clone(), name);
    let engine = ccs_sim::simulate(config, trace, &mut engine_policy)
        .map_err(|e| format!("{describe}: engine failed: {e}"))?;
    let mut oracle_policy = CellPolicy::build(policy_kind, cfg, bank, name);
    let oracle = reference_simulate(config, trace, &mut oracle_policy)
        .map_err(|e| format!("{describe}: oracle failed: {e}"))?;

    let mut problems = diff_results(&engine, &oracle);
    for v in ccs_sim::check_invariants(config, trace, &engine) {
        problems.push(format!("invariant: {v}"));
    }
    let analysis = analyze(trace, &engine);
    if analysis.breakdown.total() != engine.cycles {
        problems.push(format!(
            "critical-path breakdown sums to {} but the run took {} cycles",
            analysis.breakdown.total(),
            engine.cycles
        ));
    }
    // The analytic envelope holds for every legal schedule, so every
    // differential case doubles as a bounds test for free.
    for v in crate::bounds::check_bounds(config, trace, &engine) {
        problems.push(format!("bounds: {v}"));
    }

    if problems.is_empty() {
        Ok(CaseOutcome::Agreed)
    } else {
        Ok(CaseOutcome::Diverged(
            std::iter::once(describe.to_string()).chain(problems).collect(),
        ))
    }
}

/// Generates an unstructured random trace: arbitrary dependence shapes,
/// a hot store/load address pool plus a cold sweep (for memory
/// dependences and cache misses both), conditional branches with mixed
/// bias, and occasional jumps. Deterministic in `seed`.
pub fn random_trace(seed: u64, len: usize) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7A5E_D5EE_D000_0000);
    let mut b = TraceBuilder::new();
    while b.len() < len {
        // A small PC pool aliases predictor and criticality-table entries.
        let pc = Pc::new(0x40_0000 + 4 * rng.random_range(0u64..48));
        let roll = rng.random_range(0u32..100);
        let op = match roll {
            0..=39 => OpClass::IntAlu,
            40..=47 => OpClass::IntMul,
            48..=55 => OpClass::FpAdd,
            56..=60 => OpClass::FpMul,
            61..=62 => OpClass::FpDiv,
            63..=80 => OpClass::Load,
            81..=89 => OpClass::Store,
            90..=97 => OpClass::Branch,
            _ => OpClass::Jump,
        };
        let random_reg = |rng: &mut StdRng| {
            if rng.random_bool(0.75) {
                ArchReg::int(rng.random_range(0u16..32))
            } else {
                ArchReg::fp(rng.random_range(0u16..32))
            }
        };
        let mut inst = StaticInst::new(pc, op);
        let src_count = rng.random_range(0u32..3);
        if src_count >= 1 {
            let a = random_reg(&mut rng);
            let b2 = (src_count == 2).then(|| random_reg(&mut rng));
            inst = inst.with_srcs([Some(a), b2]);
        }
        if op.produces_value() {
            inst = inst.with_dst(random_reg(&mut rng));
        }
        match op {
            OpClass::Load | OpClass::Store => {
                // 70% a hot pool of 128 words (dense store→load conflicts
                // and L1 hits), 30% a wide cold region (L1 misses).
                let addr = if rng.random_bool(0.7) {
                    0x1000 + 8 * rng.random_range(0u64..128)
                } else {
                    0x10_0000 + 64 * rng.random_range(0u64..8192)
                };
                b.push_mem(inst, addr);
            }
            OpClass::Branch => {
                b.push_branch(inst, BranchInfo::conditional(rng.random_bool(0.4)));
            }
            OpClass::Jump => {
                b.push_branch(inst, BranchInfo::unconditional());
            }
            _ => {
                b.push_simple(inst);
            }
        }
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_is_deterministic_and_covers_everything() {
        let a = standard_campaign(40);
        let b = standard_campaign(40);
        assert_eq!(a, b);
        for layout in ClusterLayout::ALL {
            for policy in ALL_POLICIES {
                assert!(
                    a.iter().any(|c| c.layout == layout && c.policy == policy),
                    "{layout} × {} not covered",
                    policy.name()
                );
            }
        }
        assert!(a.iter().any(|c| matches!(c.source, TraceSource::Bench { .. })));
        assert!(a.iter().any(|c| matches!(c.source, TraceSource::Random { .. })));
        assert!(a.iter().any(|c| c.forward_bandwidth.is_some()));
    }

    #[test]
    fn random_traces_are_deterministic_and_valid() {
        let t1 = random_trace(7, 500);
        let t2 = random_trace(7, 500);
        assert_eq!(t1.len(), 500);
        t1.validate().expect("random trace must be well-formed");
        for (a, b) in t1.as_slice().iter().zip(t2.as_slice()) {
            assert_eq!(a.inst.pc, b.inst.pc);
            assert_eq!(a.deps, b.deps);
            assert_eq!(a.mem_addr, b.mem_addr);
        }
        // The generator must exercise memory, branches and both port
        // classes, or the differential campaign loses coverage.
        let stats = |op: OpClass| t1.as_slice().iter().filter(|i| i.op() == op).count();
        assert!(stats(OpClass::Load) > 0);
        assert!(stats(OpClass::Store) > 0);
        assert!(stats(OpClass::Branch) > 0);
        assert!(stats(OpClass::FpAdd) + stats(OpClass::FpMul) > 0);
    }

    #[test]
    fn a_single_case_agrees_end_to_end() {
        let case = &standard_campaign(1)[0];
        match run_case(case).unwrap() {
            CaseOutcome::Agreed => {}
            CaseOutcome::Diverged(lines) => panic!("{}", lines.join("\n")),
        }
    }
}
