//! # clustercrit
//!
//! A reproduction of **Salverda & Zilles, "A Criticality Analysis of
//! Clustering in Superscalar Processors" (MICRO 2005)** as a Rust
//! workspace, re-exported here as a single facade.
//!
//! The workspace builds, from scratch:
//!
//! * a cycle-level clustered out-of-order superscalar timing simulator
//!   ([`sim`]), configurable as the paper's `1x8w`, `2x4w`, `4x2w` and
//!   `8x1w` machines ([`isa`]),
//! * synthetic SPECint-like workload models exposing the dataflow shapes
//!   the paper analyses ([`trace`]),
//! * Fields-style critical-path analysis with exact cycle attribution
//!   ([`critpath`]),
//! * criticality and likelihood-of-criticality predictors
//!   ([`predictors`]), built on branch predictors / caches / counters
//!   ([`uarch`]),
//! * the paper's policy ladder — focused steering, LoC scheduling,
//!   stall-over-steer, proactive load balancing ([`core`]),
//! * the §2.2 idealized list scheduler ([`listsched`]),
//! * an analytic prediction tier — sound per-cell cycle/IPC bound
//!   envelopes from trace and machine shape alone ([`predict`]),
//! * a differential verification subsystem — reference oracle, engine
//!   invariant checker, golden regression corpus ([`verify`]), and
//! * a zero-cost-by-default observability layer — metrics sinks, sampled
//!   cycle traces, CPI stacks, stage timers ([`obs`]).
//!
//! # Quickstart
//!
//! ```
//! use clustercrit::core::{run_cell, PolicyKind, RunOptions};
//! use clustercrit::isa::{ClusterLayout, MachineConfig};
//! use clustercrit::trace::Benchmark;
//!
//! let trace = Benchmark::Vpr.generate(1, 2_000);
//! let machine = MachineConfig::micro05_baseline().with_layout(ClusterLayout::C4x2w);
//! let cell = run_cell(&machine, &trace, PolicyKind::Proactive, &RunOptions::default())?;
//! println!("CPI {:.3}", cell.cpi());
//! # Ok::<(), clustercrit::core::CcsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ccs_core as core;
pub use ccs_critpath as critpath;
pub use ccs_isa as isa;
pub use ccs_listsched as listsched;
pub use ccs_obs as obs;
pub use ccs_predict as predict;
pub use ccs_predictors as predictors;
pub use ccs_sim as sim;
pub use ccs_trace as trace;
pub use ccs_uarch as uarch;
pub use ccs_verify as verify;
