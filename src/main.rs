//! The `clustercrit` command-line tool: run one (workload, machine,
//! policy) cell and report timing, the critical-path breakdown, and the
//! criticality analyses — without writing any code.
//!
//! ```console
//! $ clustercrit list
//! $ clustercrit simulate --bench vpr --layout 4x2w --policy stall
//! $ clustercrit analyze --bench gzip --layout 8x1w --policy focused --len 50000
//! $ clustercrit analyze --bench mcf --layout 8x1w --policy proactive --finite-l2
//! ```

use clustercrit::core::{run_cell, PolicyKind, RunOptions, TrainingSource};
use clustercrit::critpath::{analyze_consumers, analyze_slack, CostCategory};
use clustercrit::isa::{ClusterLayout, MachineConfig};
use clustercrit::predictors::TokenDetector;
use clustercrit::trace::Benchmark;
use std::process::ExitCode;

#[derive(Debug)]
struct Args {
    command: String,
    bench: Benchmark,
    layout: ClusterLayout,
    policy: PolicyKind,
    len: usize,
    seed: u64,
    epochs: u32,
    fwd_latency: u32,
    fwd_bandwidth: Option<u32>,
    finite_l2: bool,
    detector: bool,
}

fn usage() -> &'static str {
    "clustercrit — criticality analysis of clustered superscalar processors\n\
     \n\
     USAGE:\n\
       clustercrit list\n\
       clustercrit simulate [OPTIONS]\n\
       clustercrit analyze  [OPTIONS]\n\
     \n\
     OPTIONS:\n\
       --bench <name>        workload model (default vpr; see `list`)\n\
       --layout <name>       1x8w | 2x4w | 4x2w | 8x1w (default 4x2w)\n\
       --policy <name>       dependence | focused | loc | stall | proactive |\n\
                             adaptive | ineff-steer (default stall)\n\
       --len <n>             dynamic instructions (default 20000)\n\
       --seed <n>            workload seed (default 1)\n\
       --epochs <n>          train/measure epochs (default 2)\n\
       --fwd-latency <n>     inter-cluster forwarding cycles (default 2)\n\
       --fwd-bandwidth <n>   broadcasts per cluster per cycle (default unlimited)\n\
       --finite-l2           finite 512 KB L2 + 200-cycle memory\n\
       --detector            train with the token-passing detector\n"
}

fn parse_bench(s: &str) -> Option<Benchmark> {
    Benchmark::ALL.into_iter().find(|b| b.name() == s)
}

fn parse_layout(s: &str) -> Option<ClusterLayout> {
    ClusterLayout::ALL.into_iter().find(|l| l.name() == s)
}

fn parse_policy(s: &str) -> Option<PolicyKind> {
    match s {
        "dependence" | "dep" => Some(PolicyKind::Dependence),
        "focused" | "f" => Some(PolicyKind::Focused),
        "loc" | "l" => Some(PolicyKind::FocusedLoc),
        "stall" | "s" => Some(PolicyKind::StallOverSteer),
        "proactive" | "p" => Some(PolicyKind::Proactive),
        "adaptive" | "a" => Some(PolicyKind::Adaptive),
        "ineff-steer" | "ineff" | "i" => Some(PolicyKind::IneffSteer),
        _ => None,
    }
}

fn parse_args() -> Result<Args, String> {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().ok_or_else(|| usage().to_string())?;
    let mut args = Args {
        command,
        bench: Benchmark::Vpr,
        layout: ClusterLayout::C4x2w,
        policy: PolicyKind::StallOverSteer,
        len: 20_000,
        seed: 1,
        epochs: 2,
        fwd_latency: 2,
        fwd_bandwidth: None,
        finite_l2: false,
        detector: false,
    };
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| -> Result<String, String> {
            argv.next().ok_or(format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--bench" => {
                let v = value("--bench")?;
                args.bench = parse_bench(&v).ok_or(format!("unknown benchmark '{v}'"))?;
            }
            "--layout" => {
                let v = value("--layout")?;
                args.layout = parse_layout(&v).ok_or(format!("unknown layout '{v}'"))?;
            }
            "--policy" => {
                let v = value("--policy")?;
                args.policy = parse_policy(&v).ok_or(format!("unknown policy '{v}'"))?;
            }
            "--len" => args.len = value("--len")?.parse().map_err(|e| format!("--len: {e}"))?,
            "--seed" => args.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--epochs" => {
                args.epochs = value("--epochs")?.parse().map_err(|e| format!("--epochs: {e}"))?;
            }
            "--fwd-latency" => {
                args.fwd_latency = value("--fwd-latency")?
                    .parse()
                    .map_err(|e| format!("--fwd-latency: {e}"))?;
            }
            "--fwd-bandwidth" => {
                args.fwd_bandwidth = Some(
                    value("--fwd-bandwidth")?
                        .parse()
                        .map_err(|e| format!("--fwd-bandwidth: {e}"))?,
                );
            }
            "--finite-l2" => args.finite_l2 = true,
            "--detector" => args.detector = true,
            other => return Err(format!("unknown option '{other}'\n\n{}", usage())),
        }
    }
    Ok(args)
}

fn list() {
    println!("benchmarks:");
    for b in Benchmark::ALL {
        println!("  {:<8} {}", b.to_string(), b.description());
    }
    println!("\nlayouts:");
    for l in ClusterLayout::ALL {
        println!("  {l}");
    }
    println!("\npolicies:");
    for (flag, kind) in [
        ("dependence", PolicyKind::Dependence),
        ("focused", PolicyKind::Focused),
        ("loc", PolicyKind::FocusedLoc),
        ("stall", PolicyKind::StallOverSteer),
        ("proactive", PolicyKind::Proactive),
        ("adaptive", PolicyKind::Adaptive),
        ("ineff-steer", PolicyKind::IneffSteer),
    ] {
        println!("  {flag:<12} {}", kind.name());
    }
}

fn run(args: &Args, deep: bool) -> Result<(), String> {
    let trace = args.bench.generate(args.seed, args.len);
    let mut machine = MachineConfig::micro05_baseline()
        .with_layout(args.layout)
        .with_forward_latency(args.fwd_latency)
        .with_forward_bandwidth(args.fwd_bandwidth);
    if args.finite_l2 {
        machine = machine.with_finite_l2();
    }
    let mut opts = RunOptions::default().with_epochs(args.epochs);
    if args.detector {
        opts.training = TrainingSource::TokenDetector(TokenDetector::default());
    }

    println!(
        "workload {} ({} instructions), machine {}, policy {}\n",
        args.bench,
        trace.len(),
        args.layout,
        args.policy.name()
    );
    let cell = run_cell(&machine, &trace, args.policy, &opts).map_err(|e| e.to_string())?;
    let r = &cell.result;
    println!("cycles            {:>12}", r.cycles);
    println!("CPI               {:>12.4}", cell.cpi());
    println!("IPC               {:>12.4}", r.ipc());
    println!("mispredict rate   {:>11.2}%", 100.0 * r.mispredict_rate());
    println!("L1 miss rate      {:>11.2}%", 100.0 * r.l1_miss_rate());
    println!("global values/inst{:>12.4}", r.global_values_per_inst());
    println!("steer stalls      {:>12}", r.steer_stall_cycles);
    let counts = r.per_cluster_counts();
    println!("per-cluster insts {counts:?}");

    println!("\ncritical-path breakdown (cycles, exact):");
    for (cat, cycles) in cell.analysis.breakdown.iter() {
        println!(
            "  {:<14} {:>10}  ({:>5.1}%)",
            cat.to_string(),
            cycles,
            100.0 * cycles as f64 / r.cycles.max(1) as f64
        );
    }

    if deep {
        let totals = cell.analysis.event_totals();
        println!("\nlost-cycle events on the critical path:");
        println!(
            "  contention: {} on predicted-critical, {} other",
            totals.contention_predicted_critical, totals.contention_other
        );
        println!(
            "  forwarding: {} load-balance, {} dyadic, {} other",
            totals.forwarding_load_balance, totals.forwarding_dyadic, totals.forwarding_other
        );
        let causes = r.steer_cause_counts();
        println!(
            "\nsteering causes: {} collocated, {} load-balanced, {} no-deps, \
             {} proactive",
            causes[1], causes[2], causes[3], causes[4]
        );
        let consumers = analyze_consumers(&trace, r, &cell.analysis.e_critical);
        println!(
            "\nconsumer statistics: {:.0}% unique MCC, {:.0}% MCC-not-first, {:.0}% bimodal",
            100.0 * consumers.unique_mcc_fraction,
            100.0 * consumers.mcc_not_first_fraction,
            100.0 * consumers.bimodality()
        );
        let slack = analyze_slack(&trace, r);
        println!(
            "slack: {:.0}% zero-slack instructions, mean {:.1} cycles",
            100.0 * slack.zero_slack_count() as f64 / trace.len().max(1) as f64,
            slack.mean()
        );
        let clustering = cell.analysis.breakdown.get(CostCategory::FwdDelay)
            + cell.analysis.breakdown.get(CostCategory::Contention);
        println!(
            "clustering penalty on the critical path: {:.1}% of runtime",
            100.0 * clustering as f64 / r.cycles.max(1) as f64
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let outcome = match args.command.as_str() {
        "list" => {
            list();
            Ok(())
        }
        "simulate" => run(&args, false),
        "analyze" => run(&args, true),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n\n{}", usage())),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
