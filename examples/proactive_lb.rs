//! Figures 12/13 / §6: proactive load balancing of divergent dataflow.
//!
//! The early-exit search loop of Figure 12 carries two loop-carried
//! dependences (`addl` on the index, `lda` on the pointer); every
//! iteration's compares and branches *diverge* from them. Dependence
//! steering packs each divergence tree onto one cluster, serializing
//! parallel work on 1-wide clusters. Worse, first-consumer-stays schemes
//! evict the *loop-carried* consumer — the most critical one, and the
//! last in fetch order (Figure 13a). Proactive load balancing pushes the
//! non-critical consumers away and keeps the recurrence home.
//!
//! Run with `cargo run --release --example proactive_lb`.

use clustercrit::core::{run_cell, PolicyKind, RunOptions};
use clustercrit::critpath::{analyze_consumers, CostCategory};
use clustercrit::isa::{ClusterLayout, MachineConfig};
use clustercrit::trace::patterns::{DivergentLoop, DivergentLoopConfig, RegAlloc};
use clustercrit::trace::TraceBuilder;
use ccs_isa::Pc;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Dynamically unroll the Figure 12 loop.
    let mut regs = RegAlloc::new();
    let mut lp = DivergentLoop::new(
        Pc::new(0x2000),
        &mut regs,
        DivergentLoopConfig {
            exit_prob: 0.03,
            trip: 48,
            region: 1 << 14,
        },
    );
    let mut b = TraceBuilder::new();
    let mut rng = StdRng::seed_from_u64(3);
    while b.len() < 30_000 {
        lp.emit(&mut b, &mut rng);
    }
    let trace = b.finish();

    let machine = MachineConfig::micro05_baseline().with_layout(ClusterLayout::C8x1w);
    let opts = RunOptions::default().with_epochs(3);

    println!("Figure 12 early-exit scan on the 8x1w machine\n");
    println!(
        "{:>34} {:>8} {:>12} {:>12}",
        "policy", "CPI", "contention", "fwd cycles"
    );
    let mut cells = Vec::new();
    for kind in [
        PolicyKind::Dependence,
        PolicyKind::StallOverSteer,
        PolicyKind::Proactive,
    ] {
        let cell = run_cell(&machine, &trace, kind, &opts)?;
        println!(
            "{:>34} {:>8.3} {:>12} {:>12}",
            kind.name(),
            cell.cpi(),
            cell.analysis.breakdown.get(CostCategory::Contention),
            cell.analysis.breakdown.get(CostCategory::FwdDelay),
        );
        cells.push(cell);
    }

    // The §6 dataflow statistics that make a learned scheme plausible.
    let last = cells.last().expect("ran at least one policy");
    let consumers = analyze_consumers(&trace, &last.result, &last.analysis.e_critical);
    println!(
        "\nconsumer statistics (§6): {:.0}% of values have a statically unique \
         most-critical consumer; among critical multi-consumer values, \
         {:.0}% do NOT have the most critical consumer first in fetch order; \
         consumer MCC rates are {:.0}% bimodal.",
        100.0 * consumers.unique_mcc_fraction,
        100.0 * consumers.mcc_not_first_fraction,
        100.0 * consumers.bimodality(),
    );
    println!(
        "\nThe loop-carried update is the last consumer of its own value, so a \
         first-consumer-stays scheme would exile it (Figure 13a); the \
         most-critical-consumer override keeps it collocated (Figure 13b)."
    );
    Ok(())
}
