//! Quick manual check of metrics-on vs metrics-off grid throughput.
//!
//! Takes the minimum wall-clock of several alternating runs per mode —
//! robust against scheduler noise — and prints the overhead. The
//! `grid_throughput` criterion bench measures the same thing with
//! statistics; this is the fast sanity-check version.

use clustercrit::core::{run_grid_resilient, GridRequest, PolicyKind, Resilience, RunOptions};
use clustercrit::isa::{ClusterLayout, MachineConfig};
use clustercrit::trace::Benchmark;
use std::time::{Duration, Instant};

fn main() {
    let build = |metrics: bool| {
        GridRequest::new(MachineConfig::micro05_baseline(), 40_000)
            .benchmarks([Benchmark::Vpr, Benchmark::Gzip, Benchmark::Mcf, Benchmark::Twolf])
            .layouts(ClusterLayout::CLUSTERED)
            .policies([PolicyKind::Focused, PolicyKind::StallOverSteer])
            .options(RunOptions::default().with_epochs(1).with_metrics(metrics))
            .build()
    };
    // Warm the trace cache so the timings measure simulation only.
    run_grid_resilient(&build(false), 1, &Resilience::default());
    let mut best = [Duration::MAX; 2];
    for rep in 0..8 {
        for (i, metrics) in [false, true].into_iter().enumerate() {
            let t = Instant::now();
            run_grid_resilient(&build(metrics), 1, &Resilience::default());
            let dt = t.elapsed();
            best[i] = best[i].min(dt);
            println!("rep {rep} metrics={metrics:<5} {dt:>8.1?}");
        }
    }
    println!(
        "best off {:?}  best on {:?}  overhead {:+.2}%",
        best[0],
        best[1],
        (best[1].as_secs_f64() / best[0].as_secs_f64() - 1.0) * 100.0
    );
}
