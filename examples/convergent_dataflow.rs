//! Figure 3: convergent dataflow imposes a small but fundamental limit on
//! clustered machines.
//!
//! Two load-headed chains converge at a dyadic `xor` feeding a branch
//! (the `bzip2` kernel of Figure 3). On 1-wide clusters the best possible
//! assignment pays one forwarding delay; with 2-wide clusters and one
//! memory port there is a cycle of memory-port contention; a 4-wide
//! cluster with two memory ports runs it at full speed.
//!
//! Run with `cargo run --release --example convergent_dataflow`.

use clustercrit::isa::{ClusterLayout, MachineConfig};
use clustercrit::listsched::{list_schedule, ListScheduleConfig};
use clustercrit::sim::{policies::LeastLoaded, simulate};
use clustercrit::trace::patterns::{ConvergentHammock, HammockConfig, RegAlloc};
use clustercrit::trace::{BranchBehavior, TraceBuilder};
use ccs_isa::Pc;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Build a trace of back-to-back Figure 3 hammocks.
    let mut regs = RegAlloc::new();
    let mut hammock = ConvergentHammock::new(
        Pc::new(0x1000),
        &mut regs,
        HammockConfig {
            arm_len: 2,
            branch: BranchBehavior::NeverTaken, // perfectly predictable
            region: 1 << 12,                    // L1-resident
        },
    );
    let mut b = TraceBuilder::new();
    let mut rng = StdRng::seed_from_u64(1);
    for _ in 0..2_000 {
        hammock.emit(&mut b, &mut rng);
    }
    let trace = b.finish();
    println!(
        "trace: {} instances of the Figure 3 hammock ({} instructions)",
        2_000,
        trace.len()
    );

    let mono_cfg = MachineConfig::micro05_baseline();
    let mono = simulate(&mono_cfg, &trace, &mut LeastLoaded)?;

    println!(
        "\n{:>6} {:>12} {:>10} {:>22}",
        "layout", "ideal CPI", "norm.", "cross-cluster values"
    );
    let base = list_schedule(&trace, &mono, &ListScheduleConfig::new(mono_cfg));
    for layout in ClusterLayout::ALL {
        let machine = mono_cfg.with_layout(layout);
        let ideal = list_schedule(&trace, &mono, &ListScheduleConfig::new(machine));
        println!(
            "{:>6} {:>12.3} {:>10.3} {:>22}",
            layout,
            ideal.cpi(),
            ideal.cycles as f64 / base.cycles as f64,
            ideal.cross_cluster_values,
        );
    }

    println!(
        "\nEven the *idealized* scheduler pays a little on narrow clusters: \
         convergence forces either a forwarding delay or contention (§2.2). \
         The 2x4w layout (two memory ports per cluster) absorbs the kernel \
         at nearly monolithic speed."
    );
    Ok(())
}
