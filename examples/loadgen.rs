//! Deterministic closed-loop load generator for `ccs-serve`.
//!
//! Spawns an in-process daemon on a loopback port (or connects to
//! `--server HOST:PORT` / `CCS_SERVER`), drives it with a seeded mix of
//! grid submissions from several concurrent clients, and reports
//! throughput (cells/sec), client-observed submission latency (p50 and
//! p99), and the daemon's cache hit rate. The request mix is a pure
//! function of `--seed`, so two runs against a fresh daemon issue the
//! identical cell sequence.
//!
//! The report is printed and written to `results/BENCH_serve.json`:
//!
//! ```text
//! cargo run --release --example loadgen
//! cargo run --release --example loadgen -- --clients 8 --requests 16
//! ```
//!
//! `--approx` switches to the prediction-tier comparison: the same
//! seeded cell mix is driven twice against fresh local daemons — once
//! as `approx` submissions (analytic envelopes, no simulation) and once
//! as full submissions — and the elapsed times plus speedup are written
//! to `results/BENCH_predict.json`:
//!
//! ```text
//! cargo run --release --example loadgen -- --approx
//! ```
//!
//! `--shard-sweep` switches to the *open-loop* cluster benchmark: the
//! same seeded cell mix arrives on a seeded Poisson schedule (`--rate`
//! cells/sec offered, independent of completions — so queueing delay is
//! part of the measured latency) and is consistent-hash routed across
//! 1, 2, and 4 fresh local shards in turn. Each sweep point reports
//! achieved vs offered throughput and per-shard p50/p99 latency, and
//! the sweep is written to `results/BENCH_shard.json`:
//!
//! ```text
//! cargo run --release --example loadgen -- --shard-sweep --rate 200
//! ```

use ccs_client::Client;
use ccs_core::checkpoint::cell_key;
use ccs_core::{PolicyKind, ShardMap};
use ccs_isa::ClusterLayout;
use ccs_serve::{ServeConfig, Server, WireCellSpec};
use ccs_trace::Benchmark;
use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};
use std::sync::mpsc;
use std::sync::Mutex;
use std::time::{Duration, Instant};

struct Args {
    server: Option<String>,
    clients: usize,
    requests: usize,
    batch: usize,
    seed: u64,
    len: usize,
    seed_pool: u64,
    approx: bool,
    shard_sweep: bool,
    rate: f64,
    sweep_cells: usize,
    out: Option<String>,
}

impl Args {
    fn parse() -> Args {
        let mut args = Args {
            server: std::env::var("CCS_SERVER").ok().filter(|s| !s.is_empty()),
            clients: 4,
            requests: 6,
            batch: 4,
            seed: 7,
            len: 1_500,
            seed_pool: 6,
            approx: false,
            shard_sweep: false,
            rate: 200.0,
            sweep_cells: 192,
            out: None,
        };
        let mut it = std::env::args().skip(1);
        while let Some(arg) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .unwrap_or_else(|| panic!("{name} needs a value"))
            };
            match arg.as_str() {
                "--server" => args.server = Some(value("--server")),
                "--clients" => args.clients = value("--clients").parse().expect("--clients"),
                "--requests" => args.requests = value("--requests").parse().expect("--requests"),
                "--batch" => args.batch = value("--batch").parse().expect("--batch"),
                "--seed" => args.seed = value("--seed").parse().expect("--seed"),
                "--len" => args.len = value("--len").parse().expect("--len"),
                "--seed-pool" => args.seed_pool = value("--seed-pool").parse().expect("--seed-pool"),
                "--approx" => args.approx = true,
                "--shard-sweep" => args.shard_sweep = true,
                "--rate" => args.rate = value("--rate").parse().expect("--rate"),
                "--sweep-cells" => {
                    args.sweep_cells = value("--sweep-cells").parse().expect("--sweep-cells")
                }
                "--out" => args.out = Some(value("--out")),
                other => {
                    eprintln!("unknown flag {other}");
                    eprintln!(
                        "usage: loadgen [--server HOST:PORT] [--clients N] [--requests N] \
                         [--batch N] [--seed N] [--len N] [--seed-pool N] [--approx] \
                         [--shard-sweep] [--rate CELLS_PER_SEC] [--sweep-cells N] [--out PATH]"
                    );
                    std::process::exit(2);
                }
            }
        }
        args
    }
}

/// One cell from the seeded mix: a small pool of sample seeds crossed
/// with the clustered layouts and two cheap policies, so reuse (and
/// therefore cache hits) is part of the workload by construction.
fn pick_cell(rng: &mut StdRng, len: usize, pool: u64) -> WireCellSpec {
    const LAYOUTS: [ClusterLayout; 3] =
        [ClusterLayout::C2x4w, ClusterLayout::C4x2w, ClusterLayout::C8x1w];
    const POLICIES: [PolicyKind; 2] = [PolicyKind::Focused, PolicyKind::FocusedLoc];
    let bench = Benchmark::ALL[rng.random_range(0..Benchmark::ALL.len())];
    let layout = LAYOUTS[rng.random_range(0..LAYOUTS.len())];
    let policy = POLICIES[rng.random_range(0..POLICIES.len())];
    let seed = 1 + rng.random_range(0..pool.max(1));
    WireCellSpec::new(bench, seed, len, layout, policy)
}

struct ClientReport {
    latencies: Vec<Duration>,
    cells: u64,
    cached: u64,
    failed: u64,
}

fn drive_client(addr: &str, client_seed: u64, args: &Args) -> ClientReport {
    let mut rng = StdRng::seed_from_u64(client_seed);
    let mut client = Client::connect(addr).expect("loadgen client connects");
    let mut report = ClientReport {
        latencies: Vec::with_capacity(args.requests),
        cells: 0,
        cached: 0,
        failed: 0,
    };
    for _ in 0..args.requests {
        let cells: Vec<WireCellSpec> = (0..args.batch)
            .map(|_| pick_cell(&mut rng, args.len, args.seed_pool))
            .collect();
        let start = Instant::now();
        match client.submit_grid_with_retry(&cells, 50, |_| {}) {
            Ok(outcome) => {
                report.latencies.push(start.elapsed());
                report.cells += (outcome.ok + outcome.failed + outcome.timed_out) as u64;
                report.cached += outcome.cached as u64;
                report.failed += (outcome.failed + outcome.timed_out) as u64;
            }
            Err(e) => panic!("loadgen submission failed: {e}"),
        }
    }
    report
}

fn percentile_ms(sorted: &[Duration], pct: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((pct / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
    sorted[rank.min(sorted.len() - 1)].as_secs_f64() * 1e3
}

/// Spawns a fresh local daemon; returns its address and join handle.
fn fresh_daemon() -> (String, std::thread::JoinHandle<()>) {
    let server = Server::bind(ServeConfig::default()).expect("bind loopback");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run().expect("daemon runs"));
    (addr, handle)
}

/// The `--approx` comparison: the identical seeded cell mix, once as
/// approximate submissions and once as full simulations, each against
/// its own fresh daemon (so neither phase warms the other's cache).
fn run_approx_compare(args: &Args) {
    assert!(
        args.server.is_none(),
        "--approx needs fresh local daemons for a fair comparison; drop --server"
    );
    let cells: Vec<WireCellSpec> = (0..args.clients)
        .flat_map(|k| {
            let mut rng = StdRng::seed_from_u64(args.seed + 1_000 * k as u64);
            (0..args.requests * args.batch)
                .map(|_| pick_cell(&mut rng, args.len, args.seed_pool))
                .collect::<Vec<_>>()
        })
        .collect();
    println!(
        "loadgen --approx: {} cells, envelope tier vs full simulation (seed {})",
        cells.len(),
        args.seed
    );

    // Phase 1: every cell through the approximate tier.
    let (addr, handle) = fresh_daemon();
    let mut client = Client::connect(&addr).expect("approx client connects");
    let started = Instant::now();
    let mut envelopes = 0u64;
    for cell in &cells {
        match client.submit_cell_approx(cell).expect("approx submission") {
            ccs_client::ApproxAnswer::Envelope { cycles_lo, cycles_hi, .. } => {
                assert!(cycles_lo <= cycles_hi, "envelope must be ordered");
                envelopes += 1;
            }
            ccs_client::ApproxAnswer::Exact(_) => {
                panic!("fresh daemon cannot answer approx requests exactly")
            }
        }
    }
    let approx_elapsed = started.elapsed();
    let approx_status = client.status().expect("approx status");
    client.drain().expect("drain approx daemon");
    handle.join().expect("approx daemon exits");
    assert_eq!(envelopes, cells.len() as u64);
    assert_eq!(approx_status.cells_evaluated, 0, "approx must not simulate");

    // Phase 2: the same cells simulated for real.
    let (addr, handle) = fresh_daemon();
    let mut client = Client::connect(&addr).expect("full client connects");
    let started = Instant::now();
    for cell in &cells {
        let record = client.submit_cell(cell).expect("full submission");
        assert!(record.is_ok(), "full simulation must complete ok");
    }
    let full_elapsed = started.elapsed();
    let full_status = client.status().expect("full status");
    client.drain().expect("drain full daemon");
    handle.join().expect("full daemon exits");

    let speedup = full_elapsed.as_secs_f64() / approx_elapsed.as_secs_f64().max(1e-9);
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"serve_approx_vs_full\",\n",
            "  \"seed\": {},\n",
            "  \"trace_len\": {},\n",
            "  \"cells\": {},\n",
            "  \"approx_elapsed_s\": {:.6},\n",
            "  \"approx_cells_per_sec\": {:.3},\n",
            "  \"approx_answered\": {},\n",
            "  \"full_elapsed_s\": {:.6},\n",
            "  \"full_cells_per_sec\": {:.3},\n",
            "  \"full_cells_evaluated\": {},\n",
            "  \"full_cache_hits\": {},\n",
            "  \"speedup\": {:.3}\n",
            "}}\n"
        ),
        args.seed,
        args.len,
        cells.len(),
        approx_elapsed.as_secs_f64(),
        cells.len() as f64 / approx_elapsed.as_secs_f64().max(1e-9),
        approx_status.approx_answered,
        full_elapsed.as_secs_f64(),
        cells.len() as f64 / full_elapsed.as_secs_f64().max(1e-9),
        full_status.cells_evaluated,
        full_status.cache_hits,
        speedup,
    );
    print!("{json}");
    let out = args
        .out
        .clone()
        .unwrap_or_else(|| "results/BENCH_predict.json".to_string());
    if let Some(dir) = std::path::Path::new(&out).parent() {
        std::fs::create_dir_all(dir).expect("create results dir");
    }
    std::fs::write(&out, &json).expect("write report");
    println!("wrote {out}");
    assert!(
        speedup > 1.0,
        "the envelope tier must be measurably cheaper than simulation (speedup {speedup:.3})"
    );
}

/// A seeded Poisson inter-arrival gap: `-ln(1-u)/rate` seconds with
/// `u` uniform on `[0, 1)`, so the arrival schedule is a pure function
/// of the seed and the offered rate.
fn poisson_gap(rng: &mut StdRng, rate: f64) -> Duration {
    let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    Duration::from_secs_f64(-(1.0 - u).ln() / rate.max(1e-9))
}

struct SweepShard {
    addr: String,
    cells: u64,
    cached: u64,
    latencies: Vec<Duration>,
}

struct SweepPoint {
    shards: usize,
    elapsed: Duration,
    per_shard: Vec<SweepShard>,
}

/// Drives the seeded cell mix at the offered Poisson rate against `k`
/// fresh shards. Arrivals are *open-loop*: the dispatcher pushes each
/// cell onto its owner shard's queue at the scheduled instant whether
/// or not earlier cells have finished, and latency is measured from
/// that instant — so queueing delay under saturation is part of p99.
fn run_sweep_point(k: usize, cells: &[WireCellSpec], args: &Args) -> SweepPoint {
    const CONNECTIONS_PER_SHARD: usize = 3;
    let daemons: Vec<(String, std::thread::JoinHandle<()>)> =
        (0..k).map(|_| fresh_daemon()).collect();
    let members: Vec<String> = daemons.iter().map(|(addr, _)| addr.clone()).collect();
    let map = ShardMap::new(&members).expect("shard map");

    // Route every cell to its ring owner up front; the dispatcher then
    // only looks up a precomputed index on the hot path.
    let routes: Vec<usize> = cells
        .iter()
        .map(|cell| {
            let owner = map.shard_for(&cell_key(&cell.to_cell().expect("wire cell")));
            members.iter().position(|m| m == owner).unwrap()
        })
        .collect();

    let mut senders = Vec::with_capacity(k);
    let mut receivers = Vec::with_capacity(k);
    for _ in 0..k {
        let (tx, rx) = mpsc::channel::<(usize, Instant)>();
        senders.push(tx);
        receivers.push(Mutex::new(rx));
    }

    let started = Instant::now();
    let results: Vec<Vec<(u64, u64, Vec<Duration>)>> = std::thread::scope(|scope| {
        let workers: Vec<Vec<_>> = (0..k)
            .map(|s| {
                (0..CONNECTIONS_PER_SHARD)
                    .map(|_| {
                        let addr = &members[s];
                        let rx = &receivers[s];
                        scope.spawn(move || {
                            let mut client =
                                Client::connect(addr).expect("sweep client connects");
                            let mut latencies = Vec::new();
                            let (mut done, mut cached) = (0u64, 0u64);
                            loop {
                                // The mutex is held only while *waiting*
                                // for a job, so the shard's connections
                                // still process cells concurrently.
                                let job = rx.lock().unwrap().recv();
                                let Ok((idx, born)) = job else { break };
                                let one = std::slice::from_ref(&cells[idx]);
                                let outcome = client
                                    .submit_grid_with_retry(one, 50, |_| {})
                                    .expect("sweep submission");
                                latencies.push(born.elapsed());
                                done += 1;
                                cached += outcome.cached as u64;
                            }
                            (done, cached, latencies)
                        })
                    })
                    .collect()
            })
            .collect();

        // The dispatcher: walk the seeded Poisson schedule in real time.
        let mut rng = StdRng::seed_from_u64(args.seed ^ 0x9e37_79b9_7f4a_7c15);
        let mut at = started;
        for (idx, &shard) in routes.iter().enumerate() {
            at += poisson_gap(&mut rng, args.rate);
            let now = Instant::now();
            if at > now {
                std::thread::sleep(at - now);
            }
            senders[shard].send((idx, at)).expect("sweep worker alive");
        }
        drop(senders);

        workers
            .into_iter()
            .map(|handles| {
                handles
                    .into_iter()
                    .map(|h| h.join().expect("sweep worker"))
                    .collect()
            })
            .collect()
    });
    let elapsed = started.elapsed();

    let per_shard: Vec<SweepShard> = results
        .into_iter()
        .enumerate()
        .map(|(s, rows)| {
            let mut shard = SweepShard {
                addr: members[s].clone(),
                cells: 0,
                cached: 0,
                latencies: Vec::new(),
            };
            for (done, cached, latencies) in rows {
                shard.cells += done;
                shard.cached += cached;
                shard.latencies.extend(latencies);
            }
            shard.latencies.sort_unstable();
            shard
        })
        .collect();
    let answered: u64 = per_shard.iter().map(|s| s.cells).sum();
    assert_eq!(answered, cells.len() as u64, "every arrival must complete");

    for (addr, handle) in daemons {
        let mut c = Client::connect(&addr).expect("drain connection");
        c.drain().expect("drain shard");
        handle.join().expect("shard exits cleanly");
    }
    SweepPoint { shards: k, elapsed, per_shard }
}

fn run_shard_sweep(args: &Args) {
    assert!(
        args.server.is_none(),
        "--shard-sweep boots its own local shards; drop --server"
    );
    let mut rng = StdRng::seed_from_u64(args.seed);
    let cells: Vec<WireCellSpec> = (0..args.sweep_cells)
        .map(|_| pick_cell(&mut rng, args.len, args.seed_pool))
        .collect();
    println!(
        "loadgen --shard-sweep: {} cells arriving at {:.0} cells/sec offered (seed {})",
        cells.len(),
        args.rate,
        args.seed
    );

    let mut point_json = Vec::new();
    for k in [1usize, 2, 4] {
        let point = run_sweep_point(k, &cells, args);
        let mut all: Vec<Duration> = point
            .per_shard
            .iter()
            .flat_map(|s| s.latencies.iter().copied())
            .collect();
        all.sort_unstable();
        let cached: u64 = point.per_shard.iter().map(|s| s.cached).sum();
        let achieved = cells.len() as f64 / point.elapsed.as_secs_f64().max(1e-9);
        let p50 = percentile_ms(&all, 50.0);
        let p99 = percentile_ms(&all, 99.0);
        println!(
            "  {} shard(s): {achieved:.1} cells/sec achieved, p50 {p50:.1} ms, p99 {p99:.1} ms",
            point.shards
        );
        let shards_json: Vec<String> = point
            .per_shard
            .iter()
            .map(|s| {
                format!(
                    concat!(
                        "        {{ \"addr\": \"{}\", \"cells\": {}, \"cached\": {}, ",
                        "\"p50_ms\": {:.3}, \"p99_ms\": {:.3} }}"
                    ),
                    s.addr,
                    s.cells,
                    s.cached,
                    percentile_ms(&s.latencies, 50.0),
                    percentile_ms(&s.latencies, 99.0),
                )
            })
            .collect();
        point_json.push(format!(
            concat!(
                "    {{\n",
                "      \"shards\": {},\n",
                "      \"elapsed_s\": {:.6},\n",
                "      \"achieved_cells_per_sec\": {:.3},\n",
                "      \"latency_p50_ms\": {:.3},\n",
                "      \"latency_p99_ms\": {:.3},\n",
                "      \"cells_cached\": {},\n",
                "      \"per_shard\": [\n{}\n      ]\n",
                "    }}"
            ),
            point.shards,
            point.elapsed.as_secs_f64(),
            achieved,
            p50,
            p99,
            cached,
            shards_json.join(",\n"),
        ));
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"serve_shard_sweep\",\n",
            "  \"seed\": {},\n",
            "  \"trace_len\": {},\n",
            "  \"cells_per_point\": {},\n",
            "  \"offered_cells_per_sec\": {:.3},\n",
            "  \"points\": [\n{}\n  ]\n",
            "}}\n"
        ),
        args.seed,
        args.len,
        cells.len(),
        args.rate,
        point_json.join(",\n"),
    );
    print!("{json}");
    let out = args
        .out
        .clone()
        .unwrap_or_else(|| "results/BENCH_shard.json".to_string());
    if let Some(dir) = std::path::Path::new(&out).parent() {
        std::fs::create_dir_all(dir).expect("create results dir");
    }
    std::fs::write(&out, &json).expect("write report");
    println!("wrote {out}");
}

fn main() {
    let args = Args::parse();
    if args.approx {
        run_approx_compare(&args);
        return;
    }
    if args.shard_sweep {
        run_shard_sweep(&args);
        return;
    }

    // Either connect to a daemon the caller started, or spawn our own.
    let (addr, local) = match &args.server {
        Some(addr) => (addr.clone(), None),
        None => {
            let server = Server::bind(ServeConfig::default()).expect("bind loopback");
            let addr = server.local_addr().to_string();
            let handle = std::thread::spawn(move || server.run().expect("daemon runs"));
            (addr, Some(handle))
        }
    };
    println!(
        "loadgen: {} clients x {} requests x {} cells against {addr} (seed {})",
        args.clients, args.requests, args.batch, args.seed
    );

    let started = Instant::now();
    let reports: Vec<ClientReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..args.clients)
            .map(|k| {
                let args = &args;
                let addr = addr.clone();
                scope.spawn(move || drive_client(&addr, args.seed + 1_000 * k as u64, args))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed = started.elapsed();

    let mut latencies: Vec<Duration> = reports.iter().flat_map(|r| r.latencies.clone()).collect();
    latencies.sort_unstable();
    let cells: u64 = reports.iter().map(|r| r.cells).sum();
    let cached: u64 = reports.iter().map(|r| r.cached).sum();
    let failed: u64 = reports.iter().map(|r| r.failed).sum();
    let submissions = latencies.len();
    let cells_per_sec = cells as f64 / elapsed.as_secs_f64().max(1e-9);
    let p50 = percentile_ms(&latencies, 50.0);
    let p99 = percentile_ms(&latencies, 99.0);

    // The daemon's own view of the run: hit rate over every lookup it
    // performed (this run plus whatever ran before on a shared daemon).
    let mut tail = Client::connect(&addr).expect("status connection");
    let status = tail.status().expect("status");
    let lookups = status.cache_hits + status.cache_misses;
    let hit_rate = if lookups == 0 {
        0.0
    } else {
        status.cache_hits as f64 / lookups as f64
    };

    if local.is_some() {
        tail.drain().expect("drain");
    }
    if let Some(handle) = local {
        handle.join().expect("daemon exits cleanly");
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"serve_loadgen\",\n",
            "  \"seed\": {},\n",
            "  \"clients\": {},\n",
            "  \"requests_per_client\": {},\n",
            "  \"batch\": {},\n",
            "  \"trace_len\": {},\n",
            "  \"submissions\": {},\n",
            "  \"cells\": {},\n",
            "  \"cells_failed\": {},\n",
            "  \"cells_cached\": {},\n",
            "  \"elapsed_s\": {:.6},\n",
            "  \"cells_per_sec\": {:.3},\n",
            "  \"latency_p50_ms\": {:.3},\n",
            "  \"latency_p99_ms\": {:.3},\n",
            "  \"cache_hits\": {},\n",
            "  \"cache_misses\": {},\n",
            "  \"cache_hit_rate\": {:.6},\n",
            "  \"cells_evaluated\": {},\n",
            "  \"admission_rejects\": {}\n",
            "}}\n"
        ),
        args.seed,
        args.clients,
        args.requests,
        args.batch,
        args.len,
        submissions,
        cells,
        failed,
        cached,
        elapsed.as_secs_f64(),
        cells_per_sec,
        p50,
        p99,
        status.cache_hits,
        status.cache_misses,
        hit_rate,
        status.cells_evaluated,
        status.admission_rejects,
    );
    print!("{json}");
    let out = args
        .out
        .clone()
        .unwrap_or_else(|| "results/BENCH_serve.json".to_string());
    if let Some(dir) = std::path::Path::new(&out).parent() {
        std::fs::create_dir_all(dir).expect("create results dir");
    }
    std::fs::write(&out, &json).expect("write report");
    println!("wrote {out}");
    assert_eq!(failed, 0, "loadgen cells must all complete ok");
}
