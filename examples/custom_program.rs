//! Define your own workload with the CFG program builder and run the
//! paper's policy ladder on it.
//!
//! The program below is a pointer-chasing reduction: an outer loop walks
//! a large linked structure (cache-hostile) while an inner hot loop does
//! L1-resident arithmetic — a mix of memory-bound and execute-bound
//! phases that exercises both stall-over-steer and the criticality
//! predictors.
//!
//! Run with `cargo run --release --example custom_program`.

use clustercrit::core::{run_cell, PolicyKind, RunOptions};
use clustercrit::isa::{ArchReg, ClusterLayout, MachineConfig, Pc};
use clustercrit::trace::program::{ProgramBuilder, Terminator};
use clustercrit::trace::{AddrStream, BranchBehavior};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut p = ProgramBuilder::new(Pc::new(0x4000));
    let outer = p.add_block();
    let inner = p.add_block();
    let tail = p.add_block();

    let node = ArchReg::int(1); // pointer walked by the outer loop
    let acc = ArchReg::int(2); // inner-loop accumulator
    let sum = ArchReg::int(3); // reduction
    let cnt = ArchReg::int(4);

    // Outer loop: chase a pointer through a 16 MB structure (misses), and
    // prime the inner loop.
    p.block(outer)
        .load(node, node, AddrStream::random_in(0x100_0000, 16 << 20))
        .alu(acc, &[node])
        .alu(cnt, &[cnt])
        .branch(
            BranchBehavior::AlwaysTaken,
            cnt,
            Terminator::conditional(inner, inner),
        );

    // Inner loop: a serial arithmetic chain (execute-critical), iterated
    // a predictable number of times.
    p.block(inner)
        .alu(acc, &[acc])
        .alu(acc, &[acc])
        .alu(acc, &[acc])
        .branch(
            BranchBehavior::loop_exit(6),
            acc,
            Terminator::conditional(inner, tail),
        );

    // Tail: fold into the reduction, store, loop.
    p.block(tail)
        .alu(sum, &[sum, acc])
        .store(sum, node, AddrStream::stream(0x20_0000, 8, 1 << 12))
        .jump(outer);

    let program = p.finish(outer)?;
    println!(
        "custom program: {} blocks, {} static instructions",
        program.block_count(),
        program.static_len()
    );
    let trace = program.execute(42, 30_000);
    println!("{}", trace.stats());

    let opts = RunOptions::default().with_epochs(3);
    let mono = run_cell(
        &MachineConfig::micro05_baseline(),
        &trace,
        PolicyKind::FocusedLoc,
        &opts,
    )?;
    println!("\n{:6} {:30} {:>8} {:>8}", "layout", "policy", "CPI", "norm.");
    println!("{:6} {:30} {:>8.3} {:>8.3}", "1x8w", "focused+loc", mono.cpi(), 1.0);
    for layout in ClusterLayout::CLUSTERED {
        let machine = MachineConfig::micro05_baseline().with_layout(layout);
        for kind in [PolicyKind::Focused, PolicyKind::best_for(layout.clusters())] {
            let cell = run_cell(&machine, &trace, kind, &opts)?;
            println!(
                "{:6} {:30} {:>8.3} {:>8.3}",
                layout,
                kind.name(),
                cell.cpi(),
                cell.normalized_cpi(&mono)
            );
        }
    }
    Ok(())
}
