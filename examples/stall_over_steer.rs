//! Figure 9 / §5: load-balance steering spreads a serial dependence chain
//! across every cluster; stalling steering keeps it home.
//!
//! The hypothetical program is a single chain of dependent adds: ILP 1,
//! no mispredictions — it fetches far faster than it executes
//! (*execute-critical*). When its cluster's window fills, a
//! load-balancing policy sends the next link to another cluster,
//! inserting one forwarding delay per window's worth of instructions.
//! Stall-over-steer holds dispatch instead, losing nothing (fetch was
//! never the bottleneck) and eliminating the forwarding delays entirely.
//!
//! Run with `cargo run --release --example stall_over_steer`.

use clustercrit::core::{run_cell, PolicyKind, RunOptions};
use clustercrit::critpath::CostCategory;
use clustercrit::isa::{ArchReg, ClusterLayout, MachineConfig, OpClass, Pc, StaticInst};
use clustercrit::trace::TraceBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The Figure 9 program: one long chain of dependent adds.
    let mut b = TraceBuilder::new();
    let r = ArchReg::int(1);
    for i in 0..20_000u64 {
        b.push_simple(
            StaticInst::new(Pc::new(4 * (i % 16)), OpClass::IntAlu)
                .with_src(r)
                .with_dst(r),
        );
    }
    let trace = b.finish();

    let mono = MachineConfig::micro05_baseline();
    let opts = RunOptions::default().with_epochs(3);
    let reference = run_cell(&mono, &trace, PolicyKind::FocusedLoc, &opts)?;
    println!(
        "monolithic reference: CPI {:.3} (the chain executes one add per cycle)\n",
        reference.cpi()
    );

    println!(
        "{:>6} {:>28} {:>8} {:>10} {:>14} {:>14}",
        "layout", "policy", "CPI", "norm.", "fwd cycles", "steer stalls"
    );
    for layout in ClusterLayout::CLUSTERED {
        let machine = mono.with_layout(layout);
        for kind in [PolicyKind::FocusedLoc, PolicyKind::StallOverSteer] {
            let cell = run_cell(&machine, &trace, kind, &opts)?;
            println!(
                "{:>6} {:>28} {:>8.3} {:>10.3} {:>14} {:>14}",
                layout,
                kind.name(),
                cell.cpi(),
                cell.normalized_cpi(&reference),
                cell.analysis.breakdown.get(CostCategory::FwdDelay),
                cell.result.steer_stall_cycles,
            );
        }
    }

    println!(
        "\nWithout stalling, the chain is exiled to a new cluster each time a \
         window fills (A..L in Figure 9), paying the 2-cycle global bypass on \
         the only path that matters. Stall-over-steer trades harmless fetch \
         stalls for those forwarding delays."
    );
    Ok(())
}
