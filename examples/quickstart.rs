//! Quickstart: simulate one workload on the monolithic machine and on
//! every clustered partitioning, under the baseline and the paper's best
//! policy, and print a small comparison table.
//!
//! Run with `cargo run --release --example quickstart`.

use clustercrit::core::{run_cell, PolicyKind, RunOptions};
use clustercrit::critpath::CostCategory;
use clustercrit::isa::{ClusterLayout, MachineConfig};
use clustercrit::trace::Benchmark;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = Benchmark::Vpr;
    let trace = bench.generate(1, 30_000);
    println!("workload: {bench} ({} dynamic instructions)", trace.len());
    println!("{}", trace.stats());

    let base = MachineConfig::micro05_baseline();
    let opts = RunOptions::default();

    // The monolithic reference (with LoC scheduling, as in Figure 14).
    let mono = run_cell(&base, &trace, PolicyKind::FocusedLoc, &opts)?;
    println!(
        "\n{:6} {:28} {:>7} {:>10} {:>12} {:>12}",
        "layout", "policy", "CPI", "norm. CPI", "fwd cycles", "contention"
    );
    println!(
        "{:6} {:28} {:7.3} {:>10} {:>12} {:>12}",
        base.layout,
        "focused+loc (reference)",
        mono.cpi(),
        "1.000",
        mono.analysis.breakdown.get(CostCategory::FwdDelay),
        mono.analysis.breakdown.get(CostCategory::Contention),
    );

    for layout in ClusterLayout::CLUSTERED {
        let machine = base.with_layout(layout);
        for kind in [PolicyKind::Focused, PolicyKind::Proactive] {
            let cell = run_cell(&machine, &trace, kind, &opts)?;
            println!(
                "{:6} {:28} {:7.3} {:10.3} {:>12} {:>12}",
                layout,
                kind.name(),
                cell.cpi(),
                cell.normalized_cpi(&mono),
                cell.analysis.breakdown.get(CostCategory::FwdDelay),
                cell.analysis.breakdown.get(CostCategory::Contention),
            );
        }
    }

    println!(
        "\nThe paper's policies (focused+loc+stall+proactive) recover much of \
         the penalty the focused baseline pays on narrow clusters."
    );
    Ok(())
}
