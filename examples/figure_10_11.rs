//! Figures 10 and 11: the vpr kernel's issue schedule with and without
//! stall-over-steer, rendered cycle by cycle.
//!
//! The paper's illustration uses 5-entry windows on 1-wide clusters to
//! show the critical spine being spread across clusters (Figure 10) and
//! then kept home by selective stalling (Figure 11). We reproduce the
//! setting exactly: `window_total = 40` on the 8x1w layout gives 5
//! entries per cluster.
//!
//! Run with `cargo run --release --example figure_10_11`.

use clustercrit::core::{run_cell, PolicyKind, RunOptions};
use clustercrit::critpath::CostCategory;
use clustercrit::isa::{
    ClusterLayout, FrontEndConfig, MachineConfig, MemoryConfig, Pc,
};
use clustercrit::sim::viz::render_schedule;
use clustercrit::trace::patterns::{RegAlloc, SpineRibs, SpineRibsConfig};
use clustercrit::trace::{BranchBehavior, TraceBuilder};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's illustrative machine: 8 one-wide clusters with tiny
    // (5-entry) windows.
    let machine = MachineConfig::build(
        ClusterLayout::C8x1w,
        FrontEndConfig::default(),
        40,  // 5 entries per cluster, as in Figure 10
        256, // ROB
        8,
        8,
        4,
        4,
        2,
        MemoryConfig::default(),
    )?;

    // The vpr spine-and-ribs kernel (Figure 7 / 10).
    let mut regs = RegAlloc::new();
    let mut kernel = SpineRibs::new(
        Pc::new(0x100),
        &mut regs,
        SpineRibsConfig {
            spine_len: 2,
            rib_len: 3,
            rib_branch: BranchBehavior::Bernoulli(0.4),
            trip: 64,
        },
    );
    let mut b = TraceBuilder::new();
    let mut rng = StdRng::seed_from_u64(11);
    while b.len() < 20_000 {
        kernel.emit(&mut b, &mut rng);
    }
    let trace = b.finish();
    let body = kernel.body_len() as u32;

    // Label instructions A.. within their loop iteration, like the figure.
    let label = |i: clustercrit::trace::DynIdx| {
        let off = i.raw() % body;
        let letter = (b'A' + off as u8) as char;
        letter.to_string()
    };

    let opts = RunOptions::default().with_epochs(3);
    println!("Figure 10 — load-balance steering (focused+loc, no stalling):\n");
    let steered = run_cell(&machine, &trace, PolicyKind::FocusedLoc, &opts)?;
    let start = steered.result.records[10_000].issue;
    println!("{}", render_schedule(&steered.result, start, start + 11, label));

    println!("\nFigure 11 — stall-over-steer keeps the spine home:\n");
    let stalled = run_cell(&machine, &trace, PolicyKind::StallOverSteer, &opts)?;
    let start = stalled.result.records[10_000].issue;
    println!("{}", render_schedule(&stalled.result, start, start + 11, label));

    for (name, cell) in [("steered", &steered), ("stalled", &stalled)] {
        println!(
            "{name:8} CPI {:.3}  critical fwd cycles {:>6}  contention {:>6}",
            cell.cpi(),
            cell.analysis.breakdown.get(CostCategory::FwdDelay),
            cell.analysis.breakdown.get(CostCategory::Contention),
        );
    }
    println!(
        "\nIn the steered schedule the loop-carried spine (A, B of each\n\
         iteration) hops clusters whenever a tiny window fills, paying the\n\
         global bypass on the only chain that matters; with stall-over-steer\n\
         it stays on one cluster while the ribs load-balance around it."
    );
    Ok(())
}
