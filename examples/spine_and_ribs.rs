//! Figure 7: the `vpr` spine-and-ribs loop, and why binary criticality
//! ties hurt (§4).
//!
//! The loop-carried *spine* (instruction `b`) and the rib head feeding a
//! mispredicting branch (instruction `a`) are both predicted critical by
//! a binary predictor, so they tie — and the scheduler picks the older
//! one (`a`), stalling the truly critical spine. Likelihood of
//! criticality separates them.
//!
//! Run with `cargo run --release --example spine_and_ribs`.

use clustercrit::core::{run_cell, PolicyKind, RunOptions};
use clustercrit::critpath::CostCategory;
use clustercrit::isa::{ClusterLayout, MachineConfig};
use clustercrit::predictors::LocDistribution;
use clustercrit::trace::Benchmark;
use ccs_predictors::{ExactLoc, LocEstimator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = Benchmark::Vpr.generate(7, 30_000);
    let machine = MachineConfig::micro05_baseline().with_layout(ClusterLayout::C8x1w);
    let opts = RunOptions::default().with_epochs(3);

    println!("vpr-like spine-and-ribs workload, 8x1w machine\n");
    let focused = run_cell(&machine, &trace, PolicyKind::Focused, &opts)?;
    let loc = run_cell(&machine, &trace, PolicyKind::FocusedLoc, &opts)?;

    for (name, cell) in [("focused (binary criticality)", &focused), ("focused + LoC", &loc)] {
        let t = cell.analysis.event_totals();
        println!(
            "{name:32} CPI {:.3}  critical contention cycles {:>7}  \
             (events on predicted-critical: {}, other: {})",
            cell.cpi(),
            cell.analysis.breakdown.get(CostCategory::Contention),
            t.contention_predicted_critical,
            t.contention_other,
        );
    }

    // Show the LoC spectrum the binary predictor collapses (Figure 8's
    // point, on this one workload).
    let mut exact = ExactLoc::new();
    for (i, inst) in trace.iter() {
        exact.train(inst.pc(), focused.analysis.e_critical[i.index()]);
    }
    let dist = LocDistribution::from_exact(&exact);
    println!("\nLoC distribution (dynamic-instruction weighted):");
    for (lo, pct) in dist.series() {
        if pct > 0.5 {
            println!("  {lo:>3}%–{:>3}%: {:5.1}%  {}", lo + 5, pct, "#".repeat(pct as usize));
        }
    }
    println!(
        "\nA binary predictor calls everything above ~12.5% \"critical\" and \
         cannot prioritize among those instructions; LoC can."
    );
    Ok(())
}
