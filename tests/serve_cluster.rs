//! Sharded-cluster chaos: a ≥100-cell campaign against three
//! `ccs-serve` shards, one of which is killed mid-grid and later
//! restarted from its journal, must complete via ring failover and stay
//! **bit-identical** to an in-process [`run_grid`] of the same cells —
//! failover changes where a cell is computed, never what it answers.
//!
//! The kill is the `KillSwitch` (in-process `kill -9`: the queue is
//! dropped on the floor and no `drained` journal marker is written), so
//! the recovery path replays exactly the artifact a crash leaves. The
//! restarted shard must answer its pre-crash cells as cache hits, and a
//! *surviving* shard must be able to answer one of those cells through
//! cross-shard cache peering without re-simulating it.

use ccs_client::{Client, ClusterClient};
use ccs_core::checkpoint::{cell_key, CheckpointRecord};
use ccs_core::{run_grid, CellSpec, PolicyKind, RunOptions, ShardMap};
use ccs_serve::{replay_journal, ServeConfig, Server, WireCellSpec};
use ccs_isa::{ClusterLayout, MachineConfig};
use ccs_trace::Benchmark;
use std::collections::HashMap;
use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

const LEN: usize = 600;
/// Cluster-wide answered cells before the victim shard is killed.
const KILL_AFTER_CELLS: usize = 30;

/// 12 benchmarks × 3 clustered layouts × 3 ladder policies = 108 cells.
fn grid_specs() -> Vec<CellSpec> {
    let base = MachineConfig::micro05_baseline();
    let options = RunOptions::default().with_epochs(1);
    let mut specs = Vec::new();
    for bench in Benchmark::ALL {
        for layout in ClusterLayout::CLUSTERED {
            for policy in [
                PolicyKind::Focused,
                PolicyKind::FocusedLoc,
                PolicyKind::StallOverSteer,
            ] {
                specs.push(CellSpec::new(
                    base.with_layout(layout),
                    bench,
                    1,
                    LEN,
                    policy,
                    options,
                ));
            }
        }
    }
    specs
}

/// Reserves `n` distinct loopback ports by binding and dropping
/// listeners, so every shard's peer list (including the restart
/// address) can be written into configs before anything boots.
fn reserve_ports(n: usize) -> Vec<u16> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("reserve port"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().unwrap().port())
        .collect()
}

fn shard_config(port: u16, journal: PathBuf, peers: Vec<String>, recover: bool) -> ServeConfig {
    ServeConfig {
        addr: format!("127.0.0.1:{port}"),
        workers: 2,
        queue_capacity: 256,
        cache_capacity: 256,
        journal: Some(journal),
        recover,
        peers,
        ..ServeConfig::default()
    }
}

fn boot(config: ServeConfig) -> (ccs_serve::KillSwitch, std::thread::JoinHandle<()>) {
    let server = Server::bind(config).expect("bind shard");
    let switch = server.kill_switch();
    let handle = std::thread::spawn(move || {
        server.run().expect("shard run");
    });
    (switch, handle)
}

#[test]
fn sharded_campaign_survives_kill_failover_and_journal_replay() {
    let specs = grid_specs();
    assert!(specs.len() >= 100, "chaos campaign must span ≥100 cells");

    // Ground truth: the batch path, bit for bit.
    let local: Vec<CheckpointRecord> = run_grid(&specs, 4)
        .iter()
        .map(CheckpointRecord::from_result)
        .collect();
    assert!(local.iter().all(|r| r.status == "ok"));
    let truth: HashMap<&str, &CheckpointRecord> =
        local.iter().map(|r| (r.key.as_str(), r)).collect();

    let dir = std::env::temp_dir().join(format!("ccs-cluster-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let ports = reserve_ports(4);
    let addr = |i: usize| format!("127.0.0.1:{}", ports[i]);
    // ports[0..3] are the campaign shards; ports[3] is where the victim
    // will be reborn, and the survivors list it as a peer from the
    // start so post-recovery peering needs no reconfiguration.
    let journal = |i: usize| dir.join(format!("shard{i}.jsonl"));
    let (_s0, h0) = boot(shard_config(
        ports[0],
        journal(0),
        vec![addr(1), addr(3)],
        false,
    ));
    let (_s1, h1) = boot(shard_config(
        ports[1],
        journal(1),
        vec![addr(0), addr(3)],
        false,
    ));
    let (victim_switch, victim_handle) = boot(shard_config(
        ports[2],
        journal(2),
        vec![addr(0), addr(1)],
        false,
    ));

    let members = vec![addr(0), addr(1), addr(2)];
    let map = ShardMap::new(&members).unwrap();
    let victim_addr = addr(2);
    assert!(
        specs
            .iter()
            .any(|s| map.shard_for(&cell_key(s)) == victim_addr),
        "the victim must own part of the keyspace"
    );

    let cells: Vec<WireCellSpec> = specs
        .iter()
        .map(|s| WireCellSpec::from_cell(s).expect("wire-addressable"))
        .collect();

    // Kill one shard mid-campaign, from the streaming callback: after
    // KILL_AFTER_CELLS answers the victim dies with queued work and an
    // un-drained journal.
    let answered = AtomicUsize::new(0);
    let cluster = ClusterClient::new(map.clone())
        .with_connect_timeout(Duration::from_millis(500))
        .with_reply_timeout(Duration::from_secs(120));
    let outcome = cluster
        .submit_grid(&cells, |_record| {
            if answered.fetch_add(1, Ordering::SeqCst) + 1 == KILL_AFTER_CELLS {
                victim_switch.kill();
            }
        })
        .expect("cluster submission");
    victim_handle.join().expect("killed shard exits its run loop");

    // The campaign completed despite the crash…
    assert_eq!(outcome.exit_code(), 0, "failover completes the campaign");
    assert!(outcome.is_complete());
    assert_eq!(outcome.ok, specs.len());
    // …some cells were answered by a non-owner…
    assert!(
        outcome.failovers > 0,
        "a killed shard's unanswered cells must fail over"
    );
    assert!(outcome.waves > 1, "failover takes at least a second wave");
    // …and every record is bit-identical to the in-process run.
    for (spec, record) in specs.iter().zip(&outcome.records) {
        let record = record.as_ref().expect("complete");
        let expect = truth[cell_key(spec).as_str()];
        assert_eq!(record.key, expect.key);
        assert_eq!(record.status, expect.status, "{}", record.key);
        assert_eq!(record.cycles, expect.cycles, "{}", record.key);
        assert_eq!(record.cpi_bits, expect.cpi_bits, "{}", record.key);
        assert_eq!(record.digest, expect.digest, "{}", record.key);
    }

    // The victim answered some cells before dying; those are exactly
    // what its journal replays.
    let pre_crash: Vec<&str> = outcome
        .served_by
        .iter()
        .zip(&specs)
        .filter(|(shard, _)| shard.as_deref() == Some(victim_addr.as_str()))
        .map(|(_, spec)| spec.benchmark.name())
        .collect();
    assert!(
        !pre_crash.is_empty(),
        "victim must have answered something before the kill"
    );
    let replay = replay_journal(&journal(2)).expect("crash journal replays");
    assert!(!replay.drained, "a killed shard never wrote `drained`");
    let replayed_ok: Vec<String> = replay
        .records
        .iter()
        .filter(|r| r.status == "ok")
        .map(|r| r.key.clone())
        .collect();
    assert!(!replayed_ok.is_empty(), "victim journaled completed cells");

    // Rebirth on the reserved port, recovering from the crash journal.
    let (_s3, h3) = boot(shard_config(
        ports[3],
        journal(2),
        vec![addr(0), addr(1)],
        true,
    ));
    let mut reborn = Client::connect(&addr(3)).expect("connect reborn shard");
    let status = reborn.status().expect("status");
    assert_eq!(
        status.recovered,
        replayed_ok.len() as u64,
        "replay prefilled the cache with every journaled ok cell"
    );

    // Its pre-crash cells answer as cache hits, bit-identical.
    let recovered_specs: Vec<WireCellSpec> = specs
        .iter()
        .filter(|s| replayed_ok.contains(&cell_key(s)))
        .map(|s| WireCellSpec::from_cell(s).unwrap())
        .collect();
    assert_eq!(recovered_specs.len(), replayed_ok.len());
    let hits = reborn
        .submit_grid(&recovered_specs, |_| {})
        .expect("recovered grid");
    assert_eq!(hits.exit_code(), 0);
    assert_eq!(
        hits.cached,
        recovered_specs.len(),
        "every replayed cell is a cache hit — nothing re-simulates"
    );
    for record in hits.records.iter().flatten() {
        let expect = truth[record.key.as_str()];
        assert_eq!(record.cycles, expect.cycles, "{}", record.key);
        assert_eq!(record.cpi_bits, expect.cpi_bits, "{}", record.key);
        assert_eq!(record.digest, expect.digest, "{}", record.key);
    }

    // Cross-shard peering: a surviving shard that never computed one of
    // those cells answers it from the reborn shard's recovered cache.
    // The probe must be a cell the victim *answered* pre-crash (so no
    // survivor recomputed it during failover), which the journal
    // ordering guarantees was also journaled. (The survivor's breaker
    // may still be cooling down from lookups that failed while the
    // reborn port was dark; wait out the cooldown.)
    std::thread::sleep(Duration::from_millis(2_100));
    let peer_idx = specs
        .iter()
        .enumerate()
        .find_map(|(i, s)| {
            (outcome.served_by[i].as_deref() == Some(victim_addr.as_str())
                && replayed_ok.contains(&cell_key(s)))
            .then_some(i)
        })
        .expect("a victim-served, journaled cell exists");
    let peer_cell = WireCellSpec::from_cell(&specs[peer_idx]).unwrap();
    let mut survivor = Client::connect(&addr(0)).expect("connect survivor");
    let before = survivor.status().expect("status").peer_hits;
    let record = survivor.submit_cell(&peer_cell).expect("peered cell");
    assert!(record.cached, "a peer answer surfaces as a cache hit");
    let expect = truth[record.key.as_str()];
    assert_eq!(record.cycles, expect.cycles);
    assert_eq!(record.cpi_bits, expect.cpi_bits);
    assert_eq!(record.digest, expect.digest);
    let after = survivor.status().expect("status").peer_hits;
    assert_eq!(after, before + 1, "the answer came through peering");

    // Graceful shutdown for the survivors and the reborn shard.
    for target in [addr(0), addr(1), addr(3)] {
        let mut c = Client::connect(&target).expect("connect for drain");
        c.drain().expect("drain");
    }
    h0.join().unwrap();
    h1.join().unwrap();
    h3.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
