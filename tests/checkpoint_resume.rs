//! Acceptance test for checkpoint/resume: a campaign killed partway
//! through (simulated by `max_cells`) and resumed reproduces the full
//! result set bit-identically — same manifest digests as an
//! uninterrupted run — without re-running the cells that already
//! finished.

use clustercrit::core::checkpoint::{run_campaign, CampaignOptions};
use clustercrit::core::{cells_run, GridRequest, PolicyKind, Resilience, RunOptions};
use clustercrit::isa::{ClusterLayout, MachineConfig};
use clustercrit::trace::Benchmark;
use std::path::PathBuf;

fn grid() -> Vec<clustercrit::core::CellSpec> {
    GridRequest::new(MachineConfig::micro05_baseline(), 800)
        .benchmarks([Benchmark::Gzip, Benchmark::Twolf, Benchmark::Bzip2])
        .layouts([ClusterLayout::C2x4w, ClusterLayout::C8x1w])
        .policies([PolicyKind::Dependence, PolicyKind::Focused, PolicyKind::Proactive])
        .options(RunOptions::default().with_epochs(1))
        .build()
}

fn temp_root() -> PathBuf {
    std::env::temp_dir().join(format!("ccs-resume-{}", std::process::id()))
}

fn temp_manifest(name: &str) -> PathBuf {
    temp_root().join(name)
}

#[test]
fn a_killed_campaign_resumes_bit_identically() {
    let specs = grid();
    let total = specs.len();
    assert_eq!(total, 18);
    let res = Resilience::default();
    let kill_at = 7; // "kill" the first run after 7 of 18 cells

    // Uninterrupted reference run.
    let fresh_path = temp_manifest("fresh.jsonl");
    let fresh = run_campaign(&specs, 2, &res, &CampaignOptions::new(&fresh_path))
        .expect("fresh campaign runs");
    assert_eq!(fresh.exit_code(), 0, "{}", fresh.summary());

    // Interrupted run: only `kill_at` cells land in the manifest.
    let resumed_path = temp_manifest("resumed.jsonl");
    let opts = CampaignOptions::new(&resumed_path).with_max_cells(kill_at);
    let before = cells_run();
    let partial = run_campaign(&specs, 2, &res, &opts).expect("partial campaign runs");
    let ran_first = cells_run() - before;
    assert_eq!(partial.exit_code(), 2, "a truncated campaign is incomplete");
    assert_eq!(partial.unfinished(), total - kill_at);
    assert_eq!(ran_first as usize, kill_at);

    // Resume: the recorded cells are skipped, the remainder runs.
    let opts = CampaignOptions::new(&resumed_path).with_resume(true);
    let before = cells_run();
    let resumed = run_campaign(&specs, 2, &res, &opts).expect("resumed campaign runs");
    let ran_second = cells_run() - before;
    assert_eq!(resumed.exit_code(), 0, "{}", resumed.summary());
    assert_eq!(resumed.skipped, kill_at);
    assert_eq!(
        ran_first + ran_second,
        total as u64,
        "no cell may run twice across the interrupted and resumed runs"
    );

    // The stitched-together manifest must carry the same digests as the
    // uninterrupted one, cell for cell.
    assert_eq!(fresh.records.len(), resumed.records.len());
    for (i, (a, b)) in fresh.records.iter().zip(&resumed.records).enumerate() {
        let a = a.as_ref().expect("fresh record present");
        let b = b.as_ref().expect("resumed record present");
        assert_eq!(a.key, b.key, "cell {i} keyed differently");
        assert_eq!(a.digest, b.digest, "cell {i} result digest diverged");
        assert_eq!(a.cpi_bits, b.cpi_bits, "cell {i} CPI diverged");
        assert_eq!(a.cycles, b.cycles, "cell {i} cycle count diverged");
    }

    // Remove exactly this test's scratch directory — never its parent
    // (an earlier version walked up to the system temp dir itself).
    let _ = std::fs::remove_dir_all(temp_root());
}
