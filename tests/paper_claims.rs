//! The paper's headline quantitative claims, pinned as integration tests
//! at moderate scale so regressions in any crate are caught as a broken
//! *conclusion*, not just a broken unit.
//!
//! Each test names the claim it guards. Thresholds are looser than the
//! reference-run numbers in EXPERIMENTS.md (smaller traces here), but
//! tight enough that the paper's qualitative story cannot silently
//! invert.

use ccs_bench::figures;
use ccs_bench::HarnessOptions;
use ccs_core::PolicyKind;
use ccs_isa::ClusterLayout;

fn opts() -> HarnessOptions {
    let mut o = HarnessOptions::smoke();
    o.len = 4_000;
    // Every claim's grid doubles as a checked-mode smoke test: each
    // cell's schedule is audited against the structural invariant
    // checker, and any violation fails the cell outright.
    o.checked = true;
    o
}

#[test]
fn claim_1_idealized_clustering_is_nearly_free() {
    // §2.2 / Figure 2: "all clustered configurations achieve average
    // performance that is less than 2% slower than the 1x8w
    // configuration" (we allow a few points of slack at this scale).
    let f = figures::fig2(&opts());
    assert!(f.average[0] < 1.05, "2x4w idealized {}", f.average[0]);
    assert!(f.average[1] < 1.06, "4x2w idealized {}", f.average[1]);
    assert!(f.average[2] < 1.08, "8x1w idealized {}", f.average[2]);
}

#[test]
fn claim_2_focused_pays_an_order_of_magnitude_more() {
    // §2.3 / Figure 4: focused steering loses ~an order of magnitude more
    // than the idealized study, growing with cluster count.
    let o = opts();
    let ideal = figures::fig2(&o);
    let focused = figures::fig4(&o);
    for k in 0..3 {
        let ideal_pen = ideal.average[k] - 1.0;
        let focused_pen = focused.average[k] - 1.0;
        assert!(
            focused_pen > ideal_pen,
            "layout {k}: focused {focused_pen:.3} vs ideal {ideal_pen:.3}"
        );
    }
    // The 8-cluster machine suffers visibly.
    assert!(focused.average[2] > 1.08, "8x1w focused {}", focused.average[2]);
    // Penalty grows with cluster count.
    assert!(focused.average[0] < focused.average[2]);
}

#[test]
fn claim_3_contention_hits_predicted_critical_instructions() {
    // §3 / Figure 6(a): critical contention predominantly hits
    // instructions *correctly predicted* critical — ties, not predictor
    // false negatives.
    let f = figures::fig6(&opts());
    assert!(
        f.contention_critical_fraction() > 0.5,
        "predicted-critical contention fraction {}",
        f.contention_critical_fraction()
    );
}

#[test]
fn claim_4_load_balance_steering_dominates_critical_forwarding() {
    // §3 / Figure 6(b).
    let f = figures::fig6(&opts());
    assert!(
        f.forwarding_load_balance_fraction() > 0.5,
        "load-balance forwarding fraction {}",
        f.forwarding_load_balance_fraction()
    );
}

#[test]
fn claim_5_loc_spectrum_is_wide_with_mass_at_zero() {
    // §4 / Figure 8.
    let f = figures::fig8(&opts());
    assert!(f.distribution.percent(0) > 20.0);
    let above = f.distribution.percent_binary_critical();
    assert!((5.0..85.0).contains(&above), "binary-critical {above}%");
}

#[test]
fn claim_6_the_policy_ladder_recovers_most_of_the_penalty() {
    // §7 / Figure 14: the three policies cut the clustering penalty
    // substantially on every configuration (paper: 42/57/66%).
    let f = figures::fig14(&opts());
    for layout in ClusterLayout::CLUSTERED {
        let cut = f.penalty_reduction(layout);
        assert!(cut > 0.25, "{layout}: penalty cut {cut:.2}");
        let focused = f.average(layout, PolicyKind::Focused);
        let best = f.average(layout, PolicyKind::best_for(layout.clusters()));
        assert!(best < focused, "{layout}: {best} !< {focused}");
    }
    // Final configurations land within ~8% of the monolithic machine
    // (paper: 2/4/6%).
    let final_8 = f.average(
        ClusterLayout::C8x1w,
        PolicyKind::best_for(8),
    );
    assert!(final_8 < 1.09, "8x1w final {final_8}");
}

#[test]
fn claim_7_loc_knowledge_is_almost_as_good_as_exact() {
    // §4: replacing the list scheduler's exact knowledge with LoC barely
    // hurts; binary criticality hurts more on the narrow machine.
    let s = figures::sec4_listsched(&opts());
    let (_, n8) = (&s.rows[2].0, s.rows[2].1);
    let exact = n8[0];
    let loc = n8[1];
    let binary = n8[2];
    assert!(loc - exact < 0.05, "LoC {loc:.3} vs exact {exact:.3}");
    assert!(
        binary >= loc - 0.01,
        "binary {binary:.3} should not beat LoC {loc:.3}"
    );
}

#[test]
fn claim_8_most_critical_consumers_are_statically_predictable() {
    // §6: ~80% of values have a statically unique most-critical consumer;
    // >50% of critical multi-consumer values don't have it first.
    let s = figures::sec6_consumers(&opts());
    assert!(s.average_unique() > 0.6, "unique {}", s.average_unique());
    assert!(
        s.average_not_first() > 0.3,
        "not-first {}",
        s.average_not_first()
    );
}

#[test]
fn claim_9_available_ilp_near_width_is_hard_to_achieve() {
    // §7 / Figure 15.
    let f = figures::fig15(&opts());
    let at_1 = f.census.achieved_at(1).expect("ILP-1 cycles");
    assert!(at_1 > 0.9, "achieved at available=1: {at_1}");
    if let Some(at_8) = f.census.achieved_at(8) {
        assert!(at_8 < 7.2, "achieved at available=8: {at_8}");
    }
}
