//! Regression test: the parallel grid executor is bit-identical to
//! serial evaluation.
//!
//! The harness's methodology claims (EXPERIMENTS.md) depend on every
//! figure being reproducible regardless of `--threads`; this pins the
//! guarantee on a 3-benchmark × 2-layout × 2-policy grid, comparing
//! cycle counts, the full per-instruction event records, the
//! critical-path cost breakdown, and the trained predictor footprints.

use clustercrit::core::{run_grid, GridRequest, PolicyKind};
use clustercrit::isa::{ClusterLayout, MachineConfig};
use clustercrit::trace::{Benchmark, TraceStore};

#[test]
fn parallel_grid_is_bit_identical_to_serial() {
    let specs = GridRequest::new(MachineConfig::micro05_baseline(), 2_000)
        .benchmarks([Benchmark::Vpr, Benchmark::Mcf, Benchmark::Gzip])
        .layouts([ClusterLayout::C2x4w, ClusterLayout::C8x1w])
        .policies([PolicyKind::Focused, PolicyKind::StallOverSteer])
        .build();
    assert_eq!(specs.len(), 3 * 2 * 2);

    let serial = run_grid(&specs, 1);
    let parallel = run_grid(&specs, 8);
    assert_eq!(serial.len(), parallel.len());

    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.spec, p.spec, "results must come back in input order");
        let ctx = format!(
            "{} {:?} on {} clusters",
            s.spec.benchmark.name(),
            s.spec.policy,
            s.spec.config.cluster_count()
        );
        let (so, po) = (s.expect_outcome(), p.expect_outcome());

        // Simulated timing: identical to the cycle.
        assert_eq!(so.result.cycles, po.result.cycles, "{ctx}: cycles");
        assert_eq!(so.result.records, po.result.records, "{ctx}: records");
        assert_eq!(
            so.result.steer_stall_cycles, po.result.steer_stall_cycles,
            "{ctx}: steer stalls"
        );

        // Critical-path attribution: identical cost breakdown.
        assert_eq!(
            so.analysis.breakdown, po.analysis.breakdown,
            "{ctx}: breakdown"
        );

        // Predictor footprints: identically trained banks.
        assert_eq!(
            so.bank.trained_epochs(),
            po.bank.trained_epochs(),
            "{ctx}: trained epochs"
        );
        for (i, inst) in TraceStore::global()
            .get(s.spec.benchmark, s.spec.sample_seed, s.spec.len)
            .as_slice()
            .iter()
            .enumerate()
        {
            let pc = inst.pc();
            assert_eq!(
                so.bank.predicted_critical(pc),
                po.bank.predicted_critical(pc),
                "{ctx}: binary prediction for instruction {i}"
            );
            assert_eq!(
                so.bank.loc_level(pc),
                po.bank.loc_level(pc),
                "{ctx}: LoC level for instruction {i}"
            );
        }
    }
}

#[test]
fn warmed_trace_store_leaves_results_bit_identical() {
    // The grid executor fetches every trace through the process-wide
    // TraceStore. This pins the cache-hit path: a first run warms the
    // store (generating each trace at most once), then serial and
    // 8-thread re-runs over the warmed store must serve pure hits and
    // reproduce the cold results bit for bit.
    let specs = GridRequest::new(MachineConfig::micro05_baseline(), 1_700)
        .benchmarks([Benchmark::Twolf, Benchmark::Parser])
        .layouts([ClusterLayout::C4x2w])
        .policies([PolicyKind::Focused, PolicyKind::Proactive])
        .build();

    let store = TraceStore::global();
    let cold = run_grid(&specs, 2);
    // Snapshot the cached allocation of each of this grid's keys. (The
    // hit/miss counters are process-global and other tests share the
    // store, so the single-generation guarantee is pinned per key, by
    // pointer identity, not by counter deltas.)
    let warmed: Vec<_> = specs
        .iter()
        .map(|s| store.get(s.benchmark, s.sample_seed, s.len))
        .collect();
    let hits_after_cold = store.hits();

    let warm_serial = run_grid(&specs, 1);
    let warm_parallel = run_grid(&specs, 8);

    assert!(
        store.hits() >= hits_after_cold + 2 * specs.len() as u64,
        "every warmed cell must be served from the cache"
    );
    for (spec, arc) in specs.iter().zip(&warmed) {
        let again = store.get(spec.benchmark, spec.sample_seed, spec.len);
        assert!(
            std::sync::Arc::ptr_eq(arc, &again),
            "{} seed {} len {}: warmed re-runs must share the one cached trace",
            spec.benchmark.name(),
            spec.sample_seed,
            spec.len
        );
    }

    for ((c, s), p) in cold.iter().zip(&warm_serial).zip(&warm_parallel) {
        let ctx = format!("{} {:?}", c.spec.benchmark.name(), c.spec.policy);
        let co = c.expect_outcome();
        for (label, o) in [("serial", s.expect_outcome()), ("parallel", p.expect_outcome())] {
            assert_eq!(co.result.cycles, o.result.cycles, "{ctx}: {label} cycles");
            assert_eq!(co.result.records, o.result.records, "{ctx}: {label} records");
            assert_eq!(
                co.analysis.breakdown, o.analysis.breakdown,
                "{ctx}: {label} breakdown"
            );
        }
    }
}
