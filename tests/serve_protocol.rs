//! Adversarial protocol tests against a live `ccs-serve` daemon:
//! malformed JSON, truncated and partial frames, hostile length
//! prefixes, seeded byte-level fuzzing, interleaved clients, and a
//! client killed mid-request. The daemon must answer garbage with typed
//! errors, never die, and leave a parseable journal.

use ccs_client::Client;
use ccs_serve::{
    frame_bytes, FrameReader, JournalEvent, Request, Response, ServeConfig, Server, WireCellSpec,
};
use ccs_verify::{mutate_frame, ALL_FRAME_MUTATIONS};
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::Duration;

const LEN: usize = 1_500;

fn journal_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("ccs-serve-test-{name}-{}.jsonl", std::process::id()));
    p
}

fn start_server(journal: Option<PathBuf>) -> (SocketAddr, std::thread::JoinHandle<()>) {
    let server = Server::bind(ServeConfig {
        workers: 2,
        queue_capacity: 32,
        cache_capacity: 64,
        journal,
        ..ServeConfig::default()
    })
    .expect("bind loopback");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run().expect("serve until drain"));
    (addr, handle)
}

fn raw_connect(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .unwrap();
    stream
}

fn read_response(reader: &mut FrameReader, stream: &mut TcpStream) -> Response {
    let payload = reader.read_frame(stream).expect("a reply frame");
    Response::decode(&payload).expect("a decodable reply")
}

fn sample_cell(seed: u64) -> WireCellSpec {
    WireCellSpec::new(
        ccs_trace::Benchmark::Gzip,
        seed,
        LEN,
        ccs_isa::ClusterLayout::C2x4w,
        ccs_core::PolicyKind::Focused,
    )
}

/// The daemon is alive iff a fresh connection gets a status reply.
fn assert_alive(addr: SocketAddr) {
    let mut client = Client::connect(&addr.to_string()).expect("daemon accepts connections");
    let status = client.status().expect("daemon answers status");
    assert!(!status.draining);
}

#[test]
fn malformed_json_gets_typed_error_and_connection_survives() {
    let (addr, handle) = start_server(None);
    let mut stream = raw_connect(addr);
    let mut reader = FrameReader::new();

    // Valid frame, garbage payload: typed error, connection stays.
    stream
        .write_all(&frame_bytes("this is not json"))
        .expect("write");
    match read_response(&mut reader, &mut stream) {
        Response::Error { message } => assert!(message.contains("malformed")),
        other => panic!("expected Error, got {other:?}"),
    }

    // Unknown type and bad version: same story.
    for payload in [
        "{\"v\":1,\"type\":\"warp\"}",
        "{\"v\":99,\"type\":\"status\"}",
        "{}",
    ] {
        stream.write_all(&frame_bytes(payload)).expect("write");
        assert!(matches!(
            read_response(&mut reader, &mut stream),
            Response::Error { .. }
        ));
    }

    // The *same connection* still serves real requests afterwards.
    stream
        .write_all(&frame_bytes(&Request::Status.encode()))
        .expect("write");
    match read_response(&mut reader, &mut stream) {
        Response::Status(s) => assert_eq!(s.protocol_errors, 4),
        other => panic!("expected Status, got {other:?}"),
    }

    drop(stream);
    Client::connect(&addr.to_string())
        .unwrap()
        .drain()
        .expect("drain");
    handle.join().expect("clean exit");
}

#[test]
fn oversized_length_prefix_is_rejected_without_allocation() {
    let (addr, handle) = start_server(None);
    let mut stream = raw_connect(addr);
    let mut reader = FrameReader::new();

    // Magic + a 4 GiB length declaration. The daemon must answer with a
    // typed error (it cannot resync, so it then hangs up) — and must
    // never try to allocate the declared bytes.
    let mut bytes = b"CCS1".to_vec();
    bytes.extend_from_slice(&u32::MAX.to_le_bytes());
    stream.write_all(&bytes).expect("write");
    match read_response(&mut reader, &mut stream) {
        Response::Error { message } => {
            assert!(message.contains("exceeds limit"), "{message}");
        }
        other => panic!("expected Error, got {other:?}"),
    }

    assert_alive(addr);
    Client::connect(&addr.to_string())
        .unwrap()
        .drain()
        .expect("drain");
    handle.join().expect("clean exit");
}

#[test]
fn partial_frames_across_many_writes_still_parse() {
    let (addr, handle) = start_server(None);
    let mut stream = raw_connect(addr);
    let mut reader = FrameReader::new();

    // Dribble a status request one byte at a time with pauses long
    // enough to hit the server's 100 ms read timeout repeatedly: the
    // partial frame must survive every timeout.
    let bytes = frame_bytes(&Request::Status.encode());
    for (i, b) in bytes.iter().enumerate() {
        stream.write_all(&[*b]).expect("write byte");
        if i % 7 == 0 {
            std::thread::sleep(Duration::from_millis(120));
        }
    }
    assert!(matches!(
        read_response(&mut reader, &mut stream),
        Response::Status(_)
    ));

    Client::connect(&addr.to_string())
        .unwrap()
        .drain()
        .expect("drain");
    handle.join().expect("clean exit");
}

#[test]
fn seeded_frame_fuzzing_never_kills_the_daemon() {
    let (addr, handle) = start_server(None);

    // Mutate both a control frame and a submission frame, every
    // mutation, several seeds. Any reply (or silent hangup) is
    // acceptable; a dead daemon is not.
    let victims = [
        frame_bytes(&Request::Status.encode()),
        frame_bytes(
            &Request::SubmitGrid {
                id: 1,
                cells: vec![sample_cell(1)],
            }
            .encode(),
        ),
    ];
    for victim in &victims {
        for mutation in ALL_FRAME_MUTATIONS {
            for seed in 0..5 {
                let mutated = mutate_frame(victim, mutation, seed);
                let mut stream = raw_connect(addr);
                stream.write_all(&mutated).expect("write");
                let _ = stream.shutdown(std::net::Shutdown::Write);
                // Drain whatever the daemon says until it hangs up (or
                // 20 s read timeout — far beyond any sane reply).
                let mut reader = FrameReader::new();
                while reader.read_frame(&mut stream).is_ok() {}
            }
        }
    }

    assert_alive(addr);
    Client::connect(&addr.to_string())
        .unwrap()
        .drain()
        .expect("drain");
    handle.join().expect("daemon survived the fuzz corpus");
}

#[test]
fn interleaved_clients_each_get_their_own_results() {
    let (addr, handle) = start_server(None);

    // Four clients submit different overlapping grids concurrently over
    // their own connections; each must get exactly its own cells back.
    let workers: Vec<_> = (0..4)
        .map(|k| {
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr.to_string()).expect("connect");
                let cells: Vec<WireCellSpec> =
                    (0..3).map(|i| sample_cell(1 + ((k + i) % 4))).collect();
                let outcome = client
                    .submit_grid_with_retry(&cells, 20, |_| {})
                    .expect("grid");
                assert_eq!(outcome.exit_code(), 0, "client {k}");
                assert!(outcome.is_complete(), "client {k}");
                // Deterministic evaluation: the same seed yields the
                // same digest for every client.
                outcome
                    .records
                    .into_iter()
                    .map(|r| r.unwrap())
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    let results: Vec<_> = workers.into_iter().map(|w| w.join().unwrap()).collect();
    for records in &results {
        for record in records {
            assert_eq!(record.status, "ok");
            // Every client that asked for this key saw the same bits.
            for other in &results {
                for o in other {
                    if o.key == record.key {
                        assert_eq!(o.digest, record.digest);
                        assert_eq!(o.cpi_bits, record.cpi_bits);
                    }
                }
            }
        }
    }

    Client::connect(&addr.to_string())
        .unwrap()
        .drain()
        .expect("drain");
    handle.join().expect("clean exit");
}

#[test]
fn killed_client_leaves_daemon_alive_and_journal_parseable() {
    let path = journal_path("killed-client");
    let (addr, handle) = start_server(Some(path.clone()));

    // Submit a grid and slam the connection shut without reading a
    // single reply — a client killed mid-request.
    {
        let mut stream = raw_connect(addr);
        let req = Request::SubmitGrid {
            id: 99,
            cells: (0..4).map(|k| sample_cell(50 + k)).collect(),
        };
        stream.write_all(&frame_bytes(&req.encode())).expect("write");
        // Drop without reading: the handler's writes will fail while
        // workers keep evaluating the admitted cells.
    }

    // The daemon survives and still serves other clients.
    assert_alive(addr);
    let mut client = Client::connect(&addr.to_string()).expect("connect");
    let outcome = client
        .submit_grid_with_retry(&[sample_cell(50)], 20, |_| {})
        .expect("grid after the kill");
    assert_eq!(outcome.exit_code(), 0);

    client.drain().expect("drain");
    handle.join().expect("clean exit");

    // The journal replays the whole story: started, the doomed
    // admission, every cell evaluated, drain, drained — with no
    // unparseable lines.
    let (events, skipped) = ccs_serve::load_journal(&path).expect("journal readable");
    std::fs::remove_file(&path).ok();
    assert_eq!(skipped, 0, "every journal line parses");
    assert!(matches!(events.first(), Some(JournalEvent::Started { .. })));
    assert!(matches!(events.last(), Some(JournalEvent::Drained { .. })));
    assert!(
        events
            .iter()
            .any(|e| matches!(e, JournalEvent::Admitted { id: 99, cells: 4, .. })),
        "the killed client's admission was journaled"
    );
    let done = events
        .iter()
        .filter(|e| matches!(e, JournalEvent::CellDone { .. }))
        .count();
    assert!(
        done >= 4,
        "admitted cells were evaluated despite the dead client (saw {done})"
    );
}

#[test]
fn slow_loris_partial_frame_is_timed_out_with_a_typed_error() {
    // A tight frame deadline so the test is quick; real configs default
    // to 10 s.
    let server = Server::bind(ServeConfig {
        workers: 1,
        queue_capacity: 8,
        cache_capacity: 8,
        frame_timeout: Duration::from_millis(300),
        ..ServeConfig::default()
    })
    .expect("bind loopback");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run().expect("serve until drain"));

    // Send half a frame and then just... hold the socket.
    let frame = frame_bytes(&Request::Status.encode());
    let mut stream = raw_connect(addr);
    stream.write_all(&frame[..frame.len() / 2]).expect("write");
    let mut reader = FrameReader::new();
    match read_response(&mut reader, &mut stream) {
        Response::Error { message } => {
            assert!(message.contains("timeout"), "typed timeout, got {message:?}")
        }
        other => panic!("expected a timeout error, got {other:?}"),
    }
    // After the error the daemon hangs up on the stalled connection…
    assert!(
        reader.read_frame(&mut stream).is_err(),
        "stalled connection is closed after the timeout reply"
    );
    // …but idle connections (no partial frame buffered) are NOT
    // reaped, and the daemon itself keeps serving.
    let idle = raw_connect(addr);
    std::thread::sleep(Duration::from_millis(500));
    assert_alive(addr);
    drop(idle);
    let mut client = Client::connect(&addr.to_string()).expect("connect");
    client.drain().expect("drain");
    handle.join().expect("clean exit");
}

#[test]
fn busy_retries_exhaust_into_a_typed_error() {
    use ccs_client::RetryPolicy;

    // A fake daemon that answers every frame with `busy`, forever.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().unwrap();
    let refuser = std::thread::spawn(move || {
        let Ok((mut stream, _)) = listener.accept() else {
            return;
        };
        let mut reader = FrameReader::new();
        while reader.read_frame(&mut stream).is_ok() {
            let reply = Response::Busy { retry_after_ms: 2 };
            if ccs_serve::write_frame(&mut stream, &reply.encode()).is_err() {
                break;
            }
        }
    });

    let mut client = Client::connect(&addr.to_string()).expect("connect");
    let policy = RetryPolicy {
        max_attempts: 4,
        base: Duration::from_millis(2),
        cap: Duration::from_millis(10),
        deadline: Some(Duration::from_secs(5)),
        seed: 7,
    };
    let started = std::time::Instant::now();
    let err = client
        .submit_grid_with_policy(&[sample_cell(1)], &policy, |_| {})
        .expect_err("a permanently busy daemon exhausts retries");
    match err {
        ccs_core::CcsError::RetriesExhausted {
            attempts,
            elapsed_ms,
            last,
        } => {
            assert_eq!(attempts, 4, "every allowed attempt was spent");
            assert!(last.contains("busy"), "the final refusal is carried: {last:?}");
            assert!(elapsed_ms <= 5_000, "the deadline bounds the episode");
        }
        other => panic!("expected RetriesExhausted, got {other:?}"),
    }
    // Three sleeps of ≥1 ms each happened between the four attempts.
    assert!(started.elapsed() >= Duration::from_millis(3));
    drop(client);
    refuser.join().expect("fake daemon exits");
}

#[test]
fn reply_deadline_turns_a_wedged_daemon_into_a_typed_timeout() {
    use ccs_verify::{ChaosProxy, ServeFault, ServeFaultPlan};

    let (addr, handle) = start_server(None);
    // First connection through the proxy wedges; later ones pass.
    let plan = ServeFaultPlan::scripted(vec![ServeFault::HangAccept]);
    let proxy = ChaosProxy::start(&addr.to_string(), plan).expect("proxy");

    let client = Client::connect(&proxy.addr()).expect("connect via proxy");
    let mut client = client.with_reply_timeout(Duration::from_millis(250));
    let err = client
        .submit_cell(&sample_cell(1))
        .expect_err("a wedged daemon must not hang the client");
    assert!(err.is_timeout(), "typed timeout, got {err:?}");

    // The daemon behind the proxy never saw that connection and is fine.
    assert_alive(addr);
    let mut direct = Client::connect(&addr.to_string()).expect("connect direct");
    direct.drain().expect("drain");
    drop(proxy);
    handle.join().expect("clean exit");
}
