//! Cross-crate integration tests: trace generation → timing simulation →
//! critical-path analysis → predictors → policies, on every machine
//! layout.

use clustercrit::core::{run_cell, PolicyKind, RunOptions};
use clustercrit::critpath::{analyze, analyze_consumers, CostCategory};
use clustercrit::isa::{ClusterLayout, MachineConfig};
use clustercrit::listsched::{list_schedule, ListScheduleConfig};
use clustercrit::sim::{policies::LeastLoaded, simulate, ReadyBound};
use clustercrit::trace::Benchmark;

const LEN: usize = 2_500;

#[test]
fn every_benchmark_runs_on_every_layout_under_every_policy() {
    for bench in Benchmark::ALL {
        let trace = bench.generate(1, LEN);
        for layout in ClusterLayout::ALL {
            let machine = MachineConfig::micro05_baseline().with_layout(layout);
            for kind in [
                PolicyKind::Dependence,
                PolicyKind::Focused,
                PolicyKind::FocusedLoc,
                PolicyKind::StallOverSteer,
                PolicyKind::Proactive,
            ] {
                let cell = run_cell(&machine, &trace, kind, &RunOptions::default())
                    .unwrap_or_else(|e| panic!("{bench} {layout} {kind:?}: {e}"));
                assert!(cell.cpi() > 0.1, "{bench} {layout} {kind:?}");
                assert_eq!(
                    cell.analysis.breakdown.total(),
                    cell.result.cycles,
                    "{bench} {layout} {kind:?}: attribution must be exact"
                );
            }
        }
    }
}

#[test]
fn monolithic_never_pays_clustering_penalties() {
    for bench in [Benchmark::Vpr, Benchmark::Gzip, Benchmark::Mcf] {
        let trace = bench.generate(2, LEN);
        let machine = MachineConfig::micro05_baseline();
        let cell = run_cell(&machine, &trace, PolicyKind::FocusedLoc, &RunOptions::default())
            .unwrap();
        assert_eq!(cell.analysis.breakdown.get(CostCategory::FwdDelay), 0);
        assert_eq!(cell.result.global_values, 0);
        for rec in &cell.result.records {
            assert!(matches!(
                rec.ready_bound,
                ReadyBound::Dispatch | ReadyBound::Operand { fwd: 0, .. }
            ));
        }
    }
}

#[test]
fn clustered_cpi_dominates_monolithic_cpi() {
    // No steering policy can make the clustered machine *faster* than the
    // monolithic one by more than scheduling noise.
    for bench in [Benchmark::Gap, Benchmark::Gcc] {
        let trace = bench.generate(3, LEN);
        let mono = run_cell(
            &MachineConfig::micro05_baseline(),
            &trace,
            PolicyKind::FocusedLoc,
            &RunOptions::default(),
        )
        .unwrap();
        for layout in ClusterLayout::CLUSTERED {
            let machine = MachineConfig::micro05_baseline().with_layout(layout);
            let cell =
                run_cell(&machine, &trace, PolicyKind::FocusedLoc, &RunOptions::default())
                    .unwrap();
            assert!(
                cell.cpi() >= mono.cpi() * 0.99,
                "{bench} {layout}: clustered {} vs mono {}",
                cell.cpi(),
                mono.cpi()
            );
        }
    }
}

#[test]
fn idealized_penalty_is_below_runtime_policy_penalty() {
    // The paper's §2 argument: the *normalized* clustering penalty of the
    // idealized schedule (Figure 2) is far below what runtime policies pay
    // (Figure 4). Absolute spans are conservative (footnote 2: regions are
    // barriers), so only the normalized comparison is meaningful.
    for bench in [Benchmark::Vpr, Benchmark::Gzip] {
        let trace = bench.generate(4, 6_000);
        let mono_cfg = MachineConfig::micro05_baseline();
        let mono = simulate(&mono_cfg, &trace, &mut LeastLoaded).unwrap();
        let ideal_mono = list_schedule(&trace, &mono, &ListScheduleConfig::new(mono_cfg));
        let mono_cell =
            run_cell(&mono_cfg, &trace, PolicyKind::Focused, &RunOptions::default()).unwrap();
        {
            let layout = ClusterLayout::C8x1w;
            let machine = mono_cfg.with_layout(layout);
            let ideal = list_schedule(&trace, &mono, &ListScheduleConfig::new(machine));
            let ideal_norm = ideal.cycles as f64 / ideal_mono.cycles as f64;
            let cell =
                run_cell(&machine, &trace, PolicyKind::Focused, &RunOptions::default()).unwrap();
            let runtime_norm = cell.normalized_cpi(&mono_cell);
            assert!(
                ideal_norm < runtime_norm,
                "{bench} {layout}: ideal penalty {ideal_norm:.3} vs focused {runtime_norm:.3}"
            );
        }
    }
}

#[test]
fn critical_set_agrees_between_passes() {
    // Re-analyzing the same result is deterministic and self-consistent.
    let trace = Benchmark::Twolf.generate(5, LEN);
    let machine = MachineConfig::micro05_baseline().with_layout(ClusterLayout::C4x2w);
    let cell = run_cell(&machine, &trace, PolicyKind::Focused, &RunOptions::default()).unwrap();
    let again = analyze(&trace, &cell.result);
    assert_eq!(cell.analysis.e_critical, again.e_critical);
    assert_eq!(cell.analysis.breakdown, again.breakdown);
    // Consumer analysis runs off the same artifacts.
    let consumers = analyze_consumers(&trace, &cell.result, &again.e_critical);
    assert!(consumers.values > 0);
}

#[test]
fn policy_ladder_monotone_on_execute_critical_code() {
    // gzip (serial chains) is the showcase: every ladder step should be at
    // least as good as the previous on the 8-cluster machine.
    let trace = Benchmark::Gzip.generate(1, 6_000);
    let machine = MachineConfig::micro05_baseline().with_layout(ClusterLayout::C8x1w);
    let opts = RunOptions::default().with_epochs(3);
    let focused = run_cell(&machine, &trace, PolicyKind::Focused, &opts).unwrap();
    let loc = run_cell(&machine, &trace, PolicyKind::FocusedLoc, &opts).unwrap();
    let stall = run_cell(&machine, &trace, PolicyKind::StallOverSteer, &opts).unwrap();
    assert!(loc.cpi() <= focused.cpi() * 1.02, "{} vs {}", loc.cpi(), focused.cpi());
    assert!(stall.cpi() < loc.cpi(), "{} vs {}", stall.cpi(), loc.cpi());
    // Stall-over-steer should approach monolithic performance on gzip.
    let mono = run_cell(
        &MachineConfig::micro05_baseline(),
        &trace,
        PolicyKind::FocusedLoc,
        &opts,
    )
    .unwrap();
    assert!(
        stall.normalized_cpi(&mono) < 1.10,
        "normalized {}",
        stall.normalized_cpi(&mono)
    );
}

#[test]
fn forwarding_latency_scales_the_penalty() {
    let trace = Benchmark::Gap.generate(6, LEN);
    let mut cpis = Vec::new();
    for latency in [1, 2, 4] {
        let machine = MachineConfig::micro05_baseline()
            .with_layout(ClusterLayout::C8x1w)
            .with_forward_latency(latency);
        let cell =
            run_cell(&machine, &trace, PolicyKind::Focused, &RunOptions::default()).unwrap();
        cpis.push(cell.cpi());
    }
    assert!(cpis[0] <= cpis[1] + 1e-9, "{cpis:?}");
    assert!(cpis[1] <= cpis[2] + 1e-9, "{cpis:?}");
}
