//! The scenario-manifest fuzzing campaign: seeded random valid
//! `ccs-scenario` workloads checked for manifest round-trip stability
//! and trace validity, then driven through the full engine-vs-oracle
//! differential pipeline (`ccs_verify::run_trace_case`).
//!
//! The case budget defaults to 120 and is tunable via
//! `CCS_SCENARIO_CASES` (CI sets it explicitly; see `ci.sh`). Cases are
//! deterministic by id, so a reported failure reproduces exactly.

use ccs_core::parallel_map;
use ccs_verify::{fuzz_scenario, run_scenario_case, CaseOutcome};

fn case_budget() -> usize {
    std::env::var("CCS_SCENARIO_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(120)
}

#[test]
fn fuzzed_scenarios_round_trip_and_agree_with_the_oracle() {
    // At least 28 cases guarantees full layout × policy coverage (the
    // machine axes cycle with coprime periods 4 and 7).
    let ids: Vec<usize> = (0..case_budget().max(28)).collect();

    // The generated population must actually exercise the DSL's
    // distinguishing features, or the campaign fuzzes a corner.
    let scenarios: Vec<_> = ids.iter().map(|&id| fuzz_scenario(id)).collect();
    assert!(scenarios.iter().any(|s| s.thread_count() > 1), "no SMT case");
    assert!(scenarios.iter().any(|s| s.phases.len() > 1), "no multi-phase case");
    assert!(scenarios.iter().any(|s| s.interleave.is_some()), "no explicit interleave");

    let threads = std::thread::available_parallelism().map_or(1, usize::from);
    let outcomes = parallel_map(&ids, threads, |&id| run_scenario_case(id));
    let mut failures: Vec<String> = Vec::new();
    for outcome in outcomes {
        match outcome {
            Ok(CaseOutcome::Agreed) => {}
            Ok(CaseOutcome::Diverged(lines)) => failures.push(lines.join("\n  ")),
            Err(infra) => failures.push(infra),
        }
    }
    assert!(
        failures.is_empty(),
        "{} of {} scenario fuzz cases failed:\n{}",
        failures.len(),
        ids.len(),
        failures.join("\n")
    );
}
