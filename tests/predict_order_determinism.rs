//! Best-first (`--predict-order`) campaign ordering is pure metadata:
//! sorting pending cells by predicted cost changes the evaluation
//! *order* and annotates manifest records with the predicted envelope,
//! but every simulated bit — cycle counts, CPI bit patterns, schedule
//! digests, cell keys — must be identical to an unordered run of the
//! same campaign. Mirrors `grid_determinism.rs` for the checkpointed
//! campaign path.

use ccs_core::checkpoint::{run_campaign, CampaignOptions, CheckpointRecord};
use ccs_core::{CellSpec, PolicyKind, Resilience, RunOptions};
use ccs_isa::{ClusterLayout, MachineConfig};
use ccs_trace::Benchmark;
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("ccs-predict-order-{name}-{}", std::process::id()));
    p
}

/// A small grid with deliberately ascending trace lengths, so LPT
/// ordering (longest predicted first) must *reverse* the input order —
/// the test would be vacuous if the sorted order happened to equal the
/// input order.
fn specs() -> Vec<CellSpec> {
    let base = MachineConfig::micro05_baseline();
    let options = RunOptions::default().with_epochs(1);
    let mut specs = Vec::new();
    for (i, (bench, policy)) in [
        (Benchmark::Gzip, PolicyKind::Focused),
        (Benchmark::Vpr, PolicyKind::Dependence),
        (Benchmark::Mcf, PolicyKind::Focused),
        (Benchmark::Gzip, PolicyKind::StallOverSteer),
    ]
    .into_iter()
    .enumerate()
    {
        specs.push(CellSpec::new(
            base.with_layout(ClusterLayout::C4x2w),
            bench,
            1,
            600 + 400 * i,
            policy,
            options,
        ));
    }
    specs
}

/// Reads the manifest's record lines back, in file order.
fn manifest_records(path: &PathBuf) -> Vec<CheckpointRecord> {
    let text = std::fs::read_to_string(path).expect("manifest readable");
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .filter_map(CheckpointRecord::from_json_line)
        .collect()
}

#[test]
fn predict_ordering_changes_no_simulated_bits() {
    let specs = specs();
    let plain_path = tmp("plain");
    let ordered_path = tmp("ordered");

    // threads=1 makes manifest line order equal evaluation order, so
    // the LPT reordering itself is observable below.
    let plain = run_campaign(
        &specs,
        1,
        &Resilience::default(),
        &CampaignOptions::new(&plain_path),
    )
    .expect("plain campaign");
    let ordered = run_campaign(
        &specs,
        1,
        &Resilience::default(),
        &CampaignOptions::new(&ordered_path).with_predict_order(true),
    )
    .expect("ordered campaign");
    assert_eq!(plain.exit_code(), 0, "{}", plain.summary());
    assert_eq!(ordered.exit_code(), 0, "{}", ordered.summary());

    // Per input index: every simulated bit identical; predicted fields
    // present only on the ordered run's records.
    for (i, (p, o)) in plain.records.iter().zip(&ordered.records).enumerate() {
        let p = p.as_ref().expect("plain record");
        let o = o.as_ref().expect("ordered record");
        assert_eq!(p.key, o.key, "cell {i}: key");
        assert_eq!(p.status, o.status, "cell {i}: status");
        assert_eq!(p.cycles, o.cycles, "cell {i}: cycles");
        assert_eq!(p.cpi_bits, o.cpi_bits, "cell {i}: CPI bits");
        assert_eq!(p.digest, o.digest, "cell {i}: schedule digest");
        assert_eq!(p.metrics_digest, o.metrics_digest, "cell {i}: metrics digest");
        assert!(
            p.predicted_lo.is_none() && p.predicted_hi.is_none(),
            "cell {i}: unordered runs carry no prediction metadata"
        );
        let lo = o.predicted_lo.expect("ordered record has predicted_lo");
        let hi = o.predicted_hi.expect("ordered record has predicted_hi");
        assert!(
            lo <= o.cycles && o.cycles <= hi,
            "cell {i}: manifest envelope [{lo}, {hi}] must contain {} cycles",
            o.cycles
        );
    }

    // The manifests agree record-for-record on simulated content (same
    // key set, same bits), while their *line order* differs: ascending
    // trace lengths in, therefore descending predicted cost reverses
    // the evaluation order.
    let plain_lines = manifest_records(&plain_path);
    let ordered_lines = manifest_records(&ordered_path);
    std::fs::remove_file(&plain_path).ok();
    std::fs::remove_file(&ordered_path).ok();
    assert_eq!(plain_lines.len(), specs.len());
    assert_eq!(ordered_lines.len(), specs.len());
    let plain_order: Vec<&str> = plain_lines.iter().map(|r| r.key.as_str()).collect();
    let ordered_order: Vec<&str> = ordered_lines.iter().map(|r| r.key.as_str()).collect();
    assert_ne!(
        plain_order, ordered_order,
        "LPT must actually reorder this ascending-cost grid"
    );
    let predicted: Vec<u64> = ordered_lines
        .iter()
        .map(|r| r.predicted_lo.expect("ordered manifest line has predicted_lo"))
        .collect();
    assert!(
        predicted.windows(2).all(|w| w[0] >= w[1]),
        "ordered manifest must be written longest-predicted-first: {predicted:?}"
    );
    for o in &ordered_lines {
        let p = plain_lines
            .iter()
            .find(|p| p.key == o.key)
            .expect("same key set in both manifests");
        assert_eq!(p.cycles, o.cycles, "{}: manifest cycles", o.key);
        assert_eq!(p.cpi_bits, o.cpi_bits, "{}: manifest CPI bits", o.key);
        assert_eq!(p.digest, o.digest, "{}: manifest digest", o.key);
    }
}
