//! Seeded stress test for the engine's event-driven wakeup machinery.
//!
//! The trace below is engineered for the two regimes the workload
//! models rarely reach:
//!
//! * **Same-cycle completion floods** — wide blocks of independent ALU
//!   ops all complete on the same cycle, so one wakeup bucket drains
//!   dozens of entries at once and their issue order is decided purely
//!   by the (priority, index) tie-break.
//! * **Wakeup-horizon overflow** — on a 4-wide cluster with a
//!   broadcast bandwidth of 1, completions outpace the broadcast port
//!   and the backlog pushes visible times thousands of cycles into the
//!   future, far past the engine's 512-cycle calendar ring, forcing
//!   entries through the overflow heap and back onto the wheel.
//!
//! The engine must stay bit-identical to the naive reference oracle,
//! pass the structural invariant checker, and reproduce itself exactly
//! across repeated runs.

use clustercrit::isa::{
    ArchReg, BranchInfo, ClusterLayout, FrontEndConfig, MachineConfig, MemoryConfig, OpClass, Pc,
    StaticInst,
};
use clustercrit::sim::{check_invariants, policies::LeastLoaded, simulate};
use clustercrit::trace::{Trace, TraceBuilder};
use clustercrit::verify::{diff_results, reference_simulate};

/// Deterministic xorshift; the whole trace is a pure function of `seed`.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Builds the adversarial trace: long stretches of independent bursts
/// (same-cycle completions, ever-growing broadcast backlog) punctuated
/// by small clumps of consumers that sample the backlog, plus
/// cold-region loads and divides (long latencies landing in far wakeup
/// buckets) and source-free branches.
fn stress_trace(seed: u64, len: usize) -> Trace {
    let mut rng = Lcg(seed | 1);
    let mut b = TraceBuilder::new();
    while b.len() < len {
        // A long pure-producer stretch: independent bursts issue at full
        // width and complete in same-cycle waves, and every completion
        // claims one of the scarce broadcast slots. Nothing in the
        // stretch waits on a value, so nothing throttles issue — the
        // egress backlog (claimed slots beyond "now") grows
        // monotonically across the stretch and across the whole trace.
        let stretch = b.len() + 2_800;
        while b.len() < stretch.min(len) {
            let pc = Pc::new(0x40_0000 + 4 * rng.below(64));
            let width = 8 + rng.below(24) as usize;
            for k in 0..width {
                let dst = ArchReg::int(1 + ((k as u64 + rng.below(4)) % 30) as u16);
                b.push_simple(StaticInst::new(pc, OpClass::IntAlu).with_dst(dst));
            }
            // Occasional long latencies (cold load, divide) land
            // completions in far wakeup buckets on their own.
            if rng.below(8) == 0 {
                let dst = ArchReg::fp(1 + rng.below(8) as u16);
                if rng.below(2) == 0 {
                    b.push_mem(
                        StaticInst::new(pc, OpClass::Load).with_dst(dst),
                        0x100_0000 + 64 * rng.below(1 << 16),
                    );
                } else {
                    b.push_simple(
                        StaticInst::new(pc, OpClass::FpDiv)
                            .with_srcs([Some(dst), None])
                            .with_dst(dst),
                    );
                }
            }
            // A source-free conditional branch keeps fetch realistic.
            // Crucially it reads no burst register: a branch consuming a
            // backlogged value would issue (and, mispredicted, redirect
            // fetch) only after the backlog drains, stalling the front
            // end for the whole backlog and resetting the very regime
            // this trace builds up.
            if rng.below(8) == 0 {
                b.push_branch(
                    StaticInst::new(pc, OpClass::Branch),
                    BranchInfo::conditional(rng.below(3) == 0),
                );
            }
        }
        // A small clump of independent consumers samples the backlog:
        // each reads a recent register, so a cross-cluster consumer's
        // value becomes visible only at its producer's broadcast slot —
        // by now far past the wakeup horizon. The clump is small and
        // its members independent, so it observes the backlog without
        // clogging the windows and throttling it away (a dense consumer
        // stream would cap the backlog near the window size).
        let pc = Pc::new(0x40_0000 + 4 * rng.below(64));
        for k in 0..16u16 {
            b.push_simple(
                StaticInst::new(pc, OpClass::IntAlu)
                    .with_srcs([Some(ArchReg::int(1 + (k % 30))), None])
                    .with_dst(ArchReg::int(31)),
            );
        }
    }
    b.finish()
}

#[test]
fn same_cycle_floods_and_horizon_overflow_stay_bit_identical() {
    let trace = stress_trace(0x57E5_5EED, 40_000);
    // 4-wide clusters with a single broadcast port per cluster:
    // completions outrun the port and the egress backlog grows. The
    // paper-baseline 256-entry ROB would cap that backlog at ~256
    // cycles (in-order commit throttles issue once a blocked consumer
    // reaches the ROB head), so this machine deepens the ROB to 8192 —
    // the backlog can then reach thousands of cycles, far beyond the
    // engine's 512-cycle wakeup calendar.
    let config = MachineConfig::build(
        ClusterLayout::C2x4w,
        FrontEndConfig::default(),
        128,
        8192,
        8,
        8,
        4,
        4,
        1,
        MemoryConfig::default(),
    )
    .unwrap()
    .with_forward_bandwidth(Some(1));

    let engine = simulate(&config, &trace, &mut LeastLoaded).unwrap();
    let oracle = reference_simulate(&config, &trace, &mut LeastLoaded).unwrap();
    let problems = diff_results(&engine, &oracle);
    assert!(
        problems.is_empty(),
        "engine diverged from oracle under wakeup stress:\n{}",
        problems.join("\n")
    );
    let violations = check_invariants(&config, &trace, &engine);
    assert!(violations.is_empty(), "invariant violations: {violations:?}");

    // The backlog must actually have forced the far-future regime the
    // test exists for — otherwise it silently stopped testing overflow.
    // (At seed 0x57E5_5EED the longest ready-wait is ~6 300 cycles,
    // twelve times the horizon.)
    let horizon_crossed = engine
        .records
        .iter()
        .filter(|r| r.ready.saturating_sub(r.dispatch) > 512)
        .count();
    assert!(
        horizon_crossed > 100,
        "only {horizon_crossed} instructions waited past the wakeup \
         horizon; the stress trace no longer exercises the overflow heap"
    );

    // Determinism: an identical rerun reproduces the schedule bit for bit.
    let again = simulate(&config, &trace, &mut LeastLoaded).unwrap();
    assert_eq!(engine.cycles, again.cycles);
    assert_eq!(engine.records, again.records);
}
