//! Property-based tests: random traces and configurations must preserve
//! the simulator's and analyses' core invariants.

use clustercrit::critpath::analyze;
use clustercrit::isa::{
    ArchReg, BranchInfo, ClusterLayout, MachineConfig, OpClass, Pc, StaticInst,
};
use clustercrit::sim::{
    policies::{LeastLoaded, RoundRobin},
    simulate, SteeringPolicy,
};
use clustercrit::trace::{Trace, TraceBuilder};
use proptest::prelude::*;

/// A generated instruction blueprint: op class + small operand indices.
#[derive(Debug, Clone)]
struct InstSpec {
    op_sel: u8,
    src1: Option<u8>,
    src2: Option<u8>,
    dst: u8,
    addr: u32,
    taken: bool,
    pc_slot: u8,
}

fn inst_spec() -> impl Strategy<Value = InstSpec> {
    (
        0u8..6,
        proptest::option::of(0u8..16),
        proptest::option::of(0u8..16),
        0u8..16,
        any::<u32>(),
        any::<bool>(),
        0u8..32,
    )
        .prop_map(|(op_sel, src1, src2, dst, addr, taken, pc_slot)| InstSpec {
            op_sel,
            src1,
            src2,
            dst,
            addr,
            taken,
            pc_slot,
        })
}

/// Materializes blueprints into a well-formed trace.
fn build_trace(specs: &[InstSpec]) -> Trace {
    let mut b = TraceBuilder::new();
    for s in specs {
        let pc = Pc::new(0x1000 + 4 * s.pc_slot as u64);
        let reg = |n: u8| ArchReg::int(1 + (n % 30) as u16);
        let srcs = [s.src1.map(reg), s.src2.map(reg)];
        match s.op_sel {
            0 | 1 => {
                // Integer ALU with 0-2 sources.
                b.push_simple(
                    StaticInst::new(pc, OpClass::IntAlu)
                        .with_srcs(srcs)
                        .with_dst(reg(s.dst)),
                );
            }
            2 => {
                b.push_mem(
                    StaticInst::new(pc, OpClass::Load)
                        .with_srcs(srcs)
                        .with_dst(reg(s.dst)),
                    s.addr as u64,
                );
            }
            3 => {
                b.push_mem(
                    StaticInst::new(pc, OpClass::Store).with_srcs(srcs),
                    s.addr as u64,
                );
            }
            4 => {
                b.push_branch(
                    StaticInst::new(pc, OpClass::Branch).with_srcs(srcs),
                    BranchInfo::conditional(s.taken),
                );
            }
            _ => {
                b.push_simple(
                    StaticInst::new(pc, OpClass::FpMul)
                        .with_srcs(srcs)
                        .with_dst(ArchReg::fp((s.dst % 30) as u16)),
                );
            }
        }
    }
    b.finish()
}

fn any_layout() -> impl Strategy<Value = ClusterLayout> {
    prop_oneof![
        Just(ClusterLayout::C1x8w),
        Just(ClusterLayout::C2x4w),
        Just(ClusterLayout::C4x2w),
        Just(ClusterLayout::C8x1w),
    ]
}

fn check_invariants(trace: &Trace, layout: ClusterLayout, policy: &mut dyn SteeringPolicy) {
    let cfg = MachineConfig::micro05_baseline().with_layout(layout);
    let result = simulate(&cfg, trace, policy).expect("baseline policies never deadlock");

    // Event ordering per instruction.
    for (i, rec) in result.records.iter().enumerate() {
        assert!(rec.fetch + 13 <= rec.dispatch, "inst {i}");
        assert!(rec.dispatch < rec.ready, "inst {i}");
        assert!(rec.ready <= rec.issue, "inst {i}");
        assert!(rec.issue < rec.complete, "inst {i}");
        assert!(rec.complete < rec.commit, "inst {i}");
        assert!((rec.cluster as usize) < cfg.cluster_count(), "inst {i}");
    }
    // In-order dispatch and commit.
    for w in result.records.windows(2) {
        assert!(w[0].dispatch <= w[1].dispatch);
        assert!(w[0].commit <= w[1].commit);
    }
    // Dataflow respected, including forwarding.
    for (i, inst) in trace.iter() {
        for p in inst.producers() {
            let pr = &result.records[p.index()];
            let cr = &result.records[i.index()];
            let fwd = cfg.forwarding_between(pr.cluster as usize, cr.cluster as usize);
            assert!(
                cr.issue >= pr.complete + fwd as u64,
                "inst {i} used operand from {p} too early"
            );
        }
    }
    // Exact critical-path attribution.
    let analysis = analyze(trace, &result);
    assert_eq!(analysis.breakdown.total(), result.cycles);
    // The last instruction's execute node is always critical... only when
    // its commit is complete-bound; weaker invariant: some instruction is
    // E-critical for non-empty traces.
    if !trace.is_empty() {
        assert!(analysis.critical_count() >= 1);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_traces_respect_invariants(
        specs in proptest::collection::vec(inst_spec(), 1..200),
        layout in any_layout(),
        round_robin in any::<bool>(),
    ) {
        let trace = build_trace(&specs);
        trace.validate().unwrap();
        if round_robin {
            check_invariants(&trace, layout, &mut RoundRobin::default());
        } else {
            check_invariants(&trace, layout, &mut LeastLoaded);
        }
    }

    #[test]
    fn simulation_is_deterministic(
        specs in proptest::collection::vec(inst_spec(), 1..120),
        layout in any_layout(),
    ) {
        let trace = build_trace(&specs);
        let cfg = MachineConfig::micro05_baseline().with_layout(layout);
        let a = simulate(&cfg, &trace, &mut LeastLoaded).unwrap();
        let b = simulate(&cfg, &trace, &mut LeastLoaded).unwrap();
        prop_assert_eq!(a.cycles, b.cycles);
        prop_assert_eq!(a.records, b.records);
    }

    #[test]
    fn cycles_scale_sanely_with_trace_length(
        specs in proptest::collection::vec(inst_spec(), 8..150),
    ) {
        let trace = build_trace(&specs);
        let cfg = MachineConfig::micro05_baseline();
        let result = simulate(&cfg, &trace, &mut LeastLoaded).unwrap();
        // Lower bound: pipeline depth. Upper bound: worst case fully
        // serial L2-missing loads plus mispredict refills.
        prop_assert!(result.cycles >= 14);
        prop_assert!(result.cycles <= 64 * trace.len() as u64 + 100);
    }

    #[test]
    fn trace_builder_dependences_point_backwards(
        specs in proptest::collection::vec(inst_spec(), 0..300),
    ) {
        let trace = build_trace(&specs);
        prop_assert!(trace.validate().is_ok());
        for (i, inst) in trace.iter() {
            for p in inst.producers() {
                prop_assert!(p.index() < i.index());
            }
        }
    }
}

// ---------------------------------------------------------------------------
// List-scheduler legality: the idealized schedule must itself respect the
// machine's constraints within every region.
// ---------------------------------------------------------------------------

mod listsched_legality {
    use super::*;
    use clustercrit::isa::PortKind;
    use clustercrit::listsched::{list_schedule, ListScheduleConfig};
    use std::collections::HashMap;

    fn check_schedule_legality(trace: &Trace, layout: ClusterLayout) {
        let mono_cfg = MachineConfig::micro05_baseline();
        let mono = simulate(&mono_cfg, trace, &mut LeastLoaded).unwrap();
        let machine = mono_cfg.with_layout(layout);
        let r = list_schedule(
            trace,
            &mono,
            &ListScheduleConfig::new(machine).with_placements(),
        );
        let placements = r.placements.as_ref().expect("placements recorded");
        assert_eq!(placements.len(), trace.len());

        // Per (region, cycle, cluster): width and port usage.
        let mut width: HashMap<(u32, u64, u32), usize> = HashMap::new();
        let mut ports: HashMap<(u32, u64, u32, u8), usize> = HashMap::new();
        for (i, p) in placements.iter().enumerate() {
            assert!((p.cluster as usize) < machine.cluster_count());
            assert!(p.finish > p.issue, "inst {i} has zero latency");
            *width.entry((p.region, p.issue, p.cluster)).or_insert(0) += 1;
            let kind = match trace.as_slice()[i].op().port() {
                PortKind::Int => 0u8,
                PortKind::Fp => 1,
                PortKind::Mem => 2,
            };
            *ports
                .entry((p.region, p.issue, p.cluster, kind))
                .or_insert(0) += 1;
        }
        for (&(_, _, _), &w) in &width {
            assert!(w <= machine.cluster.issue_width, "width violated: {w}");
        }
        for (&(_, _, _, kind), &u) in &ports {
            let cap = match kind {
                0 => machine.cluster.int_ports,
                1 => machine.cluster.fp_ports,
                _ => machine.cluster.mem_ports,
            };
            assert!(u <= cap, "port {kind} violated: {u} > {cap}");
        }
        // Dataflow + forwarding within regions.
        for (i, inst) in trace.iter() {
            let pi = &placements[i.index()];
            for d in inst.producers() {
                let pd = &placements[d.index()];
                if pd.region != pi.region {
                    continue; // regions are barriers
                }
                let fwd = machine.forwarding_between(pd.cluster as usize, pi.cluster as usize);
                assert!(
                    pi.issue >= pd.finish + fwd as u64,
                    "inst {i} issued before operand from {d} was visible"
                );
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn idealized_schedules_are_legal(
            specs in proptest::collection::vec(super::inst_spec(), 8..250),
            layout in super::any_layout(),
        ) {
            let trace = super::build_trace(&specs);
            check_schedule_legality(&trace, layout);
        }
    }

    #[test]
    fn benchmark_schedules_are_legal() {
        use clustercrit::trace::Benchmark;
        for bench in [Benchmark::Vpr, Benchmark::Mcf] {
            let trace = bench.generate(1, 2_000);
            check_schedule_legality(&trace, ClusterLayout::C8x1w);
            check_schedule_legality(&trace, ClusterLayout::C2x4w);
        }
    }
}
