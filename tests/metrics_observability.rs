//! Acceptance tests for the observability layer:
//!
//! * metrics collection is a pure observer — schedules and results are
//!   bit-identical with metrics on or off, at the engine level and at
//!   the experiment (`run_cell`) level;
//! * per-cell metrics aggregate deterministically — the folded
//!   `SimMetrics` (and its digest) are bit-identical between 1 and 8
//!   grid threads;
//! * the CPI stack derived from the counters reconciles exactly, per
//!   category, with the critical-path breakdown on a checked smoke grid;
//! * the sampled cycle-trace ring stays bounded and deterministic when
//!   fed by a real run.

use clustercrit::core::{
    aggregate_breakdown, aggregate_metrics, run_cell, GridRequest, LocMode, PaperPolicy,
    PolicyKind, PredictorBank, Resilience, RunOptions,
};
use clustercrit::critpath::observed_cpi_stack;
use clustercrit::isa::{ClusterLayout, MachineConfig};
use clustercrit::obs::{CycleTraceRing, RunObserver};
use clustercrit::sim::{simulate_budgeted, simulate_observed, SimBudget};
use clustercrit::trace::Benchmark;

fn machine() -> MachineConfig {
    MachineConfig::micro05_baseline().with_layout(ClusterLayout::C4x2w)
}

#[test]
fn engine_schedule_is_bit_identical_with_metrics_on() {
    let config = machine();
    let trace = Benchmark::Vpr.generate(3, 3_000);
    let budget = SimBudget::default();

    let mut plain_policy = PaperPolicy::new(PolicyKind::Focused, PredictorBank::new(LocMode::Quantized16, 7));
    let plain = simulate_budgeted(&config, &trace, &mut plain_policy, &budget).unwrap();

    let mut observed_policy = PaperPolicy::new(PolicyKind::Focused, PredictorBank::new(LocMode::Quantized16, 7));
    let mut observer = RunObserver::for_machine(config.cluster_count());
    let observed =
        simulate_observed(&config, &trace, &mut observed_policy, &budget, &mut observer).unwrap();

    assert_eq!(
        format!("{plain:?}"),
        format!("{observed:?}"),
        "observing a run must not change its schedule"
    );
    let metrics = observer.into_metrics();
    assert_eq!(metrics.cycles, observed.cycles);
    assert_eq!(metrics.instructions, observed.records.len() as u64);
}

#[test]
fn run_cell_results_are_bit_identical_with_metrics_on() {
    let config = machine();
    let trace = Benchmark::Gzip.generate(1, 3_000);
    let base = RunOptions::default().with_epochs(2);

    let off = run_cell(&config, &trace, PolicyKind::FocusedLoc, &base).unwrap();
    let on = run_cell(&config, &trace, PolicyKind::FocusedLoc, &base.with_metrics(true)).unwrap();

    assert!(off.metrics.is_none(), "metrics off leaves no payload");
    let metrics = on.metrics.as_ref().expect("metrics on yields a payload");
    assert_eq!(
        format!("{:?}", off.result),
        format!("{:?}", on.result),
        "metrics must be a write-only observer"
    );
    assert_eq!(off.cpi().to_bits(), on.cpi().to_bits());
    assert_eq!(metrics.cycles, on.result.cycles);
}

#[test]
fn metrics_aggregate_identically_across_thread_counts() {
    let specs = GridRequest::new(MachineConfig::micro05_baseline(), 2_000)
        .benchmarks([Benchmark::Vpr, Benchmark::Gzip, Benchmark::Mcf])
        .layouts([ClusterLayout::C2x4w, ClusterLayout::C8x1w])
        .policies([PolicyKind::Focused])
        .options(RunOptions::default().with_epochs(1).with_metrics(true))
        .build();
    let res = Resilience::default();
    let serial = clustercrit::core::run_grid_resilient(&specs, 1, &res);
    let parallel = clustercrit::core::run_grid_resilient(&specs, 8, &res);

    let a = aggregate_metrics(&serial).expect("serial grid has metrics");
    let b = aggregate_metrics(&parallel).expect("parallel grid has metrics");
    assert_eq!(a, b, "aggregation must be independent of thread count");
    assert_eq!(a.digest(), b.digest());
}

#[test]
fn cpi_stack_reconciles_with_critpath_on_a_checked_grid() {
    let specs = GridRequest::new(MachineConfig::micro05_baseline(), 2_000)
        .benchmarks([Benchmark::Vpr, Benchmark::Gzip, Benchmark::Twolf])
        .layouts(ClusterLayout::CLUSTERED)
        .policies([PolicyKind::Focused])
        .options(
            RunOptions::default()
                .with_epochs(1)
                .with_checked(true)
                .with_metrics(true),
        )
        .build();
    let results = clustercrit::core::run_grid_resilient(&specs, 4, &Resilience::default());

    // Per cell: the counters' CPI stack must match the cell's own
    // critical-path breakdown category by category.
    for r in &results {
        let outcome = r.status.outcome().expect("checked smoke cell completes");
        let metrics = outcome.metrics.as_ref().expect("metered cell");
        let stack = observed_cpi_stack(metrics, &outcome.analysis.breakdown)
            .expect("per-cell CPI stack reconciles");
        assert_eq!(stack.total(), outcome.result.cycles);
    }

    // And in aggregate, across the whole grid.
    let metrics = aggregate_metrics(&results).expect("metered grid");
    let (breakdown, cycles, _) = aggregate_breakdown(&results);
    let stack = observed_cpi_stack(&metrics, &breakdown).expect("aggregate CPI stack reconciles");
    assert_eq!(stack.total(), cycles);

    // The harness-level report agrees.
    let report = ccs_bench::cpi_stack_report(&results);
    assert!(report.contains("reconciled"), "{report}");
}

#[test]
fn cycle_trace_ring_is_bounded_and_deterministic_on_a_real_run() {
    let config = machine();
    let trace = Benchmark::Vpr.generate(5, 3_000);
    let budget = SimBudget::default();
    let run = |seed: u64| {
        let mut policy =
            PaperPolicy::new(PolicyKind::Focused, PredictorBank::new(LocMode::Quantized16, 7));
        let mut observer = RunObserver::for_machine(config.cluster_count())
            .with_ring(CycleTraceRing::new(64, 16, seed));
        simulate_observed(&config, &trace, &mut policy, &budget, &mut observer).unwrap();
        observer
    };
    let a = run(42);
    let b = run(42);
    let c = run(43);

    let ring_a = a.ring.as_ref().expect("ring attached");
    let ring_b = b.ring.as_ref().expect("ring attached");
    assert!(ring_a.len() <= 64, "ring stays bounded");
    assert!(!ring_a.is_empty(), "a multi-thousand-cycle run gets sampled");
    let samples_a: Vec<_> = ring_a.samples().collect();
    let samples_b: Vec<_> = ring_b.samples().collect();
    assert_eq!(samples_a, samples_b, "same seed, same samples");
    let samples_c: Vec<_> = c.ring.as_ref().expect("ring attached").samples().collect();
    assert_ne!(samples_c, samples_a, "different seed, different sample cycles");
    let jsonl = ring_a.to_jsonl();
    assert_eq!(jsonl.lines().count(), ring_a.len());
    for line in jsonl.lines() {
        assert!(line.starts_with("{\"cycle\":") && line.ends_with("]}"), "{line}");
    }
}
