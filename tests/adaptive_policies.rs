//! The adaptive tier's acceptance gate: both dynamic policies run
//! clean (checked mode) across the 12-benchmark smoke grid, reproduce
//! bit-identically across reruns and thread counts, and are provably
//! non-vacuous (the switcher actually switches, the ineffectuality
//! predictor actually changes placements).

use clustercrit::core::{
    run_grid, AdaptivePolicy, GridRequest, LocMode, PolicyKind, PredictorBank, RunOptions,
};
use clustercrit::critpath::analyze;
use clustercrit::isa::{ClusterLayout, MachineConfig};
use clustercrit::trace::Benchmark;

fn smoke_specs() -> Vec<clustercrit::core::CellSpec> {
    GridRequest::new(MachineConfig::micro05_baseline(), 2_000)
        .benchmarks(Benchmark::ALL)
        .layouts([ClusterLayout::C4x2w])
        .policies([PolicyKind::Adaptive, PolicyKind::IneffSteer])
        .options(RunOptions::default().with_epochs(2).with_checked(true))
        .build()
}

/// Checked mode turns any structural invariant violation into a cell
/// error, so `expect_outcome` on every cell *is* the zero-violations
/// assertion. The same grid rerun, and rerun with 8 threads, must be
/// bit-identical — the adaptive tier adds no hidden nondeterminism.
#[test]
fn dynamic_policies_run_checked_and_bit_identical_across_threads() {
    let specs = smoke_specs();
    assert_eq!(specs.len(), Benchmark::ALL.len() * 2);

    let serial = run_grid(&specs, 1);
    let rerun = run_grid(&specs, 1);
    let parallel = run_grid(&specs, 8);

    for ((a, b), c) in serial.iter().zip(&rerun).zip(&parallel) {
        let ctx = format!(
            "{} {}",
            a.spec.benchmark.name(),
            a.spec.policy.name()
        );
        let ao = a.expect_outcome();
        for (label, o) in [("rerun", b.expect_outcome()), ("8-thread", c.expect_outcome())] {
            assert_eq!(ao.result.cycles, o.result.cycles, "{ctx}: {label} cycles");
            assert_eq!(ao.result.records, o.result.records, "{ctx}: {label} records");
            assert_eq!(
                ao.analysis.breakdown, o.analysis.breakdown,
                "{ctx}: {label} breakdown"
            );
        }
        // Checked mode also verified the breakdown conserves cycles,
        // but pin it here so this test stands alone.
        assert_eq!(
            ao.analysis.breakdown.total(),
            ao.result.cycles,
            "{ctx}: breakdown must conserve cycles"
        );
    }
}

/// The switcher must not be a renamed FocusedLoc: on at least one
/// smoke-grid benchmark it has to take a rung switch, and switching
/// has to show up as a schedule that differs from the static rung it
/// started on. (Per-benchmark it may legitimately never switch — calm
/// traces are supposed to stay put; the claim is existential across
/// the grid, which keeps it robust to workload-model tuning.)
#[test]
fn the_switcher_switches_somewhere_on_the_smoke_grid() {
    let config = MachineConfig::micro05_baseline().with_layout(ClusterLayout::C8x1w);
    let mut switched = 0u64;
    for bench in Benchmark::ALL {
        let trace = bench.generate(1, 2_000);
        // Two-phase methodology by hand so the switch counter is
        // observable: train one epoch, then measure with the switcher.
        let mut bank = PredictorBank::new(LocMode::Quantized16, 0);
        let mut train = AdaptivePolicy::new(bank);
        let result = clustercrit::sim::simulate(&config, &trace, &mut train)
            .expect("training epoch must not deadlock");
        bank = train.into_bank();
        bank.train_criticality(&trace, &analyze(&trace, &result).e_critical);

        let mut policy = AdaptivePolicy::new(bank);
        clustercrit::sim::simulate(&config, &trace, &mut policy)
            .expect("measured epoch must not deadlock");
        switched += policy.switches();
    }
    assert!(
        switched > 0,
        "no benchmark ever triggered a rung switch — the decision rule is vacuous"
    );
}

/// Ineffectuality-aware steering must actually move instructions: on
/// at least one clustered smoke cell its schedule differs from its
/// inner focused rung's.
#[test]
fn ineffectuality_steering_changes_placements_somewhere() {
    let specs = |policy| {
        GridRequest::new(MachineConfig::micro05_baseline(), 2_000)
            .benchmarks(Benchmark::ALL)
            .layouts([ClusterLayout::C4x2w])
            .policies([policy])
            .options(RunOptions::default().with_epochs(2))
            .build()
    };
    let ineff = run_grid(&specs(PolicyKind::IneffSteer), 4);
    let focused = run_grid(&specs(PolicyKind::Focused), 4);
    let diverged = ineff
        .iter()
        .zip(&focused)
        .filter(|(i, f)| i.expect_outcome().result.records != f.expect_outcome().result.records)
        .count();
    assert!(
        diverged > 0,
        "ineff-steer reproduced focused steering on every smoke cell — the predictor never fired"
    );
}
