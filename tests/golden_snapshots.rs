//! Golden regression corpus snapshot tests.
//!
//! Recomputes the full benchmark × layout × policy golden grid (every
//! cell in checked mode — so this test also proves the invariant checker
//! finds zero violations across the whole grid) and compares it line by
//! line against the committed corpus under `results/golden/`.
//!
//! On an *intended* behaviour change, regenerate with
//! `cargo run --release -p ccs-verify --bin regen_golden` and commit the
//! resulting diff alongside the change.

use ccs_verify::golden::{corpus_files, diff_lines, golden_dir};

#[test]
fn golden_corpus_matches_committed_snapshots() {
    let threads = std::thread::available_parallelism().map_or(1, usize::from);
    let dir = golden_dir();
    let mut problems: Vec<String> = Vec::new();
    let files = corpus_files(threads);
    assert!(!files.is_empty());
    for (name, computed) in &files {
        let path = dir.join(name);
        match std::fs::read_to_string(&path) {
            Ok(committed) => problems.extend(diff_lines(name, &committed, computed)),
            Err(_) => problems.push(format!(
                "{name}: missing under {} — run `cargo run --release -p ccs-verify --bin \
                 regen_golden` and commit results/golden/",
                dir.display()
            )),
        }
    }
    assert!(
        problems.is_empty(),
        "golden corpus drift ({} problems):\n{}\n\
         If this change is intended, regenerate the corpus with\n\
         `cargo run --release -p ccs-verify --bin regen_golden` and commit the diff.",
        problems.len(),
        problems.join("\n")
    );
}
