//! Acceptance test for the resilience machinery: a 100-cell campaign
//! with 10 seeded panics and 2 seeded deterministic hangs (cycle bombs)
//! completes, reports exactly those 12 cells as failed/timed-out, and
//! leaves the other 88 bit-identical to a clean run.
//!
//! `CCS_FAULT_CASES` bounds the grid for smoke runs (the fault counts
//! scale down proportionally); unset, the full 100-cell grid runs.

use clustercrit::core::grid::CellStatus;
use clustercrit::core::{run_grid_resilient, GridRequest, PolicyKind, Resilience, RunOptions};
use clustercrit::isa::{ClusterLayout, MachineConfig};
use clustercrit::trace::Benchmark;
use clustercrit::verify::{run_grid_with_faults, FaultPlan};

fn hundred_cell_grid() -> Vec<clustercrit::core::CellSpec> {
    // 5 benchmarks × 4 layouts × 5 policies = 100 cells.
    GridRequest::new(MachineConfig::micro05_baseline(), 1_000)
        .benchmarks([
            Benchmark::Gzip,
            Benchmark::Vpr,
            Benchmark::Gcc,
            Benchmark::Mcf,
            Benchmark::Parser,
        ])
        .layouts([
            ClusterLayout::C1x8w,
            ClusterLayout::C2x4w,
            ClusterLayout::C4x2w,
            ClusterLayout::C8x1w,
        ])
        .policies([
            PolicyKind::Dependence,
            PolicyKind::Focused,
            PolicyKind::FocusedLoc,
            PolicyKind::StallOverSteer,
            PolicyKind::Proactive,
        ])
        .options(RunOptions::default().with_epochs(1))
        .build()
}

#[test]
fn seeded_faults_are_contained_and_the_survivors_are_bit_identical() {
    let mut specs = hundred_cell_grid();
    assert_eq!(specs.len(), 100);
    let mut panics = 10;
    let mut bombs = 2;
    if let Some(cases) = std::env::var("CCS_FAULT_CASES")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        specs.truncate(cases.max(3));
        panics = (specs.len() / 10).max(1);
        bombs = (specs.len() / 50).max(1);
    }
    let plan = FaultPlan::seeded(0xFA17, specs.len(), panics, bombs);
    let res = Resilience::default().with_max_attempts(2);

    let clean = run_grid_resilient(&specs, 4, &res);
    let faulted = run_grid_with_faults(&specs, 4, &res, &plan);
    assert_eq!(faulted.len(), specs.len());

    let mut failed = 0;
    let mut timed_out = 0;
    for (i, (c, f)) in clean.iter().zip(&faulted).enumerate() {
        match plan.fault_for(i) {
            Some(clustercrit::verify::CellFault::Panic) => {
                let CellStatus::Failed { error, attempts } = &f.status else {
                    panic!("panicking cell {i} reported {:?}", f.status);
                };
                assert_eq!(*attempts, 2, "cell {i} must spend its retry budget");
                assert!(
                    error.to_string().contains("injected fault"),
                    "cell {i}: {error}"
                );
                failed += 1;
            }
            Some(clustercrit::verify::CellFault::CycleBomb { .. }) => {
                assert!(
                    f.status.is_timed_out(),
                    "cycle-bombed cell {i} reported {:?}",
                    f.status
                );
                assert_eq!(f.status.attempts(), 2);
                timed_out += 1;
            }
            Some(clustercrit::verify::CellFault::Hang) | None => {
                // Unfaulted cells must be bit-identical to the clean run.
                let (co, fo) = (c.expect_outcome(), f.expect_outcome());
                assert_eq!(
                    format!("{:?}", co.result),
                    format!("{:?}", fo.result),
                    "cell {i} diverged from the clean run"
                );
                assert_eq!(co.cpi().to_bits(), fo.cpi().to_bits(), "cell {i} CPI drift");
            }
        }
    }
    assert_eq!(failed, panics, "every seeded panic must surface as Failed");
    assert_eq!(timed_out, bombs, "every cycle bomb must surface as TimedOut");
    let healthy = faulted
        .iter()
        .filter(|r| r.status.is_completed())
        .count();
    assert_eq!(healthy, specs.len() - panics - bombs);
}
