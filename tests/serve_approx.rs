//! The serve daemon's opt-in approximate tier, end to end against a
//! live daemon: a cold `approx` submission returns the analytic
//! envelope fast (no evaluation, no queueing); escalating by
//! re-submitting without the flag returns the exact, cache-compatible
//! record; a later `approx` request for the now-cached cell answers
//! exactly. The journal and the daemon's hit/evaluated/approx counters
//! must agree with the story throughout.

use ccs_client::{ApproxAnswer, Client};
use ccs_core::PolicyKind;
use ccs_isa::ClusterLayout;
use ccs_serve::{load_journal, JournalEvent, ServeConfig, Server, WireCellSpec};
use ccs_trace::Benchmark;
use std::path::PathBuf;

const LEN: usize = 1_500;

fn tmp_journal(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "ccs-serve-approx-journal-{tag}-{}",
        std::process::id()
    ));
    p
}

fn start_server(journal: PathBuf) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
    let server = Server::bind(ServeConfig {
        workers: 2,
        queue_capacity: 64,
        cache_capacity: 64,
        journal: Some(journal),
        ..ServeConfig::default()
    })
    .expect("bind loopback");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run().expect("serve until drain"));
    (addr, handle)
}

#[test]
fn approx_answers_envelope_then_escalates_to_exact() {
    let journal_path = tmp_journal("ladder");
    let (addr, handle) = start_server(journal_path.clone());
    let mut client = Client::connect(&addr.to_string()).expect("connect");

    let cell = WireCellSpec::new(
        Benchmark::Vpr,
        1,
        LEN,
        ClusterLayout::C4x2w,
        PolicyKind::Focused,
    )
    .with_epochs(2);

    // Cold cell, approx flag: the daemon must answer with the analytic
    // envelope without evaluating anything.
    let answer = client.submit_cell_approx(&cell).expect("approx submit");
    let (key, lo, hi, ipc_hi, confidence) = match answer {
        ApproxAnswer::Envelope {
            key,
            cycles_lo,
            cycles_hi,
            ipc_hi,
            confidence,
        } => (key, cycles_lo, cycles_hi, ipc_hi, confidence),
        ApproxAnswer::Exact(rec) => panic!("cold cell answered exactly: {rec:?}"),
    };
    assert!(lo > 50, "envelope must be non-trivial, got cycles_lo={lo}");
    assert!(lo <= hi, "envelope must be ordered: [{lo}, {hi}]");
    assert!(ipc_hi > 0.0, "IPC ceiling must be positive");
    assert!(
        ["high", "medium", "low"].contains(&confidence.as_str()),
        "confidence grade must be named: {confidence:?}"
    );

    let status = client.status().expect("status");
    assert_eq!(status.approx_answered, 1, "one envelope served");
    assert_eq!(status.cells_evaluated, 0, "approx must not simulate");
    assert_eq!(status.cells_admitted, 0, "approx must not enqueue");
    assert_eq!(status.cache_misses, 1, "the approx lookup missed");
    assert_eq!(status.cache_hits, 0);

    // Escalate: the same cell without the flag runs for real, and the
    // exact result must land inside the envelope just quoted.
    let exact = client.submit_cell(&cell).expect("exact submit");
    assert_eq!(exact.key, key, "both paths key the same cell");
    assert!(exact.is_ok(), "escalated cell must simulate cleanly");
    assert!(!exact.cached, "first evaluation is not a cache hit");
    assert!(
        lo <= exact.cycles && exact.cycles <= hi,
        "exact {} cycles must land inside the quoted envelope [{lo}, {hi}]",
        exact.cycles
    );
    let achieved_ipc = 1.0 / exact.cpi();
    assert!(
        achieved_ipc <= ipc_hi,
        "achieved IPC {achieved_ipc} must respect the quoted ceiling {ipc_hi}"
    );

    // Approx again: the daemon now holds the simulated record, and a
    // cached exact answer always beats an envelope.
    let again = client.submit_cell_approx(&cell).expect("approx resubmit");
    match again {
        ApproxAnswer::Exact(rec) => {
            assert!(rec.cached, "served from the result cache");
            assert_eq!(rec.cycles, exact.cycles, "bit-identical cycles");
            assert_eq!(rec.cpi_bits, exact.cpi_bits, "bit-identical CPI");
            assert_eq!(rec.digest, exact.digest, "bit-identical schedule digest");
        }
        ApproxAnswer::Envelope { .. } => panic!("cached cell must answer exactly"),
    }

    let status = client.status().expect("status");
    assert_eq!(status.approx_answered, 1, "a cache hit is not an envelope");
    assert_eq!(status.cells_evaluated, 1, "exactly the escalated run");
    assert_eq!(status.cache_hits, 1, "the approx resubmit hit");
    assert_eq!(status.cache_misses, 2, "cold approx + cold escalation");

    client.drain().expect("drain");
    handle.join().expect("daemon exits cleanly after drain");

    // The journal tells the same story: one approx event for our key,
    // one evaluated cell, no torn lines.
    let (events, skipped) = load_journal(&journal_path).expect("journal loads");
    std::fs::remove_file(&journal_path).ok();
    assert_eq!(skipped, 0, "no torn or foreign journal lines");
    let approx_events: Vec<&JournalEvent> = events
        .iter()
        .filter(|e| matches!(e, JournalEvent::ApproxServed { .. }))
        .collect();
    assert_eq!(approx_events.len(), 1, "one envelope, one journal event");
    assert!(
        matches!(approx_events[0], JournalEvent::ApproxServed { key: k, .. } if *k == key),
        "journaled approx key must match the served cell"
    );
    let done = events
        .iter()
        .filter(|e| matches!(e, JournalEvent::CellDone { .. }))
        .count();
    assert_eq!(done, 1, "exactly the escalated evaluation is journaled");
    assert!(
        matches!(events.last(), Some(JournalEvent::Drained { .. })),
        "journal ends with the drain"
    );
}

/// The dynamic policies are first-class wire citizens: an `approx`
/// submission for an adaptive cell answers with the envelope demoted
/// one confidence grade (the tightness tag is calibrated on the static
/// ladder), the escalated exact run lands inside that envelope, and a
/// resubmission is a bit-identical cache hit — for both dynamic kinds.
#[test]
fn dynamic_policies_ride_the_wire_with_demoted_confidence() {
    let journal_path = tmp_journal("dynamic");
    let (addr, handle) = start_server(journal_path.clone());
    let mut client = Client::connect(&addr.to_string()).expect("connect");

    let layout = ClusterLayout::C4x2w;
    let cell = WireCellSpec::new(Benchmark::Vpr, 1, LEN, layout, PolicyKind::Adaptive)
        .with_epochs(2);

    // The daemon predicts from the same trace and machine the wire spec
    // names, so the quoted grade must be exactly the local prediction's,
    // demoted one step.
    let machine = ccs_isa::MachineConfig::micro05_baseline().with_layout(layout);
    let trace = ccs_trace::TraceStore::global().get(Benchmark::Vpr, 1, LEN);
    let local = ccs_predict::predict(&machine, &trace);
    let expected = local.demoted();

    let answer = client.submit_cell_approx(&cell).expect("approx submit");
    let (lo, hi, confidence) = match answer {
        ApproxAnswer::Envelope {
            cycles_lo,
            cycles_hi,
            confidence,
            ..
        } => (cycles_lo, cycles_hi, confidence),
        ApproxAnswer::Exact(rec) => panic!("cold cell answered exactly: {rec:?}"),
    };
    assert_eq!(
        confidence,
        expected.confidence.name(),
        "wire confidence must be the locally predicted grade, demoted"
    );
    assert_eq!((lo, hi), (expected.cycles_lo, expected.cycles_hi));

    // Escalate both dynamic kinds to exact evaluations.
    let exact = client.submit_cell(&cell).expect("exact adaptive submit");
    assert!(exact.is_ok(), "adaptive cell must simulate cleanly");
    assert!(
        lo <= exact.cycles && exact.cycles <= hi,
        "exact {} cycles must land inside the quoted envelope [{lo}, {hi}]",
        exact.cycles
    );
    let ineff = WireCellSpec::new(Benchmark::Vpr, 1, LEN, layout, PolicyKind::IneffSteer)
        .with_epochs(2);
    let ineff_exact = client.submit_cell(&ineff).expect("exact ineff submit");
    assert!(ineff_exact.is_ok(), "ineff-steer cell must simulate cleanly");
    assert_ne!(
        exact.key, ineff_exact.key,
        "the two dynamic kinds must key distinct cells"
    );

    // Resubmissions are cache hits, bit for bit.
    let again = client.submit_cell(&cell).expect("adaptive resubmit");
    assert!(again.cached, "served from the result cache");
    assert_eq!(again.cycles, exact.cycles, "bit-identical cycles");
    assert_eq!(again.cpi_bits, exact.cpi_bits, "bit-identical CPI");
    assert_eq!(again.digest, exact.digest, "bit-identical schedule digest");

    client.drain().expect("drain");
    handle.join().expect("daemon exits cleanly after drain");
    std::fs::remove_file(&journal_path).ok();
}
