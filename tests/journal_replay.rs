//! Journal recovery under crash artifacts, end to end: a daemon killed
//! with a torn final journal record (the `kill -9` mid-`write(2)`
//! shape) must restart cleanly, replay every intact record into its
//! result cache, and answer those cells as cache hits — while a journal
//! from a different schema version refuses to boot loudly rather than
//! replaying garbage.
//!
//! Byte-level edge cases (torn tails, duplicate keys, headerless
//! files) are pinned by unit tests in `ccs-serve::journal`; this suite
//! proves the same machinery through a live daemon boot.

use ccs_client::Client;
use ccs_core::checkpoint::cell_key;
use ccs_core::{CellSpec, PolicyKind, RunOptions};
use ccs_isa::{ClusterLayout, MachineConfig};
use ccs_serve::{replay_journal, ServeConfig, Server, WireCellSpec};
use ccs_trace::Benchmark;
use std::path::{Path, PathBuf};

const LEN: usize = 600;

fn specs(n: usize) -> Vec<CellSpec> {
    let base = MachineConfig::micro05_baseline();
    let options = RunOptions::default().with_epochs(1);
    let mut out = Vec::new();
    'fill: for bench in Benchmark::ALL {
        for policy in [PolicyKind::Focused, PolicyKind::FocusedLoc] {
            if out.len() == n {
                break 'fill;
            }
            out.push(CellSpec::new(
                base.with_layout(ClusterLayout::C4x2w),
                bench,
                1,
                LEN,
                policy,
                options,
            ));
        }
    }
    out
}

fn config(journal: PathBuf, recover: bool) -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue_capacity: 64,
        cache_capacity: 64,
        journal: Some(journal),
        recover,
        ..ServeConfig::default()
    }
}

/// Populates a journal by evaluating `n` cells on a live daemon, then
/// crashing it via the kill switch (no `drained` marker, queue dropped).
fn crashed_journal(dir: &Path, n: usize) -> (PathBuf, Vec<String>) {
    let path = dir.join("crash.jsonl");
    let server = Server::bind(config(path.clone(), false)).expect("bind");
    let addr = server.local_addr().to_string();
    let switch = server.kill_switch();
    let handle = std::thread::spawn(move || server.run().expect("run"));
    let cells: Vec<WireCellSpec> = specs(n)
        .iter()
        .map(|s| WireCellSpec::from_cell(s).unwrap())
        .collect();
    let mut client = Client::connect(&addr).expect("connect");
    let outcome = client.submit_grid(&cells, |_| {}).expect("grid");
    assert_eq!(outcome.exit_code(), 0);
    switch.kill();
    handle.join().expect("crash exit");
    let keys = specs(n).iter().map(cell_key).collect();
    (path, keys)
}

#[test]
fn torn_tail_crash_restart_serves_intact_records_as_cache_hits() {
    let dir = std::env::temp_dir().join(format!("ccs-replay-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let (path, keys) = crashed_journal(&dir, 6);

    // kill -9 mid-flush: the final record stops mid-byte.
    let bytes = std::fs::read(&path).unwrap();
    let torn_at = bytes.len() - 17;
    std::fs::write(&path, &bytes[..torn_at]).unwrap();

    let replay = replay_journal(&path).expect("torn journals still replay");
    assert!(!replay.drained);
    assert_eq!(
        replay.records.len(),
        5,
        "the torn final record is skipped, the intact five survive"
    );

    // A recovering daemon serves exactly the intact records as hits.
    let server = Server::bind(config(path.clone(), true)).expect("bind recovered");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run().expect("run recovered"));
    let mut client = Client::connect(&addr).expect("connect");
    assert_eq!(client.status().expect("status").recovered, 5);
    let cells: Vec<WireCellSpec> = specs(6)
        .iter()
        .map(|s| WireCellSpec::from_cell(s).unwrap())
        .collect();
    let outcome = client.submit_grid(&cells, |_| {}).expect("grid");
    assert_eq!(outcome.exit_code(), 0);
    assert_eq!(outcome.cached, 5, "five hits, one re-simulated");
    for record in outcome.records.iter().flatten() {
        assert!(keys.contains(&record.key));
        assert_eq!(record.status, "ok");
    }
    client.drain().expect("drain");
    handle.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wrong_schema_journal_refuses_to_boot_loudly() {
    let dir = std::env::temp_dir().join(format!("ccs-replay-bad-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("legacy.jsonl");
    std::fs::write(
        &path,
        "{\"event\":\"started\",\"seq\":0,\"journal\":1,\"addr\":\"x\",\"workers\":1,\"queue_capacity\":8}\n",
    )
    .unwrap();

    let err = replay_journal(&path).expect_err("version 1 is not replayable");
    assert!(
        err.to_string().contains("not replayable"),
        "the refusal names the problem: {err}"
    );

    // The daemon surfaces the same refusal instead of starting empty.
    let server = Server::bind(config(path.clone(), true)).expect("bind");
    let result = std::thread::spawn(move || server.run()).join().unwrap();
    let boot_err = result.expect_err("recovery from a legacy journal must fail");
    assert!(boot_err.to_string().contains("not replayable"));
    let _ = std::fs::remove_dir_all(&dir);
}
