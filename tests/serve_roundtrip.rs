//! Round-trip determinism of the service layer: a grid submitted to a
//! live `ccs-serve` daemon over TCP must be **bit-identical** to the
//! same grid evaluated in-process with [`run_grid`] — same schedule
//! digests, same CPI bit patterns, same cycle counts — including when
//! half the answers come from the daemon's result cache.

use ccs_client::Client;
use ccs_core::checkpoint::{cell_key, CheckpointRecord};
use ccs_core::{run_grid, CellSpec, PolicyKind, RunOptions};
use ccs_isa::{ClusterLayout, MachineConfig};
use ccs_serve::{ServeConfig, Server, WireCellSpec};
use ccs_trace::Benchmark;

const LEN: usize = 1_500;

fn grid_specs() -> Vec<CellSpec> {
    let base = MachineConfig::micro05_baseline();
    let options = RunOptions::default().with_epochs(2);
    let mut specs = Vec::new();
    for bench in [Benchmark::Gzip, Benchmark::Vpr] {
        for layout in [ClusterLayout::C2x4w, ClusterLayout::C4x2w] {
            for policy in [PolicyKind::Focused, PolicyKind::FocusedLoc] {
                specs.push(CellSpec::new(
                    base.with_layout(layout),
                    bench,
                    1,
                    LEN,
                    policy,
                    options,
                ));
            }
        }
    }
    specs
}

fn start_server() -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
    let server = Server::bind(ServeConfig {
        workers: 2,
        queue_capacity: 64,
        cache_capacity: 64,
        ..ServeConfig::default()
    })
    .expect("bind loopback");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run().expect("serve until drain"));
    (addr, handle)
}

#[test]
fn server_grid_is_bit_identical_to_in_process_run_grid() {
    let specs = grid_specs();

    // Ground truth: the batch path.
    let local: Vec<CheckpointRecord> = run_grid(&specs, 2)
        .iter()
        .map(CheckpointRecord::from_result)
        .collect();
    assert!(
        local.iter().all(|r| r.status == "ok"),
        "baseline grid must complete"
    );

    let (addr, handle) = start_server();
    let mut client = Client::connect(&addr.to_string()).expect("connect");

    let cells: Vec<WireCellSpec> = specs
        .iter()
        .map(|s| WireCellSpec::from_cell(s).expect("paper-grid cell is wire-addressable"))
        .collect();

    // First submission: every cell is a miss.
    let first = client.submit_grid(&cells, |_| {}).expect("grid");
    assert_eq!(first.exit_code(), 0, "first grid all ok");
    assert_eq!(first.cached, 0, "cold cache: nothing cached");
    for (i, (spec, record)) in specs.iter().zip(&first.records).enumerate() {
        let record = record.as_ref().expect("complete");
        let expect = &local[i];
        assert_eq!(record.key, cell_key(spec), "cell {i} key");
        assert_eq!(record.key, expect.key, "cell {i} key vs local");
        assert_eq!(record.status, expect.status, "cell {i} status");
        assert_eq!(record.cycles, expect.cycles, "cell {i} cycles");
        assert_eq!(record.cpi_bits, expect.cpi_bits, "cell {i} CPI bits");
        assert_eq!(record.digest, expect.digest, "cell {i} schedule digest");
    }

    // Second submission: half the cells repeat (cache hits), half are
    // new seeds (misses). The repeats must be bit-identical *and*
    // flagged cached; the fresh cells must match a fresh local run.
    let mut second_specs: Vec<CellSpec> = specs[..4].to_vec();
    let mut fresh: Vec<CellSpec> = specs[4..]
        .iter()
        .map(|s| {
            let mut s = *s;
            s.sample_seed = 2;
            s
        })
        .collect();
    second_specs.append(&mut fresh);
    let second_cells: Vec<WireCellSpec> = second_specs
        .iter()
        .map(|s| WireCellSpec::from_cell(s).unwrap())
        .collect();
    let local_second: Vec<CheckpointRecord> = run_grid(&second_specs, 2)
        .iter()
        .map(CheckpointRecord::from_result)
        .collect();

    let second = client.submit_grid(&second_cells, |_| {}).expect("grid 2");
    assert_eq!(second.exit_code(), 0);
    assert_eq!(second.cached, 4, "the four repeated cells hit the cache");
    for (i, (spec, record)) in second_specs.iter().zip(&second.records).enumerate() {
        let record = record.as_ref().expect("complete");
        let expect = &local_second[i];
        assert_eq!(record.key, cell_key(spec), "cell {i} key");
        assert_eq!(record.cached, i < 4, "cell {i} cache attribution");
        assert_eq!(record.cycles, expect.cycles, "cell {i} cycles");
        assert_eq!(record.cpi_bits, expect.cpi_bits, "cell {i} CPI bits");
        assert_eq!(record.digest, expect.digest, "cell {i} schedule digest");
    }

    // Single-cell submission goes through the same cache.
    let one = client.submit_cell(&cells[0]).expect("single cell");
    assert!(one.cached, "already evaluated");
    assert_eq!(one.digest, local[0].digest);

    // The daemon's own accounting agrees with what we observed.
    let status = client.status().expect("status");
    assert_eq!(status.cache_hits, 5, "4 grid hits + 1 single-cell hit");
    assert_eq!(status.cells_evaluated, 12, "8 + 4 fresh evaluations");

    client.drain().expect("drain");
    handle.join().expect("daemon exits cleanly after drain");
}

#[test]
fn scenario_cell_over_the_wire_is_bit_identical_to_in_process() {
    use ccs_scenario::Scenario;

    // A gallery scenario, evaluated in-process as ground truth.
    let entry = ccs_scenario::gallery::GALLERY
        .iter()
        .find(|e| e.name == "phase_shift")
        .expect("gallery has phase_shift");
    let scenario = Scenario::from_manifest(entry.text).expect("gallery manifest parses");
    let id = scenario.register().expect("valid scenario registers");
    let spec = CellSpec::for_scenario(
        MachineConfig::micro05_baseline().with_layout(ClusterLayout::C4x2w),
        id,
        5,
        LEN,
        PolicyKind::Focused,
        RunOptions::default().with_epochs(2),
    );
    let local = CheckpointRecord::from_result(&spec.run());
    assert_eq!(local.status, "ok", "in-process scenario cell completes");
    assert!(
        local.key.starts_with("scn-phase_shift/"),
        "scenario cells key on the scenario namespace: {}",
        local.key
    );

    // The same cell over the wire: the daemon re-registers the manifest
    // it decodes and must land on the same key and the same bits.
    let (addr, handle) = start_server();
    let mut client = Client::connect(&addr.to_string()).expect("connect");
    let wire = WireCellSpec::from_cell(&spec).expect("scenario cell is wire-addressable");
    assert_eq!(wire.bench, "scenario:phase_shift");
    let record = client.submit_cell(&wire).expect("scenario cell over the wire");
    assert_eq!(record.key, cell_key(&spec));
    assert_eq!(record.key, local.key);
    assert_eq!(record.status, local.status);
    assert_eq!(record.cycles, local.cycles, "cycle count must match");
    assert_eq!(record.cpi_bits, local.cpi_bits, "CPI bits must match");
    assert_eq!(record.digest, local.digest, "schedule digest must match");

    // Resubmission hits the result cache under the same key.
    let again = client.submit_cell(&wire).expect("resubmit");
    assert!(again.cached, "second submission is a cache hit");
    assert_eq!(again.digest, record.digest);

    client.drain().expect("drain");
    handle.join().expect("clean exit");
}

#[test]
fn backpressure_rejects_whole_submission_with_hint() {
    let server = Server::bind(ServeConfig {
        workers: 1,
        queue_capacity: 2,
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run().expect("serve"));
    let mut client = Client::connect(&addr.to_string()).expect("connect");

    // Three unique cells cannot fit a capacity-2 queue no matter how
    // fast the worker drains: admission is all-or-nothing.
    let cells: Vec<WireCellSpec> = (0..3)
        .map(|k| {
            WireCellSpec::new(
                Benchmark::Gzip,
                100 + k,
                LEN,
                ClusterLayout::C2x4w,
                PolicyKind::Focused,
            )
        })
        .collect();
    let err = client.submit_grid(&cells, |_| {}).expect_err("must reject");
    match err {
        ccs_core::CcsError::Rejected {
            retry_after_ms, ..
        } => {
            assert!(retry_after_ms.is_some(), "busy replies carry a hint");
        }
        other => panic!("expected Rejected, got {other}"),
    }

    // A submission that fits still works afterwards.
    let outcome = client.submit_grid(&cells[..2], |_| {}).expect("fits");
    assert_eq!(outcome.exit_code(), 0);

    client.drain().expect("drain");
    handle.join().expect("clean exit");
}
