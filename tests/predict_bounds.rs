//! Soundness of the analytic prediction tier (`ccs-predict`): every
//! simulated result must land inside its predicted
//! `[cycles_lo, cycles_hi]` envelope, and achieved IPC must not exceed
//! the predicted ceiling.
//!
//! Two populations pin this:
//!
//! 1. the randomized differential-campaign cases (same enumeration the
//!    engine-vs-oracle campaign uses — every layout, every policy,
//!    workload and unstructured traces, varied forwarding), budget
//!    tunable via `CCS_PREDICT_CASES` (default 200, floor 20 for full
//!    layout × policy coverage);
//! 2. the entire golden corpus grid — all benchmark × layout × policy
//!    cells at the committed seed/length/epochs.
//!
//! Cases are deterministic by id, so a reported violation reproduces
//! exactly.

use ccs_core::{parallel_map, GridRequest, LocMode, PaperPolicy, PredictorBank, RunOptions};
use ccs_critpath::analyze;
use ccs_isa::{ClusterLayout, MachineConfig};
use ccs_trace::{Benchmark, TraceStore};
use ccs_verify::campaign::ALL_POLICIES;
use ccs_verify::golden::{GOLDEN_EPOCHS, GOLDEN_LEN, GOLDEN_POLICIES, GOLDEN_SEED};
use ccs_verify::{check_bounds_against, standard_campaign, DiffCase};

fn case_budget() -> usize {
    std::env::var("CCS_PREDICT_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200)
}

/// Runs one campaign case through the engine only (trained exactly like
/// the differential campaign trains) and checks it against its analytic
/// envelope. `Err` carries the violation report.
fn check_case(case: &DiffCase) -> Result<(), String> {
    let trace = case.source.trace();
    let config = case.config();
    let cfg = case.policy.config();
    let name = case.policy.name();

    let mut bank = PredictorBank::new(LocMode::Quantized16, 0xC1A5);
    for _ in 1..case.epochs.max(1) {
        let mut policy = PaperPolicy::from_config(cfg, bank, name);
        let result = ccs_sim::simulate(&config, &trace, &mut policy)
            .map_err(|e| format!("{}: training run failed: {e}", case.describe()))?;
        let analysis = analyze(&trace, &result);
        bank = policy.into_bank();
        bank.train_criticality(&trace, &analysis.e_critical);
    }
    let mut policy = PaperPolicy::from_config(cfg, bank, name);
    let engine = ccs_sim::simulate(&config, &trace, &mut policy)
        .map_err(|e| format!("{}: engine failed: {e}", case.describe()))?;

    let p = ccs_predict::predict(&config, &trace);
    // The envelope must be non-degenerate before it is sound: a
    // trivial `[0, ∞)` bound would pass every check below vacuously.
    if !trace.is_empty() && p.cycles_lo <= u64::from(config.front_end.depth_to_dispatch) {
        return Err(format!(
            "{}: degenerate lower bound {} (pipeline depth {})",
            case.describe(),
            p.cycles_lo,
            config.front_end.depth_to_dispatch
        ));
    }
    let violations = check_bounds_against(&p, &engine);
    if violations.is_empty() {
        Ok(())
    } else {
        Err(std::iter::once(case.describe())
            .chain(violations.iter().map(|v| format!("  {v}")))
            .collect::<Vec<_>>()
            .join("\n"))
    }
}

#[test]
fn differential_campaign_cases_land_inside_their_envelopes() {
    // At least 20 cases guarantees full layout × policy coverage.
    let cases = standard_campaign(case_budget().max(20));
    for layout in ClusterLayout::ALL {
        for policy in ALL_POLICIES {
            assert!(
                cases.iter().any(|c| c.layout == layout && c.policy == policy),
                "campaign must cover {layout} × {}",
                policy.name()
            );
        }
    }

    let threads = std::thread::available_parallelism().map_or(1, usize::from);
    let failures: Vec<String> = parallel_map(&cases, threads, check_case)
        .into_iter()
        .filter_map(Result::err)
        .collect();
    assert!(
        failures.is_empty(),
        "{} of {} cases violated their analytic envelope:\n{}",
        failures.len(),
        cases.len(),
        failures.join("\n")
    );
}

#[test]
fn the_entire_golden_corpus_lands_inside_its_envelopes() {
    let threads = std::thread::available_parallelism().map_or(1, usize::from);
    let results = GridRequest::new(MachineConfig::micro05_baseline(), GOLDEN_LEN)
        .benchmarks(Benchmark::ALL)
        .layouts(ClusterLayout::ALL)
        .policies(GOLDEN_POLICIES)
        .sample_seeds([GOLDEN_SEED])
        .options(RunOptions::default().with_epochs(GOLDEN_EPOCHS))
        .run(threads);
    assert_eq!(
        results.len(),
        Benchmark::ALL.len() * ClusterLayout::ALL.len() * GOLDEN_POLICIES.len(),
        "the full golden grid must be covered"
    );

    let mut failures: Vec<String> = Vec::new();
    for cell in &results {
        let outcome = cell.expect_outcome();
        let trace =
            TraceStore::global().get(cell.spec.benchmark, cell.spec.sample_seed, cell.spec.len);
        let p = ccs_predict::predict(&cell.spec.config, &trace)
            .with_cycle_budget(cell.spec.options.cycle_budget);
        let ctx = format!(
            "{} {} {}",
            cell.spec.benchmark.name(),
            cell.spec.config.layout,
            cell.spec.policy.name()
        );
        assert!(
            p.cycles_lo > u64::from(cell.spec.config.front_end.depth_to_dispatch),
            "{ctx}: lower bound must exceed the bare pipeline depth"
        );
        for v in check_bounds_against(&p, &outcome.result) {
            failures.push(format!("{ctx}: {v}"));
        }
    }
    assert!(
        failures.is_empty(),
        "{} golden cells violated their analytic envelope:\n{}",
        failures.len(),
        failures.join("\n")
    );
}
