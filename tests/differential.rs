//! The differential verification campaign: the production engine versus
//! the naive reference oracle (`ccs_verify::reference_simulate`) across
//! random traces, workload-model traces, every cluster layout, the full
//! policy ladder, and varied forwarding latency/bandwidth.
//!
//! The case budget defaults to 200 and is tunable via `CCS_DIFF_CASES`
//! (CI sets it explicitly; see `ci.sh`). Cases are deterministic by id,
//! so a reported failure reproduces exactly.

use ccs_core::parallel_map;
use ccs_isa::ClusterLayout;
use ccs_verify::campaign::ALL_POLICIES;
use ccs_verify::{run_case, standard_campaign, CaseOutcome, DiffCase, TraceSource};

fn case_budget() -> usize {
    std::env::var("CCS_DIFF_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200)
}

#[test]
fn engine_agrees_with_reference_oracle() {
    // At least 20 cases guarantees full layout × policy coverage.
    let cases = standard_campaign(case_budget().max(20));
    for layout in ClusterLayout::ALL {
        for policy in ALL_POLICIES {
            assert!(
                cases.iter().any(|c| c.layout == layout && c.policy == policy),
                "campaign must cover {layout} × {}",
                policy.name()
            );
        }
    }

    let threads = std::thread::available_parallelism().map_or(1, usize::from);
    let outcomes = parallel_map(&cases, threads, run_case);
    let mut failures: Vec<String> = Vec::new();
    for outcome in outcomes {
        match outcome {
            Ok(CaseOutcome::Agreed) => {}
            Ok(CaseOutcome::Diverged(lines)) => failures.push(lines.join("\n  ")),
            Err(infra) => failures.push(infra),
        }
    }
    assert!(
        failures.is_empty(),
        "{} of {} differential cases diverged:\n{}",
        failures.len(),
        cases.len(),
        failures.join("\n")
    );
}

/// Long-trace differential cases: 100 000 instructions wrap the wakeup
/// wheel (horizon 512) hundreds of times, fill the parked-producer
/// lists at realistic window occupancy, and stress the broadcast
/// backlog — regimes the short campaign traces never reach. Bounded to
/// two hand-picked cases (one workload trace, one random trace with
/// bandwidth-1 broadcast) so the CI cost stays in seconds;
/// `CCS_DIFF_LONG=0` skips loudly.
#[test]
fn long_trace_cases_agree_end_to_end() {
    if std::env::var("CCS_DIFF_LONG").is_ok_and(|v| v == "0") {
        eprintln!("SKIPPED: long-trace differential cases disabled by CCS_DIFF_LONG=0");
        return;
    }
    let cases = [
        DiffCase {
            id: 100_000,
            layout: ClusterLayout::C4x2w,
            policy: ccs_core::PolicyKind::Focused,
            source: TraceSource::Bench {
                bench: ccs_trace::Benchmark::Gcc,
                seed: 1,
                len: 100_000,
            },
            forward_latency: 2,
            forward_bandwidth: None,
            epochs: 2,
        },
        DiffCase {
            id: 100_001,
            layout: ClusterLayout::C8x1w,
            policy: ccs_core::PolicyKind::Proactive,
            source: TraceSource::Random {
                seed: 0x00D1_FF10_0000,
                len: 100_000,
            },
            forward_latency: 1,
            forward_bandwidth: Some(1),
            epochs: 1,
        },
    ];
    for case in &cases {
        match run_case(case).unwrap() {
            CaseOutcome::Agreed => {}
            CaseOutcome::Diverged(lines) => panic!("{}", lines.join("\n  ")),
        }
    }
}
