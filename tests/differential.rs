//! The differential verification campaign: the production engine versus
//! the naive reference oracle (`ccs_verify::reference_simulate`) across
//! random traces, workload-model traces, every cluster layout, the full
//! policy ladder, and varied forwarding latency/bandwidth.
//!
//! The case budget defaults to 200 and is tunable via `CCS_DIFF_CASES`
//! (CI sets it explicitly; see `ci.sh`). Cases are deterministic by id,
//! so a reported failure reproduces exactly.

use ccs_core::parallel_map;
use ccs_isa::ClusterLayout;
use ccs_verify::campaign::ALL_POLICIES;
use ccs_verify::{run_case, standard_campaign, CaseOutcome};

fn case_budget() -> usize {
    std::env::var("CCS_DIFF_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200)
}

#[test]
fn engine_agrees_with_reference_oracle() {
    // At least 20 cases guarantees full layout × policy coverage.
    let cases = standard_campaign(case_budget().max(20));
    for layout in ClusterLayout::ALL {
        for policy in ALL_POLICIES {
            assert!(
                cases.iter().any(|c| c.layout == layout && c.policy == policy),
                "campaign must cover {layout} × {}",
                policy.name()
            );
        }
    }

    let threads = std::thread::available_parallelism().map_or(1, usize::from);
    let outcomes = parallel_map(&cases, threads, run_case);
    let mut failures: Vec<String> = Vec::new();
    for outcome in outcomes {
        match outcome {
            Ok(CaseOutcome::Agreed) => {}
            Ok(CaseOutcome::Diverged(lines)) => failures.push(lines.join("\n  ")),
            Err(infra) => failures.push(infra),
        }
    }
    assert!(
        failures.is_empty(),
        "{} of {} differential cases diverged:\n{}",
        failures.len(),
        cases.len(),
        failures.join("\n")
    );
}
